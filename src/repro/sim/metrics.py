"""Metric collection utilities shared by all experiments.

The paper reports percentiles (P50/P99 latency, rack power percentiles),
CDFs (Figs. 5, 8, 15), RMSE of power predictions, and time-weighted
quantities (energy = time-weighted power).  This module implements each as
a small, well-tested primitive.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "empirical_quantile",
    "percentile",
    "rmse",
    "mean_absolute_error",
    "RunningStats",
    "TimeWeightedValue",
    "Histogram",
    "Cdf",
    "DowntimeTracker",
]


def empirical_quantile(values: Sequence[float], q: float) -> float:
    """THE project-wide sample-quantile convention.

    Inclusive linear interpolation (numpy's default ``linear`` method):
    the k-th of n sorted samples sits at rank ``(k - 1) / (n - 1)`` and
    quantiles interpolate linearly between adjacent samples.  Every
    exact-sample quantile in the repo — :func:`percentile`,
    :meth:`Cdf.value_at`,
    :meth:`repro.workloads.queueing.SimulatedLatencies.quantile`, the
    per-slot aggregation in
    :class:`repro.prediction.quantiles.DailyQuantileTemplate` — reduces
    to this function, so admission decisions keyed off quantiles can
    never disagree across layers on small samples.  (The two non-sample
    estimators remain documented approximations of the same convention:
    :meth:`Histogram.quantile` interpolates within fixed bins, and
    ``experiments.cluster.LatencyAggregator.quantile_ms`` inverts an
    analytic mixture CDF.)

    ``q`` is in [0, 1].  Raises on an empty sequence: experiments must
    decide what an absent measurement means rather than silently get 0.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("quantile of empty sequence is undefined")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    return float(np.quantile(arr, q))


def percentile(values: Sequence[float], pct: float) -> float:
    """:func:`empirical_quantile` on the [0, 100] percent scale."""
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    return empirical_quantile(values, pct / 100.0)


def rmse(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Root mean squared error between two equal-length series."""
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise ValueError(
            f"shape mismatch: predicted {pred.shape} vs actual {act.shape}")
    if pred.size == 0:
        raise ValueError("rmse of empty series is undefined")
    return float(np.sqrt(np.mean((pred - act) ** 2)))


def mean_absolute_error(predicted: Sequence[float],
                        actual: Sequence[float]) -> float:
    """Mean absolute error between two equal-length series."""
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise ValueError(
            f"shape mismatch: predicted {pred.shape} vs actual {act.shape}")
    if pred.size == 0:
        raise ValueError("MAE of empty series is undefined")
    return float(np.mean(np.abs(pred - act)))


class RunningStats:
    """Streaming count/mean/variance/min/max (Welford's algorithm).

    Used for per-tick statistics where storing every sample would be
    wasteful (e.g. per-request latencies are kept, but per-core frequencies
    are summarized).
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of empty stats is undefined")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance."""
        if self.count == 0:
            raise ValueError("variance of empty stats is undefined")
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self.count == 0:
            raise ValueError("min of empty stats is undefined")
        return self._min

    @property
    def maximum(self) -> float:
        if self.count == 0:
            raise ValueError("max of empty stats is undefined")
        return self._max


class TimeWeightedValue:
    """Integrate a piecewise-constant signal over simulated time.

    Feeding it ``(t, value)`` updates lets us compute energy from power
    (``integral`` with power in watts and time in seconds gives joules) and
    time-weighted average utilization.
    """

    def __init__(self, start_time: float, initial_value: float = 0.0) -> None:
        self._last_time = float(start_time)
        self._last_value = float(initial_value)
        self._integral = 0.0
        self._elapsed = 0.0

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}")
        dt = time - self._last_time
        self._integral += self._last_value * dt
        self._elapsed += dt
        self._last_time = time
        self._last_value = float(value)

    def finish(self, time: float) -> None:
        """Close the integration window at ``time`` (value unchanged)."""
        self.update(time, self._last_value)

    @property
    def integral(self) -> float:
        return self._integral

    @property
    def elapsed(self) -> float:
        return self._elapsed

    @property
    def average(self) -> float:
        if self._elapsed == 0:
            raise ValueError("time-weighted average over zero elapsed time")
        return self._integral / self._elapsed

    @property
    def current(self) -> float:
        return self._last_value


class Histogram:
    """Fixed-bin histogram for bounded measurements.

    Keeps exact counts per bin plus the raw extrema; percentile estimates
    interpolate within bins.  Used where sample streams are too large to
    keep (per-5-minute power samples across thousands of racks).
    """

    def __init__(self, low: float, high: float, bins: int = 1000) -> None:
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        if bins < 1:
            raise ValueError(f"need at least one bin, got {bins}")
        self.low = float(low)
        self.high = float(high)
        self.bins = bins
        self.counts = np.zeros(bins, dtype=np.int64)
        self.total = 0
        self._width = (self.high - self.low) / bins

    def add(self, value: float) -> None:
        idx = int((value - self.low) / self._width)
        idx = max(0, min(self.bins - 1, idx))  # clamp out-of-range samples
        self.counts[idx] += 1
        self.total += 1

    def extend(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return
        idx = ((arr - self.low) / self._width).astype(np.int64)
        np.clip(idx, 0, self.bins - 1, out=idx)
        np.add.at(self.counts, idx, 1)
        self.total += arr.size

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) by bin interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.total == 0:
            raise ValueError("quantile of empty histogram is undefined")
        target = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if cumulative + count >= target:
                # Linear interpolation within the bin.
                inside = (target - cumulative) / count if count else 0.0
                return self.low + (i + inside) * self._width
            cumulative += count
        return self.high


class Cdf:
    """Empirical CDF over a collected sample set.

    Provides the ``(x, F(x))`` series the paper's CDF figures plot, plus
    inverse lookup for "x % of racks have value below y" statements.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("CDF of empty sample set is undefined")
        self._sorted = np.sort(arr)

    @property
    def n(self) -> int:
        return int(self._sorted.size)

    def value_at(self, fraction: float) -> float:
        """Value v such that a ``fraction`` of samples are <= v
        (:func:`empirical_quantile` convention)."""
        return empirical_quantile(self._sorted, fraction)

    def fraction_below(self, value: float) -> float:
        """Fraction of samples <= value."""
        return float(np.searchsorted(self._sorted, value, side="right")
                     / self._sorted.size)

    def series(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """Return (x, F(x)) arrays suitable for plotting/printing."""
        if points < 2:
            raise ValueError(f"need at least 2 points, got {points}")
        fractions = np.linspace(0.0, 1.0, points)
        xs = np.quantile(self._sorted, fractions)
        return xs, fractions


class DowntimeTracker:
    """Availability accounting for a set of entities (servers, VMs).

    ``mark_down`` / ``mark_up`` bracket outages per entity id; ``finish``
    closes any outage still open at the end of the run so the totals are
    exact for the observed window.  Downtime intervals may not nest —
    marking a down entity down again is an accounting bug and raises.
    """

    def __init__(self) -> None:
        self._down_since: dict[str, float] = {}
        self._downtime_s: dict[str, float] = {}
        self.outages = 0

    def mark_down(self, entity_id: str, now: float) -> None:
        if entity_id in self._down_since:
            raise ValueError(f"{entity_id} is already down")
        self._down_since[entity_id] = now
        self.outages += 1

    def mark_up(self, entity_id: str, now: float) -> None:
        since = self._down_since.pop(entity_id, None)
        if since is None:
            raise ValueError(f"{entity_id} is not down")
        if now < since:
            raise ValueError(f"time went backwards: {now} < {since}")
        self._downtime_s[entity_id] = \
            self._downtime_s.get(entity_id, 0.0) + (now - since)

    def is_down(self, entity_id: str) -> bool:
        return entity_id in self._down_since

    def finish(self, now: float) -> None:
        """Close open outages at the end of the observation window."""
        for entity_id in list(self._down_since):
            self.mark_up(entity_id, now)

    def downtime_s(self, entity_id: str) -> float:
        return self._downtime_s.get(entity_id, 0.0)

    @property
    def total_downtime_s(self) -> float:
        return sum(self._downtime_s.values())
