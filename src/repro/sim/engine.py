"""Discrete-event simulation engine.

The engine is a classic event-calendar simulator: a priority queue of
``(time, priority, sequence, callback)`` entries and a virtual clock that
jumps from event to event.  Everything in the reproduction that needs the
notion of simulated time -- request arrivals, telemetry ticks, exploration
timers, weekly template recomputation -- is scheduled through one of these
engines.

The engine is deliberately minimal and deterministic:

* ties in time are broken by an explicit integer ``priority`` (lower runs
  first) and then by insertion order, so runs are reproducible;
* cancellation is handled lazily with tombstones, which keeps ``schedule``
  and ``cancel`` O(log n);
* there is no wall-clock coupling whatsoever.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Event", "SimulationEngine", "Process"]


@dataclass(order=True)
class _QueueEntry:
    time: float
    priority: int
    sequence: int
    event: Optional["Event"] = field(compare=False)


class Event:
    """A handle to a scheduled callback.

    Returned by :meth:`SimulationEngine.schedule`; the only operation a
    holder may perform is :meth:`cancel`.
    """

    __slots__ = ("callback", "time", "_cancelled", "fired", "_engine")

    def __init__(self, callback: Callable[[], None], time: float,
                 engine: Optional["SimulationEngine"] = None) -> None:
        self.callback = callback
        self.time = time
        self._cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        # A first cancel of a still-pending event turns its queue entry
        # into a tombstone: let the engine update its live count and
        # decide whether the heap needs compacting.
        if not self.fired and self._engine is not None:
            self._engine._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class SimulationEngine:
    """Event-calendar simulator with a virtual clock.

    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    #: Compaction only kicks in above this queue size: re-heapifying a
    #: handful of entries costs more bookkeeping than the tombstones do.
    _COMPACT_MIN_QUEUE = 32

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_QueueEntry] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._live = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time (seconds by convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained on schedule/cancel/fire, instead of a
        scan over the queue (which made per-tick health checks quadratic
        on long runs with many cancellations)."""
        return self._live

    def _on_cancel(self) -> None:
        """A pending event was cancelled: account for the tombstone and
        compact the heap once tombstones outnumber live entries (keeps
        long recovery/fault runs from accumulating dead entries)."""
        self._live -= 1
        if (len(self._queue) >= self._COMPACT_MIN_QUEUE
                and len(self._queue) - self._live > len(self._queue) // 2):
            # Entries are totally ordered (time, priority, unique
            # sequence), so rebuilding the heap preserves the exact
            # firing order of the survivors.
            self._queue = [entry for entry in self._queue
                           if entry.event is not None
                           and not entry.event.cancelled]
            heapq.heapify(self._queue)

    def schedule(self, time: float, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` to run at absolute simulation ``time``.

        ``time`` must not be in the past.  Lower ``priority`` runs first
        among events at the same timestamp.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before now={self._now}")
        event = Event(callback, time, engine=self)
        entry = _QueueEntry(time, priority, next(self._sequence), event)
        heapq.heappush(self._queue, entry)
        self._live += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       priority: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, priority)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def _prune_cancelled(self) -> Optional[_QueueEntry]:
        """Drop cancelled tombstones off the head of the queue and return
        the next *live* entry (still queued), or None if none remain.

        ``run(until=...)`` must look at the live head, not the raw head: a
        tombstone at t <= until sitting in front of a live event at
        t > until would otherwise let that later event fire past
        ``until``.
        """
        while self._queue:
            event = self._queue[0].event
            if event is None or event.cancelled:
                heapq.heappop(self._queue)
                continue
            return self._queue[0]
        return None

    def step(self) -> bool:
        """Process the next live event.  Returns False when queue is empty."""
        entry = self._prune_cancelled()
        if entry is None:
            return False
        heapq.heappop(self._queue)
        event = entry.event
        self._now = entry.time
        self._events_processed += 1
        self._live -= 1
        event.fired = True
        event.callback()
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in order until exhaustion, ``until``, or ``max_events``.

        ``until`` is an absolute time: events at exactly ``until`` are still
        processed; events strictly after it remain queued and the clock is
        advanced to ``until``.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while not self._stopped:
                if max_events is not None and processed >= max_events:
                    break
                next_entry = self._prune_cancelled()
                if next_entry is None:
                    break
                if until is not None and next_entry.time > until:
                    break
                if self.step():
                    processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run for ``duration`` simulated seconds from the current time."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.run(until=self._now + duration)


class Process:
    """Base class for simulation actors that own scheduled events.

    A process keeps track of the events it has scheduled so that it can be
    shut down cleanly (``cancel_all``) -- useful when a policy variant tears
    down one control loop and installs another mid-run.
    """

    def __init__(self, engine: SimulationEngine) -> None:
        self.engine = engine
        self._owned_events: list[Event] = []

    def schedule(self, time: float, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        event = self.engine.schedule(time, callback, priority)
        self._owned_events.append(event)
        self._prune()
        return event

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       priority: int = 0) -> Event:
        event = self.engine.schedule_after(delay, callback, priority)
        self._owned_events.append(event)
        self._prune()
        return event

    def cancel_all(self) -> None:
        """Cancel every event this process still owns."""
        for event in self._owned_events:
            event.cancel()
        self._owned_events.clear()

    def _prune(self) -> None:
        # Drop references to events that already fired or were cancelled so
        # long-running processes don't accumulate unbounded handles.
        if len(self._owned_events) > 256:
            self._owned_events = [
                e for e in self._owned_events
                if not e.cancelled and not e.fired
            ]
