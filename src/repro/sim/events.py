"""Periodic tasks and scheduling helpers built on the simulation engine.

The controllers in SmartOClock are all periodic: telemetry collection every
few seconds, power-budget recomputation weekly, exploration confirmation
after 30 seconds.  :class:`PeriodicTask` packages that pattern.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.sim.engine import Event, SimulationEngine

__all__ = ["PeriodicTask", "at_times"]


class PeriodicTask:
    """Run a callback every ``interval`` simulated seconds.

    The task re-arms itself after every firing until :meth:`stop` is called
    or ``max_firings`` is reached.  The first firing happens at
    ``start + interval`` unless ``fire_immediately`` is set.
    """

    def __init__(self, engine: SimulationEngine, interval: float,
                 callback: Callable[[], None], *,
                 fire_immediately: bool = False,
                 max_firings: Optional[int] = None,
                 priority: int = 0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.engine = engine
        self.interval = float(interval)
        self.callback = callback
        self.max_firings = max_firings
        self.priority = priority
        self.firings = 0
        self._stopped = False
        self._pending: Optional[Event] = None
        delay = 0.0 if fire_immediately else self.interval
        self._arm(delay)

    def _arm(self, delay: float) -> None:
        if self._stopped:
            return
        if self.max_firings is not None and self.firings >= self.max_firings:
            return
        self._pending = self.engine.schedule_after(
            delay, self._fire, priority=self.priority)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.firings += 1
        self.callback()
        self._arm(self.interval)

    def stop(self) -> None:
        """Stop the task; any pending firing is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    @property
    def stopped(self) -> bool:
        return self._stopped


def at_times(engine: SimulationEngine, times: Iterable[float],
             callback: Callable[[float], None], priority: int = 0) -> list[Event]:
    """Schedule ``callback(t)`` at each absolute time in ``times``.

    Convenience used by trace replay: the trace timestamps become the event
    calendar.  Returns the event handles in scheduling order.
    """
    events: list[Event] = []
    for t in times:
        events.append(engine.schedule(
            t, (lambda tt=t: callback(tt)), priority=priority))
    return events
