"""Discrete-event simulation substrate.

This package provides the simulation engine used by every experiment in the
reproduction: an event queue with a virtual clock (:mod:`repro.sim.engine`),
typed events and periodic processes (:mod:`repro.sim.events`), and metric
collectors for percentiles, CDFs, RMSE and time-weighted averages
(:mod:`repro.sim.metrics`).
"""

from repro.sim.engine import Event, SimulationEngine, Process
from repro.sim.events import PeriodicTask, at_times
from repro.sim.metrics import (
    Cdf,
    Histogram,
    RunningStats,
    TimeWeightedValue,
    percentile,
    rmse,
)

__all__ = [
    "Event",
    "SimulationEngine",
    "Process",
    "PeriodicTask",
    "at_times",
    "Cdf",
    "Histogram",
    "RunningStats",
    "TimeWeightedValue",
    "percentile",
    "rmse",
]
