"""Runtime invariant monitors for chaos runs.

The chaos harness (:mod:`repro.experiments.chaos`) is only as good as
the properties it checks.  :class:`InvariantMonitor` wraps a
:class:`~repro.core.platform.SmartOClockPlatform` and, once per platform
tick, evaluates the safety invariants the paper's claims rest on:

1. **rack-envelope** — every rack's post-enforcement draw is within its
   power limit (capping is the last line of defence; it must hold under
   any composition of control-plane faults);
2. **budget-split** — every budget assignment installed on an sOA sums,
   at the current slot, to at most the rack's planning limit (the gOA
   may never hand out more than the rack owns).  Skipped when
   oversubscription is enabled: the planning limit is then deliberately
   above the physical one and admission is judged by capping instead;
3. **wear-ledger** — no core's epoch overclocking ledger is overdrawn:
   consumed + reserved seconds never exceed allowance + carryover
   ("grants ≤ budget" in the lifetime sense — per-grant admission may
   legally explore past the instantaneous power budget);
4. **epoch-monotone** — the assignment epoch installed on a *live* sOA
   never decreases (the fence works).  The floor resets across an sOA
   crash: restoring an older checkpointed epoch after losing volatile
   state is legal, reverting a live sOA is not.  gOA replica epochs must
   never decrease, crash or not;
5. **restore-no-overgrant** — no restored sOA considered itself entitled
   to more budget than its checkpointed assignment allowed.

Deliberately *not* invariants (would false-positive on healthy runs —
see DESIGN.md for the unsoundness notes): per-server draw vs assigned
budget (exploration and feedback transients legally exceed it between
control ticks) and per-grant power admission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # sim stays importable without the core package
    from repro.core.platform import SmartOClockPlatform

__all__ = ["InvariantViolation", "InvariantMonitor"]

_POWER_RTOL = 1e-9       # relative slack on power comparisons
_WATTS_ATOL = 1e-6       # absolute slack on budget sums (float accumulation)
_SECONDS_ATOL = 1e-6     # absolute slack on wear-ledger seconds


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation (enough detail to debug from the seed)."""

    invariant: str   # which monitor fired (e.g. "rack-envelope")
    at_s: float      # simulated time of the offending tick
    subject: str     # rack / server / replica the violation is about
    detail: str      # human-readable numbers

    def __str__(self) -> str:
        return (f"[{self.invariant}] t={self.at_s:g}s {self.subject}: "
                f"{self.detail}")


class InvariantMonitor:
    """Evaluates the safety invariants after every platform tick.

    Violations accumulate in :attr:`violations`; ``check`` also returns
    the tick's new ones so harnesses can stop early.
    """

    def __init__(self, platform: "SmartOClockPlatform") -> None:
        self.platform = platform
        self.violations: list[InvariantViolation] = []
        # Per-sOA installed-epoch floor; dropped while the sOA is dead
        # (a restore may legally come back at an older checkpointed
        # epoch).  gOA floors never reset.
        self._soa_epoch_floor: dict[str, int] = {}
        self._goa_epoch_floor: dict[str, int] = {}
        self._restore_reports_seen = 0

    def check(self, now: float) -> list[InvariantViolation]:
        """Run all invariants; returns (and records) new violations."""
        found: list[InvariantViolation] = []
        self._check_rack_envelope(now, found)
        self._check_budget_split(now, found)
        self._check_wear_ledger(now, found)
        self._check_epoch_monotone(now, found)
        self._check_restores(now, found)
        self.violations.extend(found)
        return found

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------

    def _check_rack_envelope(self, now: float,
                             found: list[InvariantViolation]) -> None:
        for rack_id in sorted(self.platform.datacenter.racks):
            rack = self.platform.datacenter.racks[rack_id]
            power = rack.power_watts()
            limit = rack.power_limit_watts
            if power > limit * (1.0 + _POWER_RTOL):
                found.append(InvariantViolation(
                    "rack-envelope", now, rack_id,
                    f"draw {power:.3f} W exceeds limit {limit:.3f} W"))

    def _check_budget_split(self, now: float,
                            found: list[InvariantViolation]) -> None:
        if self.platform.config.enable_oversubscription:
            return
        seen: set[int] = set()
        for server_id in sorted(self.platform.soas):
            soa = self.platform.soas[server_id]
            assignment = soa._assignment
            if assignment is None or id(assignment) in seen:
                continue
            seen.add(id(assignment))
            rack = soa.server.rack
            if rack is None:
                continue
            total = assignment.total_at(now, out_of_horizon="wrap")
            if total > rack.power_limit_watts + _WATTS_ATOL:
                found.append(InvariantViolation(
                    "budget-split", now, server_id,
                    f"assignment epoch {assignment.epoch} sums to "
                    f"{total:.3f} W > rack limit "
                    f"{rack.power_limit_watts:.3f} W"))

    def _check_wear_ledger(self, now: float,
                           found: list[InvariantViolation]) -> None:
        for server_id in sorted(self.platform.soas):
            soa = self.platform.soas[server_id]
            for index, budget in enumerate(soa.core_budgets):
                booked = budget._consumed + budget._reserved
                capacity = (budget.epoch_allowance_seconds
                            + budget._carryover)
                if booked > capacity + _SECONDS_ATOL:
                    found.append(InvariantViolation(
                        "wear-ledger", now, f"{server_id}/core{index}",
                        f"booked {booked:.6f}s exceeds capacity "
                        f"{capacity:.6f}s"))

    def _check_epoch_monotone(self, now: float,
                              found: list[InvariantViolation]) -> None:
        for server_id in sorted(self.platform.soas):
            soa = self.platform.soas[server_id]
            if not soa.alive:
                # Crash pending restore: the next installed epoch may be
                # the (older) checkpointed one — reset the floor.
                self._soa_epoch_floor.pop(server_id, None)
                continue
            if soa._assignment is None:
                continue
            epoch = soa._assignment.epoch
            floor = self._soa_epoch_floor.get(server_id)
            if floor is not None and epoch < floor:
                found.append(InvariantViolation(
                    "epoch-monotone", now, server_id,
                    f"installed epoch went backwards: {floor} -> {epoch}"))
            self._soa_epoch_floor[server_id] = max(floor or 0, epoch)
        for rack_id in sorted(self.platform.supervisors):
            supervisor = self.platform.supervisors[rack_id]
            for replica in supervisor.replicas:
                key = f"{rack_id}/{replica.name}"
                epoch = replica.goa.epoch
                floor = self._goa_epoch_floor.get(key, 0)
                if epoch < floor:
                    found.append(InvariantViolation(
                        "epoch-monotone", now, key,
                        f"gOA epoch went backwards: {floor} -> {epoch}"))
                self._goa_epoch_floor[key] = max(floor, epoch)

    def _check_restores(self, now: float,
                        found: list[InvariantViolation]) -> None:
        lifecycle = self.platform.lifecycle
        if lifecycle is None:
            return
        reports = lifecycle.restore_reports
        for report in reports[self._restore_reports_seen:]:
            if report.overgranted:
                found.append(InvariantViolation(
                    "restore-no-overgrant", now, report.server_id,
                    f"restored budget {report.restored_budget_watts} W > "
                    f"checkpointed {report.checkpoint_budget_watts} W"))
        self._restore_reports_seen = len(reports)
