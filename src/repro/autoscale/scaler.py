"""Reactive horizontal and vertical scalers.

Both scalers watch a deployment's tail latency against its SLO and act
after ``consecutive_ticks`` consecutive out-of-band observations —
standard threshold autoscaling with hysteresis (scale-up band above
``high_fraction``·SLO, scale-down band below ``low_fraction``·SLO).

The horizontal scaler models VM boot delay: a newly requested instance
only becomes active ``boot_delay_s`` later ("booting up a new VM can take
up to a few minutes", §I) — the latency window during which overclocking,
which engages in milliseconds, wins.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScalerConfig", "HorizontalAutoscaler", "VerticalScaler"]


@dataclass(frozen=True)
class ScalerConfig:
    """Common threshold-scaler knobs."""

    high_fraction: float = 0.8     # scale up when p99 > high_fraction * SLO
    low_fraction: float = 0.4      # scale down when p99 < low_fraction * SLO
    consecutive_ticks: int = 2
    # Scale-in requires a longer quiet streak than scale-out: releasing
    # capacity too eagerly causes thrash (default: 3x the up streak).
    scale_in_ticks: int = 6
    min_instances: int = 1
    max_instances: int = 16
    boot_delay_s: float = 120.0
    cooldown_s: float = 60.0       # min time between scaling actions

    def __post_init__(self) -> None:
        if not 0 < self.low_fraction < self.high_fraction:
            raise ValueError(
                f"need 0 < low < high, got {self.low_fraction}"
                f"/{self.high_fraction}")
        if self.consecutive_ticks < 1:
            raise ValueError(
                f"consecutive_ticks must be >= 1: {self.consecutive_ticks}")
        if self.scale_in_ticks < 1:
            raise ValueError(
                f"scale_in_ticks must be >= 1: {self.scale_in_ticks}")
        if not 1 <= self.min_instances <= self.max_instances:
            raise ValueError("bad instance bounds: "
                             f"[{self.min_instances}, {self.max_instances}]")
        if self.boot_delay_s < 0 or self.cooldown_s < 0:
            raise ValueError("delays must be >= 0")


class HorizontalAutoscaler:
    """Scale-out/in on tail latency, with boot delay for new instances.

    The scaler tracks a *desired* count; ``active_instances(now)`` reports
    how many are actually serving (booted).  The driving experiment applies
    that number to the deployment each tick.
    """

    def __init__(self, config: ScalerConfig, slo_ms: float,
                 initial_instances: int = 1) -> None:
        if slo_ms <= 0:
            raise ValueError(f"slo_ms must be > 0: {slo_ms}")
        if not (config.min_instances <= initial_instances
                <= config.max_instances):
            raise ValueError(
                f"initial_instances {initial_instances} outside "
                f"[{config.min_instances}, {config.max_instances}]")
        self.config = config
        self.slo_ms = slo_ms
        self.desired = initial_instances
        self._booting: list[tuple[float, int]] = []  # (ready_time, count)
        self._active = initial_instances
        self._high_streak = 0
        self._low_streak = 0
        self._last_action = -float("inf")
        self.scale_out_count = 0
        self.scale_in_count = 0

    def active_instances(self, now: float) -> int:
        """Instances serving traffic at ``now`` (booted ones only)."""
        still_booting: list[tuple[float, int]] = []
        for ready_time, count in self._booting:
            if ready_time <= now:
                self._active += count
            else:
                still_booting.append((ready_time, count))
        self._booting = still_booting
        return self._active

    def observe(self, now: float, p99_ms: float) -> int:
        """Feed one latency observation; returns the new desired count."""
        cfg = self.config
        if p99_ms > cfg.high_fraction * self.slo_ms:
            self._high_streak += 1
            self._low_streak = 0
        elif p99_ms < cfg.low_fraction * self.slo_ms:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        in_cooldown = now - self._last_action < cfg.cooldown_s
        if (self._high_streak >= cfg.consecutive_ticks and not in_cooldown
                and self.desired < cfg.max_instances):
            self.request_scale_out(now)
        elif (self._low_streak >= cfg.scale_in_ticks and not in_cooldown
                and self.desired > cfg.min_instances):
            self._scale_in(now)
        return self.desired

    def request_scale_out(self, now: float, count: int = 1) -> int:
        """Request ``count`` new instances (used by SmartOClock's proactive
        fallback as well as the reactive path).  Returns instances added."""
        cfg = self.config
        added = min(count, cfg.max_instances - self.desired)
        if added <= 0:
            return 0
        self.desired += added
        self._booting.append((now + cfg.boot_delay_s, added))
        self._last_action = now
        self._high_streak = 0
        self.scale_out_count += added
        return added

    def _scale_in(self, now: float) -> None:
        self.desired -= 1
        # Remove a booting instance first; otherwise an active one.
        if self._booting:
            ready_time, count = self._booting.pop()
            if count > 1:
                self._booting.append((ready_time, count - 1))
        else:
            self._active -= 1
        self._last_action = now
        self._low_streak = 0
        self.scale_in_count += 1


class VerticalScaler:
    """Scale frequency up/down on tail latency (the ScaleUp baseline).

    Unlike overclocking under SmartOClock, this naive vertical scaler has
    no admission control: it requests the max frequency whenever latency is
    high and drops back to turbo when latency is low.
    """

    def __init__(self, config: ScalerConfig, slo_ms: float,
                 turbo_ghz: float = 3.3, max_ghz: float = 4.0) -> None:
        if slo_ms <= 0:
            raise ValueError(f"slo_ms must be > 0: {slo_ms}")
        if not 0 < turbo_ghz <= max_ghz:
            raise ValueError(f"need 0 < turbo <= max: {turbo_ghz}/{max_ghz}")
        self.config = config
        self.slo_ms = slo_ms
        self.turbo_ghz = turbo_ghz
        self.max_ghz = max_ghz
        self.freq_ghz = turbo_ghz
        self._high_streak = 0
        self._low_streak = 0
        self.boost_ticks = 0

    def observe(self, now: float, p99_ms: float) -> float:
        """Feed one latency observation; returns the target frequency."""
        cfg = self.config
        if p99_ms > cfg.high_fraction * self.slo_ms:
            self._high_streak += 1
            self._low_streak = 0
        elif p99_ms < cfg.low_fraction * self.slo_ms:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        if self._high_streak >= cfg.consecutive_ticks:
            self.freq_ghz = self.max_ghz
        elif self._low_streak >= cfg.consecutive_ticks:
            self.freq_ghz = self.turbo_ghz
        if self.freq_ghz > self.turbo_ghz:
            self.boost_ticks += 1
        return self.freq_ghz
