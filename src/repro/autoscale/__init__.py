"""Autoscaling comparators.

The paper's cluster baselines (§V-A): *ScaleOut* scales the instance count
horizontally on observed tail latency, *ScaleUp* scales core frequency
vertically, *Baseline* does neither.  SmartOClock extends the same
autoscaling interface with overclocking plus scale-out as the fallback.
"""

from repro.autoscale.scaler import (
    HorizontalAutoscaler,
    ScalerConfig,
    VerticalScaler,
)

__all__ = ["ScalerConfig", "HorizontalAutoscaler", "VerticalScaler"]
