"""Datacenter cluster substrate.

Models the physical plant SmartOClock manages: the datacenter → rack →
server → VM → core topology (:mod:`repro.cluster.topology`), the per-core
DVFS / voltage model (:mod:`repro.cluster.frequency`), the server power
model (:mod:`repro.cluster.power`), and the rack power-capping subsystem
with warning messages and prioritized throttling
(:mod:`repro.cluster.capping`).
"""

from repro.cluster.frequency import FrequencyPlan, DEFAULT_FREQUENCY_PLAN
from repro.cluster.power import PowerModel, DEFAULT_POWER_MODEL
from repro.cluster.topology import Core, Datacenter, Rack, Server, VirtualMachine
from repro.cluster.containers import Container, ContainerHost
from repro.cluster.gpu import GPU_FREQUENCY_PLAN, GPU_POWER_MODEL
from repro.cluster.placement import (
    PlacementError,
    PowerAwarePlacer,
    ResourceCentricPlacer,
)
from repro.cluster.capping import (
    CapEvent,
    FairShareThrottler,
    RackPowerManager,
    PrioritizedThrottler,
    WarningMessage,
)

__all__ = [
    "FrequencyPlan",
    "DEFAULT_FREQUENCY_PLAN",
    "PowerModel",
    "DEFAULT_POWER_MODEL",
    "Core",
    "Datacenter",
    "Rack",
    "Server",
    "VirtualMachine",
    "Container",
    "ContainerHost",
    "GPU_FREQUENCY_PLAN",
    "GPU_POWER_MODEL",
    "PlacementError",
    "PowerAwarePlacer",
    "ResourceCentricPlacer",
    "CapEvent",
    "FairShareThrottler",
    "RackPowerManager",
    "PrioritizedThrottler",
    "WarningMessage",
]
