"""GPU overclocking profile (paper §VI "Overclocking beyond CPUs").

"SmartOClock is a general framework and its principles can be easily
applied for overclocking any server component."  The framework's only
component-specific inputs are the :class:`~repro.cluster.frequency.FrequencyPlan`
(operating points and the V/f curve) and the
:class:`~repro.cluster.power.PowerModel` calibration; this module provides
a datacenter-GPU instantiation so the identical sOA/gOA machinery manages
GPU boost clocks.

Calibration sketch (A100-class part): base 1.1 GHz, boost 1.41 GHz,
overclock ceiling 1.6 GHz; ~80 W idle, ~400 W at full-utilization boost
across 108 "cores" (SMs); overclocking an SM costs disproportionate power
through the same V²f law.
"""

from __future__ import annotations

from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import PowerModel

__all__ = ["GPU_FREQUENCY_PLAN", "GPU_POWER_MODEL"]

GPU_FREQUENCY_PLAN = FrequencyPlan(
    base_ghz=1.10,
    turbo_ghz=1.41,          # the vendor boost clock
    overclock_max_ghz=1.60,  # qualified overclock ceiling
    step_ghz=0.015,          # ~15 MHz clock-offset steps
    turbo_volts=0.90,
    volts_per_ghz_below_turbo=0.50,
    volts_per_ghz_above_turbo=1.80,
    min_volts=0.70,
)

#: Full-boost dynamic power ≈ 108 SMs × ~2.6 W ≈ 285 W on top of ~80 W
#: idle/HBM floor — a ~365 W part at sustained full utilization.
GPU_POWER_MODEL = PowerModel(
    plan=GPU_FREQUENCY_PLAN,
    idle_watts=80.0,
    dynamic_coefficient=2.3,
    cores=108,
)
