"""CPU frequency (DVFS) and voltage model.

The paper's cluster uses AMD 64-core parts whose max turbo is 3.3 GHz and
whose overclocked ceiling is 4.0 GHz, stepped in 100 MHz increments by the
sOA's prioritized feedback loop (SmartOClock §IV-D, §V-A).  The voltage
curve matters because wear-out and dynamic power both grow with V: running
past the rated envelope needs disproportionate overvolting, which is why
overclocking is expensive in both watts and lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FrequencyPlan", "DEFAULT_FREQUENCY_PLAN"]


@dataclass(frozen=True)
class FrequencyPlan:
    """Operating points of one CPU SKU.

    Frequencies in GHz, voltages in volts.  ``base_ghz`` is the guaranteed
    all-core frequency, ``turbo_ghz`` the vendor max turbo (the highest
    in-warranty point), ``overclock_max_ghz`` the platform-qualified
    overclocking ceiling.  ``step_ghz`` is the granularity of the sOA's
    feedback loop.
    """

    base_ghz: float = 2.45
    turbo_ghz: float = 3.3
    overclock_max_ghz: float = 4.0
    step_ghz: float = 0.1
    # Voltage curve: volts at turbo, and dV/df slopes below/above turbo.
    # Overclocking beyond the rated envelope requires steep overvolting,
    # which drives both the ~10 W/core power delta of the paper's worked
    # example (SmartOClock paper, section IV-C) and the exponential wear acceleration (section II).
    turbo_volts: float = 1.05
    volts_per_ghz_below_turbo: float = 0.30
    volts_per_ghz_above_turbo: float = 1.00
    min_volts: float = 0.70

    def __post_init__(self) -> None:
        if not (0 < self.base_ghz <= self.turbo_ghz <= self.overclock_max_ghz):
            raise ValueError(
                "need 0 < base <= turbo <= overclock_max, got "
                f"{self.base_ghz}/{self.turbo_ghz}/{self.overclock_max_ghz}")
        if self.step_ghz <= 0:
            raise ValueError(f"step must be positive, got {self.step_ghz}")

    def voltage(self, freq_ghz: float) -> float:
        """Operating voltage at ``freq_ghz`` (piecewise-linear V/f curve)."""
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_ghz}")
        if freq_ghz >= self.turbo_ghz:
            v = (self.turbo_volts
                 + self.volts_per_ghz_above_turbo * (freq_ghz - self.turbo_ghz))
        else:
            v = (self.turbo_volts
                 - self.volts_per_ghz_below_turbo * (self.turbo_ghz - freq_ghz))
        return max(self.min_volts, v)

    def is_overclocked(self, freq_ghz: float) -> bool:
        """True when the point is beyond the in-warranty turbo ceiling."""
        return freq_ghz > self.turbo_ghz + 1e-9

    def clamp(self, freq_ghz: float) -> float:
        """Clamp a requested frequency into [base, overclock_max]."""
        return min(self.overclock_max_ghz, max(self.base_ghz, freq_ghz))

    def step_up(self, freq_ghz: float) -> float:
        """One feedback-loop step up, clamped at the overclock ceiling."""
        return self.clamp(freq_ghz + self.step_ghz)

    def step_down(self, freq_ghz: float) -> float:
        """One feedback-loop step down, clamped at the base frequency."""
        return self.clamp(freq_ghz - self.step_ghz)

    def overclock_steps(self) -> list[float]:
        """All overclocked operating points above turbo, ascending."""
        steps: list[float] = []
        f = self.turbo_ghz + self.step_ghz
        while f <= self.overclock_max_ghz + 1e-9:
            steps.append(round(f, 6))
            f += self.step_ghz
        return steps


DEFAULT_FREQUENCY_PLAN = FrequencyPlan()
