"""Rack power-capping subsystem.

Reproduces the safety net the paper assumes from prior work (Intel RAPL,
prioritized capping): a rack manager samples rack power, broadcasts a
*warning* to all server agents when the draw crosses a warning threshold
(default 95 % of the rack limit, §IV-D), and fires a *capping event* with
prioritized throttling when the draw exceeds the limit.

Throttling order (matching "prioritized capping" [Kumbhare+ ATC'21,
Li+ OSDI'20] as the paper uses it):

1. overclocked VMs are stepped back to max turbo, least-important first;
2. if still over the limit, all VMs are stepped below turbo toward the base
   frequency, least-important first.

The performance penalty Table I reports ("Penalty on Power Cap") is the
frequency reduction this throttler inflicts on *non-overclocked* VMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.topology import Rack, Server, VirtualMachine

__all__ = ["WarningMessage", "CapEvent", "PrioritizedThrottler",
           "FairShareThrottler", "RackPowerManager"]


@dataclass(frozen=True)
class WarningMessage:
    """Broadcast when rack power crosses the warning threshold."""

    rack_id: str
    time: float
    power_watts: float
    limit_watts: float


@dataclass(frozen=True)
class CapEvent:
    """A power capping event: the rack exceeded its limit."""

    rack_id: str
    time: float
    power_watts: float
    limit_watts: float
    throttled_vms: int = 0
    # Mean frequency reduction (GHz) inflicted on non-overclocked VMs.
    noc_penalty_ghz: float = 0.0


class PrioritizedThrottler:
    """Reduce rack power below its limit by stepping down VM frequencies."""

    def __init__(self, max_iterations: int = 512) -> None:
        self.max_iterations = max_iterations

    def throttle(self, rack: Rack,
                 target_watts: Optional[float] = None) -> tuple[int, float]:
        """Throttle until rack power is at most ``target_watts`` (defaults
        to the rack limit) or every VM is at its floor.

        Real capping hardware overshoots: it drives power to a recovery
        setpoint *below* the limit and releases gradually, so callers pass
        a target under the limit.

        Returns ``(throttled_vm_count, mean_noc_penalty_ghz)``.
        """
        if target_watts is None:
            target_watts = rack.power_limit_watts
        touched: set[int] = set()
        noc_before: dict[int, float] = {}
        vms = [(vm, server) for server in rack.servers
               for vm in server.vms.values()]
        if not vms:
            return 0, 0.0
        # Each VM is judged against *its own server's* plan: racks may mix
        # SKUs (the paper's §IV-B heterogeneous budgeting case), so there
        # is no single turbo/base threshold for the whole rack.
        for vm, server in vms:
            if vm.freq_ghz is not None and \
                    not server.plan.is_overclocked(vm.freq_ghz):
                noc_before[vm.vm_id] = vm.freq_ghz

        # Phase 0 — the immediate hardware response revokes every boost:
        # overclocked VMs drop straight back to their server's max turbo.
        for vm, server in vms:
            plan = server.plan
            if vm.freq_ghz is not None and plan.is_overclocked(vm.freq_ghz):
                server.set_vm_frequency(vm, plan.turbo_ghz)
                touched.add(vm.vm_id)
        # Phase 1 — if the rack is still over the recovery target, the
        # least important VMs are driven toward base frequency first; this
        # is what makes capping events expensive for low-priority
        # bystanders (e.g. ML training) under a naive policy (§V-A).
        if rack.power_watts() > target_watts:
            self._phase(rack, vms, touched, target_watts,
                        eligible=lambda vm, server:
                        vm.freq_ghz > server.plan.base_ghz + 1e-9,
                        floor=lambda vm, server: server.plan.base_ghz)

        penalties: list[float] = []
        for vm, _ in vms:
            if vm.vm_id in noc_before and vm.vm_id in touched:
                penalties.append(noc_before[vm.vm_id] - vm.freq_ghz)
        mean_penalty = sum(penalties) / len(penalties) if penalties else 0.0
        return len(touched), mean_penalty

    def _phase(self, rack: Rack, vms: list[tuple[VirtualMachine, Server]],
               touched: set[int], target_watts: float,
               eligible: Callable[[VirtualMachine, Server], bool],
               floor: Callable[[VirtualMachine, Server], float]) -> None:
        # Strictly prioritized: the least-important VM is driven all the
        # way to its floor before the next one is touched.  The ordering
        # is computed once; each step only needs the O(1) cached rack
        # power, so a full capping event is O(steps), not
        # O(steps × servers × cores).
        ordering = sorted(vms, key=lambda pair: (pair[0].priority,
                                                 pair[0].vm_id))
        steps = 0
        for vm, server in ordering:
            while steps < self.max_iterations:
                if rack.power_watts() <= target_watts:
                    return
                if vm.freq_ghz is None or not eligible(vm, server):
                    break
                target = max(floor(vm, server),
                             vm.freq_ghz - server.plan.step_ghz)
                if target >= vm.freq_ghz - 1e-9:
                    break
                server.set_vm_frequency(vm, target)
                touched.add(vm.vm_id)
                steps += 1


class FairShareThrottler(PrioritizedThrottler):
    """Capping that splits the rack budget evenly among servers.

    The NaiveOClock behaviour (SmartOClock paper, section V-B): on a capping event every
    server is clamped toward the even share of the recovery target, so
    power-hungry servers (ML training) and overclocked servers alike are
    throttled -- the section III Q4 pathology.
    """

    def throttle(self, rack: Rack,
                 target_watts: Optional[float] = None) -> tuple[int, float]:
        if target_watts is None:
            target_watts = rack.power_limit_watts
        if not rack.servers:
            return 0, 0.0
        share = target_watts / len(rack.servers)
        touched: set[int] = set()
        noc_before = {
            vm.vm_id: vm.freq_ghz
            for server in rack.servers for vm in server.vms.values()
            if vm.freq_ghz is not None
            and not server.plan.is_overclocked(vm.freq_ghz)
        }
        for server in rack.servers:
            # Each server is clamped against its *own* plan (racks can mix
            # SKUs), and the candidate ordering is computed once: stepping
            # a VM down never changes the (priority, vm_id) order, it only
            # removes the VM once it reaches the base floor.
            plan = server.plan
            steps = 0
            candidates = sorted(
                (vm for vm in server.vms.values() if vm.freq_ghz is not None),
                key=lambda vm: (vm.priority, vm.vm_id))
            for vm in candidates:
                while (server.power_watts() > share
                       and steps < self.max_iterations
                       and vm.freq_ghz > plan.base_ghz + 1e-9):
                    server.set_vm_frequency(vm, plan.step_down(vm.freq_ghz))
                    touched.add(vm.vm_id)
                    steps += 1
                if (server.power_watts() <= share
                        or steps >= self.max_iterations):
                    break
        penalties = [noc_before[vm.vm_id] - vm.freq_ghz
                     for server in rack.servers
                     for vm in server.vms.values()
                     if vm.vm_id in noc_before and vm.vm_id in touched]
        mean_penalty = sum(penalties) / len(penalties) if penalties else 0.0
        return len(touched), mean_penalty


class RackPowerManager:
    """Samples rack power, issues warnings, and fires capping events.

    Server agents subscribe with :meth:`on_warning` / :meth:`on_cap`.  The
    manager is sampled explicitly (``sample(now)``) by whatever drives time
    (a :class:`~repro.sim.events.PeriodicTask` in the DES experiments, the
    tick loop in the trace-driven simulator).
    """

    def __init__(self, rack: Rack, *, warning_fraction: float = 0.95,
                 restore_fraction: float = 0.90,
                 graceful_restore: bool = True,
                 throttler: Optional[PrioritizedThrottler] = None) -> None:
        if not 0.0 < warning_fraction <= 1.0:
            raise ValueError(
                f"warning_fraction must be in (0, 1], got {warning_fraction}")
        if not 0.0 < restore_fraction <= warning_fraction:
            raise ValueError(
                "restore_fraction must be in (0, warning_fraction], got "
                f"{restore_fraction}")
        self.rack = rack
        self.warning_fraction = warning_fraction
        self.restore_fraction = restore_fraction
        self.graceful_restore = graceful_restore
        self.throttler = throttler or PrioritizedThrottler()
        self._warning_subscribers: list[Callable[[WarningMessage], None]] = []
        self._cap_subscribers: list[Callable[[CapEvent], None]] = []
        self.warnings: list[WarningMessage] = []
        self.cap_events: list[CapEvent] = []

    @property
    def warning_watts(self) -> float:
        return self.warning_fraction * self.rack.power_limit_watts

    def on_warning(self, callback: Callable[[WarningMessage], None]) -> None:
        self._warning_subscribers.append(callback)

    def on_cap(self, callback: Callable[[CapEvent], None]) -> None:
        self._cap_subscribers.append(callback)

    def sample(self, now: float) -> Optional[CapEvent]:
        """Inspect rack power once; warn and/or cap as needed.

        Returns the :class:`CapEvent` if one fired, else ``None``.
        """
        power = self.rack.power_watts()
        limit = self.rack.power_limit_watts
        if power < self.restore_fraction * limit:
            # Capped state releases as power recedes: throttled VMs step
            # back toward turbo (most important first).
            self._restore_step()
            power = self.rack.power_watts()
        if power >= self.warning_watts:
            message = WarningMessage(self.rack.rack_id, now, power, limit)
            self.warnings.append(message)
            for callback in self._warning_subscribers:
                callback(message)
        if power > limit:
            throttled, penalty = self.throttler.throttle(
                self.rack, target_watts=self.restore_fraction * limit)
            event = CapEvent(self.rack.rack_id, now, power, limit,
                             throttled_vms=throttled,
                             noc_penalty_ghz=penalty)
            self.cap_events.append(event)
            for callback in self._cap_subscribers:
                callback(event)
            return event
        return None

    def _restore_step(self) -> None:
        """Restore throttled (below-turbo) VMs, most important first, up
        to the restore threshold.

        The hardware cap releases within seconds once power recedes, so a
        single sample restores as far as the threshold allows rather than
        one step per tick -- which is also why a naive policy oscillates
        between capping and restoring instead of settling.  The ordering
        is computed once and every per-step budget check is an O(1) read
        of the rack's cached power.
        """
        if self.rack.below_turbo_vms() == 0:
            return  # nothing throttled: the restore scan is a no-op
        budget = self.restore_fraction * self.rack.power_limit_watts
        vms = [(vm, server) for server in self.rack.servers
               for vm in server.vms.values()]
        if not self.graceful_restore:
            # Dumb hardware: the cap releases fully once power recedes --
            # every throttled VM snaps back to turbo, which is what makes
            # a naive policy oscillate between capping and restoring.
            for vm, server in vms:
                if vm.freq_ghz is not None and \
                        vm.freq_ghz < server.plan.turbo_ghz - 1e-9:
                    server.set_vm_frequency(vm, server.plan.turbo_ghz)
            return
        ordering = sorted(vms, key=lambda pair: (-pair[0].priority,
                                                 pair[0].vm_id))
        for _ in range(512):
            if self.rack.power_watts() >= budget:
                return
            stepped = False
            for vm, server in ordering:
                if self.rack.power_watts() >= budget:
                    return
                if vm.freq_ghz is not None and \
                        vm.freq_ghz < server.plan.turbo_ghz - 1e-9:
                    server.set_vm_frequency(
                        vm, min(server.plan.turbo_ghz,
                                server.plan.step_up(vm.freq_ghz)))
                    stepped = True
            if not stepped:
                return
