"""Datacenter topology: datacenter → rack → server → VM → core.

This is the physical plant the SmartOClock control plane manages.  The
objects are deliberately "dumb": they hold placement, per-VM operating
points, and utilization, and can report power through a
:class:`~repro.cluster.power.PowerModel`.  All policy (who gets to
overclock, how budgets are split) lives in :mod:`repro.core`.

Power accounting is *incremental*: every mutation that can change a
server's draw (placement, frequency, utilization, per-core overrides)
applies a watt delta to the owning server's cached total, and the delta
propagates up through the rack to the datacenter.  ``power_watts()`` at
every level is therefore an O(1) read — the property the capping and
enforcement loops rely on to poll power once per 100 MHz step (see
DESIGN.md "Incremental power accounting").  ``recompute_power_watts()``
is the from-scratch evaluation kept for validation.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional

from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import PowerModel

__all__ = ["Core", "VirtualMachine", "Server", "Rack", "Datacenter"]

_vm_ids = itertools.count()


class Core:
    """One physical core: operating point plus wear-relevant accounting.

    ``utilization_override`` lets finer-grained schedulers (containers
    inside a VM, SmartOClock paper section VI) pin a per-core utilization distinct from
    the VM-level average; ``None`` means "use the VM's utilization".

    ``freq_ghz``, ``vm_id`` and ``utilization_override`` are
    invalidation-aware properties: writes notify the owning server so it
    can delta-update its cached wattage (guest-side code such as
    :mod:`repro.cluster.containers` mutates them directly), and they
    first fold any pending lazy accrual in at the *old* operating point.
    ``busy_seconds``/``overclock_seconds`` likewise flush on read, so
    deferred accrual is invisible to every observer.
    """

    __slots__ = ("index", "_busy_seconds", "_overclock_seconds",
                 "_freq_ghz", "_vm_id", "_utilization_override", "_server")

    def __init__(self, index: int, freq_ghz: float,
                 vm_id: Optional[int] = None,
                 busy_seconds: float = 0.0,
                 overclock_seconds: float = 0.0,
                 utilization_override: Optional[float] = None) -> None:
        self.index = index
        self._busy_seconds = busy_seconds
        self._overclock_seconds = overclock_seconds
        self._freq_ghz = freq_ghz
        self._vm_id = vm_id
        self._utilization_override = utilization_override
        self._server: Optional["Server"] = None

    @property
    def busy_seconds(self) -> float:
        server = self._server
        if server is not None and server._pending_runs:
            server._flush_accrual()
        return self._busy_seconds

    @busy_seconds.setter
    def busy_seconds(self, value: float) -> None:
        self._busy_seconds = value

    @property
    def overclock_seconds(self) -> float:
        server = self._server
        if server is not None and server._pending_runs:
            server._flush_accrual()
        return self._overclock_seconds

    @overclock_seconds.setter
    def overclock_seconds(self, value: float) -> None:
        self._overclock_seconds = value

    def _replay_accrual(self, runs: list[list[float]], vm_utilization: float,
                        plan: FrequencyPlan) -> None:
        """Fold pending ``[dt, count]`` runs into the accumulators.

        The operating point is constant across the pending window (any
        change flushes first), so the per-tick increments are hoisted;
        the left fold itself is replayed add-by-add to stay bit-identical
        with the eager per-tick loop.
        """
        eff = self.effective_utilization(vm_utilization)
        overclocked = plan.is_overclocked(self._freq_ghz)
        busy = self._busy_seconds
        oc = self._overclock_seconds
        for dt, count in runs:
            inc = eff * dt
            for _ in itertools.repeat(None, int(count)):
                busy += inc
                if overclocked:
                    oc += dt
        self._busy_seconds = busy
        self._overclock_seconds = oc

    @property
    def freq_ghz(self) -> float:
        return self._freq_ghz

    @freq_ghz.setter
    def freq_ghz(self, value: float) -> None:
        if value == self._freq_ghz:
            return
        server = self._server
        if server is None:
            self._freq_ghz = value
            return
        server._flush_accrual()
        before = server._core_watts(self)
        self._freq_ghz = value
        server._apply_core_delta(server._core_watts(self) - before)

    @property
    def vm_id(self) -> Optional[int]:
        return self._vm_id

    @vm_id.setter
    def vm_id(self, value: Optional[int]) -> None:
        if value == self._vm_id:
            return
        server = self._server
        if server is None:
            self._vm_id = value
            return
        server._flush_accrual()
        before = server._core_watts(self)
        self._vm_id = value
        server._apply_core_delta(server._core_watts(self) - before)

    @property
    def utilization_override(self) -> Optional[float]:
        return self._utilization_override

    @utilization_override.setter
    def utilization_override(self, value: Optional[float]) -> None:
        if value == self._utilization_override:
            return
        server = self._server
        if server is None:
            self._utilization_override = value
            return
        server._flush_accrual()
        before = server._core_watts(self)
        self._utilization_override = value
        server._apply_core_delta(server._core_watts(self) - before)

    @property
    def allocated(self) -> bool:
        return self._vm_id is not None

    def effective_utilization(self, vm_utilization: float) -> float:
        if self._utilization_override is None:
            return vm_utilization
        return self._utilization_override

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Core(index={self.index}, freq_ghz={self._freq_ghz}, "
                f"vm_id={self._vm_id})")


class VirtualMachine:
    """A VM instance: cores, utilization, operating point, priority.

    ``priority`` orders VMs for prioritized capping and for the sOA's
    feedback loop: **higher value = more important** (throttled last,
    overclocked first).  ``utilization`` is the average per-core busy
    fraction in [0, 1].
    """

    def __init__(self, n_cores: int, *, name: str = "",
                 priority: int = 0, workload: str = "generic",
                 utilization: float = 0.0,
                 vm_id: Optional[int] = None) -> None:
        if n_cores < 1:
            raise ValueError(f"a VM needs at least 1 core, got {n_cores}")
        self.vm_id = next(_vm_ids) if vm_id is None else vm_id
        self.name = name or f"vm-{self.vm_id}"
        self.n_cores = n_cores
        self.priority = priority
        self.workload = workload
        self.freq_ghz: Optional[float] = None  # set on placement
        self.server: Optional["Server"] = None
        self._utilization = 0.0
        self.utilization = utilization

    @property
    def placed(self) -> bool:
        return self.server is not None

    @property
    def utilization(self) -> float:
        return self._utilization

    @utilization.setter
    def utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {utilization}")
        if utilization == self._utilization:
            return
        if self.server is not None:
            self.server._vm_utilization_changed(self, utilization)
        else:
            self._utilization = utilization

    def set_utilization(self, utilization: float) -> None:
        self.utilization = utilization

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.server.server_id if self.server else "unplaced"
        return (f"VirtualMachine({self.name}, cores={self.n_cores}, "
                f"util={self.utilization:.2f}, f={self.freq_ghz}, on={where})")


class Server:
    """A physical server hosting VMs on its cores.

    The server applies per-VM frequencies to the VM's assigned cores and
    reports power via its :class:`PowerModel`.  ``advance(dt)`` accrues the
    busy/overclocked core-seconds that the reliability subsystem consumes.
    """

    def __init__(self, server_id: str, power_model: PowerModel,
                 rack: Optional["Rack"] = None) -> None:
        self.server_id = server_id
        self.power_model = power_model
        self.rack = rack
        self.vms: dict[int, VirtualMachine] = {}
        self._vm_cores: dict[int, list[Core]] = {}
        # Cached sum of per-core dynamic watts, delta-updated on mutation.
        self._dynamic_watts = 0.0
        # Extra non-VM power (e.g. a colocated agent); usually zero.
        self._background_watts = 0.0
        # Powered off (crashed): draws nothing, contributes nothing to
        # the rack aggregate until brought back online.
        self._offline = False
        # Lazy accrual: ``advance`` appends/extends [dt, tick-count] runs
        # here instead of touching every core; any operating-point change
        # (and any accumulator read) folds the runs in at the still-old
        # point via ``_flush_accrual``.  ``eager_accounting`` disables the
        # deferral — the equivalence oracle's reference mode.
        self._pending_runs: list[list[float]] = []
        self._accrual_hooks: dict[str, Callable[[], None]] = {}
        self.eager_accounting = False
        # VMs currently below the plan's turbo frequency; lets the rack
        # restore step skip entirely when nothing needs stepping up.
        self._below_turbo_vms = 0
        plan = power_model.plan
        self.cores = [Core(i, plan.turbo_ghz)
                      for i in range(power_model.cores)]
        for core in self.cores:
            core._server = self

    @property
    def plan(self) -> FrequencyPlan:
        return self.power_model.plan

    @property
    def background_watts(self) -> float:
        return self._background_watts

    @background_watts.setter
    def background_watts(self, value: float) -> None:
        delta = value - self._background_watts
        self._background_watts = value
        if delta and self.rack is not None and not self._offline:
            self.rack._apply_power_delta(delta)

    @property
    def offline(self) -> bool:
        return self._offline

    @offline.setter
    def offline(self, value: bool) -> None:
        """Power the server off/on.

        The cached dynamic/background watt totals keep tracking core
        state while the server is off (so the books stay consistent for
        whoever powers it back on); only the *rack* aggregate sees the
        server disappear and reappear.
        """
        if value == self._offline:
            return
        self._flush_accrual()
        live_watts = (self.power_model.idle_watts + self._dynamic_watts
                      + self._background_watts)
        self._offline = value
        if self.rack is not None:
            self.rack._apply_power_delta(
                -live_watts if value else live_watts)

    # -- incremental power accounting ----------------------------------

    def _core_watts(self, core: Core) -> float:
        """Current dynamic-power contribution of one core (0 when idle)."""
        vm = self.vms.get(core._vm_id) if core._vm_id is not None else None
        if vm is None:
            return 0.0
        return self.power_model.core_dynamic_watts(
            core.effective_utilization(vm._utilization), core._freq_ghz)

    def _apply_core_delta(self, delta: float) -> None:
        """Fold a per-core watt change into this server's cached total and
        propagate it up to the rack (and from there to the datacenter)."""
        if delta:
            self._dynamic_watts += delta
            if self.rack is not None and not self._offline:
                self.rack._apply_power_delta(delta)

    def _vm_utilization_changed(self, vm: VirtualMachine,
                                utilization: float) -> None:
        """Re-account the VM's cores around a VM-level utilization write."""
        self._flush_accrual()
        cores = self._vm_cores.get(vm.vm_id, ())
        before = sum(self._core_watts(c) for c in cores)
        # The one sanctioned cross-object write: this *is* the delta
        # protocol the setter delegates to.
        vm._utilization = utilization  # oclint: disable=power-cache-write
        after = sum(self._core_watts(c) for c in cores)
        self._apply_core_delta(after - before)

    @property
    def free_cores(self) -> int:
        return sum(1 for c in self.cores if not c.allocated)

    def place_vm(self, vm: VirtualMachine) -> None:
        """Assign the VM to free cores at max turbo."""
        if vm.placed:
            raise ValueError(f"{vm.name} is already placed on "
                             f"{vm.server.server_id}")
        free = [c for c in self.cores if not c.allocated]
        if len(free) < vm.n_cores:
            raise ValueError(
                f"{self.server_id}: need {vm.n_cores} cores, "
                f"only {len(free)} free")
        # Flush before registration: pending runs predate this VM and
        # must not accrue onto its cores.
        self._flush_accrual()
        assigned = free[:vm.n_cores]
        # Register the VM first so the core setters below can see its
        # utilization and delta-update the cached wattage.
        self.vms[vm.vm_id] = vm
        self._vm_cores[vm.vm_id] = assigned
        for core in assigned:
            core.vm_id = vm.vm_id
            core.freq_ghz = self.plan.turbo_ghz
        vm.server = self
        vm.freq_ghz = self.plan.turbo_ghz

    def remove_vm(self, vm: VirtualMachine) -> None:
        if vm.vm_id not in self.vms:
            raise KeyError(f"{vm.name} is not on {self.server_id}")
        self._flush_accrual()
        if (vm.freq_ghz is not None
                and vm.freq_ghz < self.plan.turbo_ghz - 1e-9):
            self._below_turbo_vms -= 1
        for core in self._vm_cores[vm.vm_id]:
            core.vm_id = None
            core.freq_ghz = self.plan.turbo_ghz
            core.utilization_override = None
        del self.vms[vm.vm_id]
        del self._vm_cores[vm.vm_id]
        vm.server = None
        vm.freq_ghz = None

    def vm_cores(self, vm: VirtualMachine) -> list[Core]:
        return list(self._vm_cores[vm.vm_id])

    def set_vm_frequency(self, vm: VirtualMachine, freq_ghz: float) -> float:
        """Set the VM's cores to ``freq_ghz`` (clamped to the plan). Returns
        the actually-applied frequency."""
        if vm.vm_id not in self.vms:
            raise KeyError(f"{vm.name} is not on {self.server_id}")
        # Explicit flush: vm.freq_ghz feeds the wear ledger's voltage even
        # when every core already sits at the target (guest-side writes).
        self._flush_accrual()
        applied = self.plan.clamp(freq_ghz)
        threshold = self.plan.turbo_ghz - 1e-9
        was_below = vm.freq_ghz is not None and vm.freq_ghz < threshold
        for core in self._vm_cores[vm.vm_id]:
            core.freq_ghz = applied
        vm.freq_ghz = applied
        self._below_turbo_vms += (applied < threshold) - was_below
        return applied

    def reassign_vm_cores(self, vm: VirtualMachine,
                          new_cores: list[Core]) -> None:
        """Move the VM onto a different set of this server's free cores.

        Implements the sOA's per-core budget exploration of §IV-D: when a
        VM's cores run out of overclock budget, the sOA reschedules it on
        cores that still have budget.
        """
        if vm.vm_id not in self.vms:
            raise KeyError(f"{vm.name} is not on {self.server_id}")
        if len(new_cores) != vm.n_cores:
            raise ValueError(
                f"need exactly {vm.n_cores} cores, got {len(new_cores)}")
        for core in new_cores:
            if core.allocated and core.vm_id != vm.vm_id:
                raise ValueError(
                    f"core {core.index} is allocated to VM {core.vm_id}")
        self._flush_accrual()
        freq = vm.freq_ghz if vm.freq_ghz is not None else self.plan.turbo_ghz
        for core in self._vm_cores[vm.vm_id]:
            core.vm_id = None
            core.freq_ghz = self.plan.turbo_ghz
        for core in new_cores:
            core.vm_id = vm.vm_id
            core.freq_ghz = freq
        self._vm_cores[vm.vm_id] = list(new_cores)

    def core_loads(self) -> list[tuple[float, float]]:
        """(utilization, freq) per allocated core, for the power model."""
        loads: list[tuple[float, float]] = []
        for vm in self.vms.values():
            for core in self._vm_cores[vm.vm_id]:
                loads.append((core.effective_utilization(vm.utilization),
                              core.freq_ghz))
        return loads

    def power_watts(self) -> float:
        """Current wall power of this server.  O(1): reads the cached
        dynamic-watt total maintained incrementally by every mutation."""
        if self._offline:
            return 0.0
        return (self.power_model.idle_watts + self._dynamic_watts
                + self._background_watts)

    def recompute_power_watts(self) -> float:
        """Full per-core power-model evaluation, bypassing the cache.

        Kept for validation (the randomized equivalence tests) and as the
        baseline the capping micro-benchmark measures against.
        """
        if self._offline:
            return 0.0
        return (self.power_model.server_watts(self.core_loads())
                + self._background_watts)

    def overclocked_vms(self) -> list[VirtualMachine]:
        plan = self.plan
        return [vm for vm in self.vms.values()
                if vm.freq_ghz is not None and plan.is_overclocked(vm.freq_ghz)]

    def overclocked_core_count(self) -> int:
        plan = self.plan
        return sum(1 for c in self.cores
                   if c.allocated and plan.is_overclocked(c.freq_ghz))

    def advance(self, dt: float) -> None:
        """Accrue ``dt`` seconds of busy/overclock time on allocated cores.

        O(1) on the fast path: the tick is noted as a pending run and
        folded into the per-core accumulators lazily — on read, or when
        an operating point changes (change-point integration).  With
        ``eager_accounting`` set the fold happens immediately, which is
        the reference arithmetic the equivalence oracle compares against.
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if self._offline:
            return  # powered off: no cycles executed, no wear accrued
        if self.eager_accounting:
            plan = self.plan
            for vm in self.vms.values():
                for core in self._vm_cores[vm.vm_id]:
                    core.busy_seconds += core.effective_utilization(
                        vm.utilization) * dt
                    if plan.is_overclocked(core.freq_ghz):
                        core.overclock_seconds += dt
            return
        runs = self._pending_runs
        if runs and runs[-1][0] == dt:
            runs[-1][1] += 1
        else:
            runs.append([dt, 1])

    def set_accrual_hook(self, key: str,
                         hook: Callable[[], None]) -> None:
        """Register a flush participant (e.g. the sOA's wear ledger).

        Hooks run whenever this server's pending accrual is folded in, so
        co-located lazy accounting stays synchronised with the same
        change points.
        """
        self._accrual_hooks[key] = hook

    def _flush_accrual(self) -> None:
        """Fold pending runs into every allocated core, then run hooks.

        Hooks always run — the sOA notes wear *before* ``advance`` sees
        the tick (control ticks precede plant advancement), so its ledger
        can be pending while ``_pending_runs`` is empty.
        """
        runs = self._pending_runs
        if runs:
            self._pending_runs = []
            plan = self.plan
            for vm in self.vms.values():
                util = vm._utilization
                for core in self._vm_cores[vm.vm_id]:
                    core._replay_accrual(runs, util, plan)
        for hook in self._accrual_hooks.values():
            hook()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Server({self.server_id}, vms={len(self.vms)}, "
                f"free_cores={self.free_cores})")


class Rack:
    """A rack: the power-delivery unit whose limit SmartOClock respects."""

    def __init__(self, rack_id: str, power_limit_watts: float) -> None:
        if power_limit_watts <= 0:
            raise ValueError(
                f"power limit must be positive, got {power_limit_watts}")
        self.rack_id = rack_id
        self.power_limit_watts = power_limit_watts
        self.servers: list[Server] = []
        self.datacenter: Optional["Datacenter"] = None
        # Cached sum of server wattages, updated by server deltas.
        self._power_watts = 0.0

    def add_server(self, server: Server) -> None:
        if server.rack is not None:
            raise ValueError(f"{server.server_id} already belongs to "
                             f"{server.rack.rack_id}")
        server.rack = self
        self.servers.append(server)
        self._apply_power_delta(server.power_watts())

    def _apply_power_delta(self, delta: float) -> None:
        self._power_watts += delta
        if self.datacenter is not None:
            self.datacenter._apply_power_delta(delta)

    def power_watts(self) -> float:
        """O(1): the rack aggregate maintained by server power deltas."""
        return self._power_watts

    def recompute_power_watts(self) -> float:
        """From-scratch per-server recompute, for validation."""
        return sum(s.recompute_power_watts() for s in self.servers)

    def utilization(self) -> float:
        """Rack power as a fraction of the rack limit."""
        return self.power_watts() / self.power_limit_watts

    def below_turbo_vms(self) -> int:
        """VMs in this rack currently below their plan's turbo frequency.

        O(servers): sums per-server counters maintained on placement and
        frequency changes.  Zero means the restore step has nothing to do.
        """
        return sum(s._below_turbo_vms for s in self.servers)

    def fair_share_watts(self) -> float:
        """The even per-server split of the rack budget (the baseline the
        paper's heterogeneous assignment improves on, §III Q4)."""
        if not self.servers:
            raise ValueError(f"rack {self.rack_id} has no servers")
        return self.power_limit_watts / len(self.servers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Rack({self.rack_id}, servers={len(self.servers)}, "
                f"limit={self.power_limit_watts}W)")


class Datacenter:
    """A collection of racks with id-based lookup."""

    def __init__(self, name: str = "dc") -> None:
        self.name = name
        self.racks: dict[str, Rack] = {}
        self._total_watts = 0.0

    def add_rack(self, rack: Rack) -> None:
        if rack.rack_id in self.racks:
            raise ValueError(f"duplicate rack id {rack.rack_id}")
        if rack.datacenter is not None:
            raise ValueError(f"rack {rack.rack_id} already belongs to "
                             f"datacenter {rack.datacenter.name}")
        rack.datacenter = self
        self.racks[rack.rack_id] = rack
        self._apply_power_delta(rack.power_watts())

    def _apply_power_delta(self, delta: float) -> None:
        self._total_watts += delta

    def servers(self) -> Iterator[Server]:
        for rack in self.racks.values():
            yield from rack.servers

    def find_server(self, server_id: str) -> Server:
        for server in self.servers():
            if server.server_id == server_id:
                return server
        raise KeyError(f"no server {server_id} in datacenter {self.name}")

    def total_power_watts(self) -> float:
        """O(1): the fleet aggregate maintained by rack power deltas."""
        return self._total_watts

    def recompute_total_power_watts(self) -> float:
        """From-scratch recompute across all racks, for validation."""
        return sum(rack.recompute_power_watts()
                   for rack in self.racks.values())
