"""Datacenter topology: datacenter → rack → server → VM → core.

This is the physical plant the SmartOClock control plane manages.  The
objects are deliberately "dumb": they hold placement, per-VM operating
points, and utilization, and can report power through a
:class:`~repro.cluster.power.PowerModel`.  All policy (who gets to
overclock, how budgets are split) lives in :mod:`repro.core`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import PowerModel

__all__ = ["Core", "VirtualMachine", "Server", "Rack", "Datacenter"]

_vm_ids = itertools.count()


@dataclass
class Core:
    """One physical core: operating point plus wear-relevant accounting.

    ``utilization_override`` lets finer-grained schedulers (containers
    inside a VM, SmartOClock paper section VI) pin a per-core utilization distinct from
    the VM-level average; ``None`` means "use the VM's utilization".
    """

    index: int
    freq_ghz: float
    vm_id: Optional[int] = None
    busy_seconds: float = 0.0
    overclock_seconds: float = 0.0
    utilization_override: Optional[float] = None

    @property
    def allocated(self) -> bool:
        return self.vm_id is not None

    def effective_utilization(self, vm_utilization: float) -> float:
        if self.utilization_override is None:
            return vm_utilization
        return self.utilization_override


class VirtualMachine:
    """A VM instance: cores, utilization, operating point, priority.

    ``priority`` orders VMs for prioritized capping and for the sOA's
    feedback loop: **higher value = more important** (throttled last,
    overclocked first).  ``utilization`` is the average per-core busy
    fraction in [0, 1].
    """

    def __init__(self, n_cores: int, *, name: str = "",
                 priority: int = 0, workload: str = "generic",
                 utilization: float = 0.0,
                 vm_id: Optional[int] = None) -> None:
        if n_cores < 1:
            raise ValueError(f"a VM needs at least 1 core, got {n_cores}")
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {utilization}")
        self.vm_id = next(_vm_ids) if vm_id is None else vm_id
        self.name = name or f"vm-{self.vm_id}"
        self.n_cores = n_cores
        self.priority = priority
        self.workload = workload
        self.utilization = utilization
        self.freq_ghz: Optional[float] = None  # set on placement
        self.server: Optional["Server"] = None

    @property
    def placed(self) -> bool:
        return self.server is not None

    def set_utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {utilization}")
        self.utilization = utilization

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.server.server_id if self.server else "unplaced"
        return (f"VirtualMachine({self.name}, cores={self.n_cores}, "
                f"util={self.utilization:.2f}, f={self.freq_ghz}, on={where})")


class Server:
    """A physical server hosting VMs on its cores.

    The server applies per-VM frequencies to the VM's assigned cores and
    reports power via its :class:`PowerModel`.  ``advance(dt)`` accrues the
    busy/overclocked core-seconds that the reliability subsystem consumes.
    """

    def __init__(self, server_id: str, power_model: PowerModel,
                 rack: Optional["Rack"] = None) -> None:
        self.server_id = server_id
        self.power_model = power_model
        self.rack = rack
        plan = power_model.plan
        self.cores = [Core(i, plan.turbo_ghz)
                      for i in range(power_model.cores)]
        self.vms: dict[int, VirtualMachine] = {}
        self._vm_cores: dict[int, list[Core]] = {}
        # Extra non-VM power (e.g. a colocated agent); usually zero.
        self.background_watts = 0.0

    @property
    def plan(self) -> FrequencyPlan:
        return self.power_model.plan

    @property
    def free_cores(self) -> int:
        return sum(1 for c in self.cores if not c.allocated)

    def place_vm(self, vm: VirtualMachine) -> None:
        """Assign the VM to free cores at max turbo."""
        if vm.placed:
            raise ValueError(f"{vm.name} is already placed on "
                             f"{vm.server.server_id}")
        free = [c for c in self.cores if not c.allocated]
        if len(free) < vm.n_cores:
            raise ValueError(
                f"{self.server_id}: need {vm.n_cores} cores, "
                f"only {len(free)} free")
        assigned = free[:vm.n_cores]
        for core in assigned:
            core.vm_id = vm.vm_id
            core.freq_ghz = self.plan.turbo_ghz
        self.vms[vm.vm_id] = vm
        self._vm_cores[vm.vm_id] = assigned
        vm.server = self
        vm.freq_ghz = self.plan.turbo_ghz

    def remove_vm(self, vm: VirtualMachine) -> None:
        if vm.vm_id not in self.vms:
            raise KeyError(f"{vm.name} is not on {self.server_id}")
        for core in self._vm_cores[vm.vm_id]:
            core.vm_id = None
            core.freq_ghz = self.plan.turbo_ghz
            core.utilization_override = None
        del self.vms[vm.vm_id]
        del self._vm_cores[vm.vm_id]
        vm.server = None
        vm.freq_ghz = None

    def vm_cores(self, vm: VirtualMachine) -> list[Core]:
        return list(self._vm_cores[vm.vm_id])

    def set_vm_frequency(self, vm: VirtualMachine, freq_ghz: float) -> float:
        """Set the VM's cores to ``freq_ghz`` (clamped to the plan). Returns
        the actually-applied frequency."""
        if vm.vm_id not in self.vms:
            raise KeyError(f"{vm.name} is not on {self.server_id}")
        applied = self.plan.clamp(freq_ghz)
        for core in self._vm_cores[vm.vm_id]:
            core.freq_ghz = applied
        vm.freq_ghz = applied
        return applied

    def reassign_vm_cores(self, vm: VirtualMachine,
                          new_cores: list[Core]) -> None:
        """Move the VM onto a different set of this server's free cores.

        Implements the sOA's per-core budget exploration of §IV-D: when a
        VM's cores run out of overclock budget, the sOA reschedules it on
        cores that still have budget.
        """
        if vm.vm_id not in self.vms:
            raise KeyError(f"{vm.name} is not on {self.server_id}")
        if len(new_cores) != vm.n_cores:
            raise ValueError(
                f"need exactly {vm.n_cores} cores, got {len(new_cores)}")
        for core in new_cores:
            if core.allocated and core.vm_id != vm.vm_id:
                raise ValueError(
                    f"core {core.index} is allocated to VM {core.vm_id}")
        freq = vm.freq_ghz if vm.freq_ghz is not None else self.plan.turbo_ghz
        for core in self._vm_cores[vm.vm_id]:
            core.vm_id = None
            core.freq_ghz = self.plan.turbo_ghz
        for core in new_cores:
            core.vm_id = vm.vm_id
            core.freq_ghz = freq
        self._vm_cores[vm.vm_id] = list(new_cores)

    def core_loads(self) -> list[tuple[float, float]]:
        """(utilization, freq) per allocated core, for the power model."""
        loads = []
        for vm in self.vms.values():
            for core in self._vm_cores[vm.vm_id]:
                loads.append((core.effective_utilization(vm.utilization),
                              core.freq_ghz))
        return loads

    def power_watts(self) -> float:
        """Current wall power of this server."""
        return (self.power_model.server_watts(self.core_loads())
                + self.background_watts)

    def overclocked_vms(self) -> list[VirtualMachine]:
        plan = self.plan
        return [vm for vm in self.vms.values()
                if vm.freq_ghz is not None and plan.is_overclocked(vm.freq_ghz)]

    def overclocked_core_count(self) -> int:
        plan = self.plan
        return sum(1 for c in self.cores
                   if c.allocated and plan.is_overclocked(c.freq_ghz))

    def advance(self, dt: float) -> None:
        """Accrue ``dt`` seconds of busy/overclock time on allocated cores."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        plan = self.plan
        for vm in self.vms.values():
            for core in self._vm_cores[vm.vm_id]:
                core.busy_seconds += core.effective_utilization(
                    vm.utilization) * dt
                if plan.is_overclocked(core.freq_ghz):
                    core.overclock_seconds += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Server({self.server_id}, vms={len(self.vms)}, "
                f"free_cores={self.free_cores})")


class Rack:
    """A rack: the power-delivery unit whose limit SmartOClock respects."""

    def __init__(self, rack_id: str, power_limit_watts: float) -> None:
        if power_limit_watts <= 0:
            raise ValueError(
                f"power limit must be positive, got {power_limit_watts}")
        self.rack_id = rack_id
        self.power_limit_watts = power_limit_watts
        self.servers: list[Server] = []

    def add_server(self, server: Server) -> None:
        if server.rack is not None:
            raise ValueError(f"{server.server_id} already belongs to "
                             f"{server.rack.rack_id}")
        server.rack = self
        self.servers.append(server)

    def power_watts(self) -> float:
        return sum(s.power_watts() for s in self.servers)

    def utilization(self) -> float:
        """Rack power as a fraction of the rack limit."""
        return self.power_watts() / self.power_limit_watts

    def fair_share_watts(self) -> float:
        """The even per-server split of the rack budget (the baseline the
        paper's heterogeneous assignment improves on, §III Q4)."""
        if not self.servers:
            raise ValueError(f"rack {self.rack_id} has no servers")
        return self.power_limit_watts / len(self.servers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Rack({self.rack_id}, servers={len(self.servers)}, "
                f"limit={self.power_limit_watts}W)")


class Datacenter:
    """A collection of racks with id-based lookup."""

    def __init__(self, name: str = "dc") -> None:
        self.name = name
        self.racks: dict[str, Rack] = {}

    def add_rack(self, rack: Rack) -> None:
        if rack.rack_id in self.racks:
            raise ValueError(f"duplicate rack id {rack.rack_id}")
        self.racks[rack.rack_id] = rack

    def servers(self) -> Iterator[Server]:
        for rack in self.racks.values():
            yield from rack.servers

    def find_server(self, server_id: str) -> Server:
        for server in self.servers():
            if server.server_id == server_id:
                return server
        raise KeyError(f"no server {server_id} in datacenter {self.name}")

    def total_power_watts(self) -> float:
        return sum(rack.power_watts() for rack in self.racks.values())
