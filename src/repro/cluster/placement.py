"""VM placement policies (paper §III Q2 future work).

The paper's findings hold under the default resource-centric VM scheduler;
it explicitly leaves power-aware placement as future work: "Providers can
add power-aware scheduling policies to aid overclocking, but this
exploration is future work."  This module implements both so the effect
can be quantified (see ``benchmarks/test_ablation_placement.py``):

* :class:`ResourceCentricPlacer` — first server with enough free cores
  (the Protean-style rule set reduced to its core-count essence);
* :class:`PowerAwarePlacer` — among servers with enough free cores, pick
  the one whose *predicted peak power* after placement is lowest, keeping
  rack power balanced so overclocking headroom is spread evenly.

Both operate on the same :class:`~repro.cluster.topology.Rack`/``Server``
objects the rest of the system uses.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.cluster.topology import Server, VirtualMachine

__all__ = ["PlacementError", "ResourceCentricPlacer", "PowerAwarePlacer"]


class PlacementError(RuntimeError):
    """No server can host the VM."""


class ResourceCentricPlacer:
    """First-fit by free cores (the default cloud scheduler's behaviour
    for our purposes)."""

    def place(self, vm: VirtualMachine,
              servers: Iterable[Server]) -> Server:
        for server in servers:
            if server.free_cores >= vm.n_cores:
                server.place_vm(vm)
                return server
        raise PlacementError(
            f"no server has {vm.n_cores} free cores for {vm.name}")


class PowerAwarePlacer:
    """Balance predicted peak power across servers.

    ``peak_utilization`` estimates the VM's worst-case utilization when
    computing the placement cost (provisioning is for peaks, not means).
    A custom ``predictor`` can supply per-server baseline peak power
    (e.g. from templates); by default the server's current draw is used.
    """

    def __init__(self, *, peak_utilization: float = 1.0,
                 predictor: Optional[Callable[[Server], float]] = None
                 ) -> None:
        if not 0.0 < peak_utilization <= 1.0:
            raise ValueError(
                f"peak_utilization must be in (0, 1]: {peak_utilization}")
        self.peak_utilization = peak_utilization
        self.predictor = predictor or (lambda server: server.power_watts())

    def _cost_after(self, server: Server, vm: VirtualMachine) -> float:
        added = vm.n_cores * server.power_model.core_dynamic_watts(
            self.peak_utilization, server.plan.turbo_ghz)
        return self.predictor(server) + added

    def place(self, vm: VirtualMachine,
              servers: Iterable[Server]) -> Server:
        candidates = [s for s in servers if s.free_cores >= vm.n_cores]
        if not candidates:
            raise PlacementError(
                f"no server has {vm.n_cores} free cores for {vm.name}")
        best = min(candidates, key=lambda s: self._cost_after(s, vm))
        best.place_vm(vm)
        return best

    def imbalance(self, servers: Iterable[Server]) -> float:
        """Spread between the hottest and coolest server (W) — the metric
        power-aware placement minimizes."""
        powers = [self.predictor(s) for s in servers]
        if not powers:
            raise ValueError("no servers given")
        return max(powers) - min(powers)
