"""Server power model.

Server power is modeled as a static floor plus per-core dynamic power that
scales with utilization and the classic ``C · V² · f`` law:

    P = P_idle + Σ_cores  u_c · k_dyn · V(f_c)² · f_c

The default calibration targets the paper's platform (AMD 64-core,
turbo 3.3 GHz, overclock 4.0 GHz):

* idle ≈ 150 W, full-utilization all-core turbo ≈ 400 W (wall power of a
  dual-socket-class cloud server under load);
* one fully-busy core overclocked from turbo to 4.0 GHz adds ≈ 10 W, the
  per-core delta used in the paper's §IV-C worked example (5 cores → 50 W).

The simulation-vs-model validation of §V-B ("We validate the model for each
server generation") is reproduced by unit tests pinning these anchors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN, FrequencyPlan

__all__ = ["PowerModel", "DEFAULT_POWER_MODEL"]


@dataclass(frozen=True)
class PowerModel:
    """Maps (utilization, frequency) to watts for one server SKU."""

    plan: FrequencyPlan = field(default_factory=FrequencyPlan)
    idle_watts: float = 150.0
    # Dynamic-power coefficient k_dyn in W / (V^2 * GHz); calibrated so a
    # fully-busy core at turbo (1.05 V, 3.3 GHz) draws ~4 W of dynamic power.
    dynamic_coefficient: float = 1.1
    cores: int = 64

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError(f"idle_watts must be >= 0, got {self.idle_watts}")
        if self.dynamic_coefficient <= 0:
            raise ValueError("dynamic_coefficient must be positive, got "
                             f"{self.dynamic_coefficient}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        # Per-frequency k·V²·f memo: DVFS steps give only a handful of
        # distinct operating points, and the incremental power accounting
        # in topology.py evaluates one on every mutation (frozen dataclass,
        # so the cache is attached via object.__setattr__).
        object.__setattr__(self, "_coeff_cache", {})

    def core_dynamic_coeff(self, freq_ghz: float) -> float:
        """Dynamic watts per unit utilization at ``freq_ghz`` (k·V²·f)."""
        coeff = self._coeff_cache.get(freq_ghz)
        if coeff is None:
            volts = self.plan.voltage(freq_ghz)
            coeff = self.dynamic_coefficient * volts * volts * freq_ghz
            self._coeff_cache[freq_ghz] = coeff
        return coeff

    def core_dynamic_watts(self, utilization: float, freq_ghz: float) -> float:
        """Dynamic power of a single core at ``utilization`` in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {utilization}")
        return utilization * self.core_dynamic_coeff(freq_ghz)

    def server_watts(self, core_loads: list[tuple[float, float]]) -> float:
        """Power of a server given ``(utilization, freq_ghz)`` per busy core.

        Cores not listed are idle (their leakage is folded into
        ``idle_watts``).  More cores than the SKU has is an error.
        """
        if len(core_loads) > self.cores:
            raise ValueError(
                f"{len(core_loads)} core loads for a {self.cores}-core SKU")
        dynamic = sum(self.core_dynamic_watts(u, f) for u, f in core_loads)
        return self.idle_watts + dynamic

    def uniform_server_watts(self, utilization: float, freq_ghz: float,
                             active_cores: int | None = None) -> float:
        """Power when ``active_cores`` cores all run at the same point."""
        n = self.cores if active_cores is None else active_cores
        if not 0 <= n <= self.cores:
            raise ValueError(f"active_cores must be in [0, {self.cores}]")
        return self.idle_watts + n * self.core_dynamic_watts(
            utilization, freq_ghz)

    def overclock_core_delta(self, utilization: float = 1.0,
                             freq_ghz: float | None = None) -> float:
        """Extra watts for one core going from turbo to ``freq_ghz``.

        This is the per-core increment the gOA uses to discriminate regular
        vs overclock power in a server's profile (§IV-C).
        """
        target = self.plan.overclock_max_ghz if freq_ghz is None else freq_ghz
        if target < self.plan.turbo_ghz:
            raise ValueError(
                f"overclock target {target} below turbo {self.plan.turbo_ghz}")
        return (self.core_dynamic_watts(utilization, target)
                - self.core_dynamic_watts(utilization, self.plan.turbo_ghz))

    def max_server_watts(self) -> float:
        """All cores fully busy at the overclock ceiling."""
        return self.uniform_server_watts(1.0, self.plan.overclock_max_ghz)

    def turbo_server_watts(self, utilization: float = 1.0) -> float:
        """All cores at max turbo with the given utilization."""
        return self.uniform_server_watts(utilization, self.plan.turbo_ghz)

    def invert_utilization(self, watts: float, freq_ghz: float) -> float:
        """Average utilization that yields ``watts`` with all cores at f.

        The inverse of :meth:`uniform_server_watts`; used to translate
        power traces into utilization for the workload models.  Clamped to
        [0, 1].
        """
        per_core_full = self.core_dynamic_watts(1.0, freq_ghz)
        if per_core_full <= 0:
            raise ValueError("degenerate power model: zero dynamic power")
        util = (watts - self.idle_watts) / (self.cores * per_core_full)
        return min(1.0, max(0.0, util))


DEFAULT_POWER_MODEL = PowerModel(plan=DEFAULT_FREQUENCY_PLAN)
