"""Container-granularity overclocking (paper §VI "Finer-grained
overclocking").

First-party operators want to overclock *containers inside VMs*, because
boosting the whole VM "is inefficient because of the higher power and
reliability impact".  This module implements the guest-participation
mechanism the paper sketches: a :class:`ContainerHost` (the guest agent)
pins containers to disjoint subsets of the VM's cores and reports per-core
utilization, so the host can boost exactly the cores running the hot
container — with proportionally smaller power and wear cost.

Frequency changes still flow through the host-side server object (guests
never control frequency unsupervised — the safety concern §VI raises);
the host exposes :meth:`boost_container` / :meth:`unboost_container` as
the narrow interface an sOA can drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import Core, Server, VirtualMachine

__all__ = ["Container", "ContainerHost"]


@dataclass
class Container:
    """A container: a core reservation plus a utilization level."""

    name: str
    n_cores: int
    utilization: float = 0.0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(
                f"a container needs at least 1 core: {self.n_cores}")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1]: {self.utilization}")


class ContainerHost:
    """The guest agent: maps containers onto a placed VM's cores."""

    def __init__(self, vm: VirtualMachine, server: Server) -> None:
        if vm.server is not server:
            raise ValueError(f"{vm.name} is not placed on "
                             f"{server.server_id}")
        self.vm = vm
        self.server = server
        self._assignments: dict[str, list[Core]] = {}

    @property
    def containers(self) -> list[str]:
        return list(self._assignments)

    def free_cores(self) -> list[Core]:
        taken = {core.index for cores in self._assignments.values()
                 for core in cores}
        return [core for core in self.server.vm_cores(self.vm)
                if core.index not in taken]

    def add_container(self, container: Container) -> None:
        """Pin the container to free cores of the VM."""
        if container.name in self._assignments:
            raise ValueError(
                f"container {container.name!r} already deployed")
        free = self.free_cores()
        if len(free) < container.n_cores:
            raise ValueError(
                f"{self.vm.name} has {len(free)} unpinned cores, "
                f"container {container.name!r} needs {container.n_cores}")
        assigned = free[:container.n_cores]
        for core in assigned:
            core.utilization_override = container.utilization
        self._assignments[container.name] = assigned
        self._refresh_vm_utilization()

    def remove_container(self, name: str) -> None:
        cores = self._assignments.pop(name, None)
        if cores is None:
            raise KeyError(f"no container {name!r}")
        for core in cores:
            core.utilization_override = None
            core.freq_ghz = self.server.plan.turbo_ghz
        self._refresh_vm_utilization()

    def set_container_utilization(self, name: str,
                                  utilization: float) -> None:
        cores = self._lookup(name)
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1]: {utilization}")
        for core in cores:
            core.utilization_override = utilization
        self._refresh_vm_utilization()

    def boost_container(self, name: str, freq_ghz: float) -> float:
        """Overclock only the container's cores.  Returns the applied
        frequency (clamped to the plan)."""
        cores = self._lookup(name)
        applied = self.server.plan.clamp(freq_ghz)
        for core in cores:
            core.freq_ghz = applied
        return applied

    def unboost_container(self, name: str) -> None:
        for core in self._lookup(name):
            core.freq_ghz = self.server.plan.turbo_ghz

    def container_cores(self, name: str) -> list[Core]:
        return list(self._lookup(name))

    def overclocked_containers(self) -> list[str]:
        plan = self.server.plan
        return [name for name, cores in self._assignments.items()
                if any(plan.is_overclocked(core.freq_ghz)
                       for core in cores)]

    def _lookup(self, name: str) -> list[Core]:
        cores = self._assignments.get(name)
        if cores is None:
            raise KeyError(f"no container {name!r}")
        return cores

    def _refresh_vm_utilization(self) -> None:
        """All of a managed VM's load comes from its containers: unpinned
        cores are idle (override 0), and the VM-level utilization becomes
        pure telemetry (the per-core average)."""
        pinned = {core.index for cores in self._assignments.values()
                  for core in cores}
        cores = self.server.vm_cores(self.vm)
        total = 0.0
        for core in cores:
            if core.index not in pinned:
                core.utilization_override = 0.0
            total += core.effective_utilization(0.0)
        self.vm.set_utilization(min(1.0, total / len(cores)))
