"""Throughput-optimized ML-training workload (FunctionBench MLTrain).

In the paper's cluster experiment, 14 of the 28 rack servers run MLTrain:
constantly high CPU utilization, power-hungry, *not* overclocked (they are
the bystanders whose throughput suffers when a capping event throttles the
rack).  The model therefore only needs throughput-vs-frequency and a high
steady utilization.
"""

from __future__ import annotations

from repro.workloads.queueing import frequency_speedup

__all__ = ["MLTrainJob"]


class MLTrainJob:
    """A long-running training job: samples/second proportional to freq.

    ``base_throughput`` is samples/s with all its cores at max turbo;
    ``freq_sensitivity`` is high (training math is core-bound).
    """

    def __init__(self, base_throughput: float = 1000.0, *,
                 turbo_ghz: float = 3.3,
                 freq_sensitivity: float = 0.9,
                 utilization: float = 0.95) -> None:
        if base_throughput <= 0:
            raise ValueError(
                f"base_throughput must be > 0: {base_throughput}")
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1]: {utilization}")
        self.base_throughput = base_throughput
        self.turbo_ghz = turbo_ghz
        self.freq_sensitivity = freq_sensitivity
        self.utilization = utilization
        self.samples_processed = 0.0
        self.elapsed = 0.0

    def throughput(self, freq_ghz: float) -> float:
        """Samples/second at ``freq_ghz``."""
        return self.base_throughput * frequency_speedup(
            freq_ghz, self.turbo_ghz, self.freq_sensitivity)

    def advance(self, dt: float, freq_ghz: float) -> float:
        """Run for ``dt`` seconds at ``freq_ghz``; returns samples done."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0: {dt}")
        done = self.throughput(freq_ghz) * dt
        self.samples_processed += done
        self.elapsed += dt
        return done

    def average_throughput(self) -> float:
        """Samples/second averaged over the job's lifetime so far."""
        if self.elapsed == 0:
            raise ValueError("job has not run yet")
        return self.samples_processed / self.elapsed
