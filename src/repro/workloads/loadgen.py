"""Load-pattern generators.

Time convention: ``t`` is seconds since Monday 00:00 local time of an
arbitrary reference week.  Patterns are deterministic functions of time
except :class:`NoisyPattern`, which takes an explicit RNG.

The three first-party services of the paper's Figure 1 map to:

* *Service A* — a business-hours plateau (peak 10:00–12:00):
  :class:`BusinessHoursPattern`;
* *Services B and C* — short spikes at the top and bottom of each hour
  (meeting-start surges): :class:`TopOfHourPattern`.

These shapes also drive the synthetic trace generator in
:mod:`repro.traces.synthetic`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "LoadPattern",
    "ConstantPattern",
    "DiurnalPattern",
    "BusinessHoursPattern",
    "TopOfHourPattern",
    "SpikePattern",
    "NoisyPattern",
    "WeekendScaledPattern",
    "CompositePattern",
]

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def hour_of_day(t: float) -> float:
    """Fractional hour of day in [0, 24) for time ``t``."""
    return (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR


def day_of_week(t: float) -> int:
    """Day index, 0 = Monday ... 6 = Sunday."""
    return int(t // SECONDS_PER_DAY) % 7


def is_weekend(t: float) -> bool:
    return day_of_week(t) >= 5


class LoadPattern:
    """A deterministic load level as a function of time.

    ``level(t)`` returns the instantaneous load in [0, 1] (normalized to
    the service's own peak, matching Figure 1's normalization); ``rate(t)``
    scales it by ``peak_rate`` to get an arrival rate.
    """

    def __init__(self, peak_rate: float = 1.0) -> None:
        if peak_rate <= 0:
            raise ValueError(f"peak_rate must be positive, got {peak_rate}")
        self.peak_rate = peak_rate

    def level(self, t: float) -> float:
        raise NotImplementedError

    def rate(self, t: float) -> float:
        return self.peak_rate * self.level(t)

    def sample_levels(self, start: float, end: float,
                      step: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``level`` on [start, end) every ``step`` seconds."""
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        times = np.arange(start, end, step)
        levels = np.array([self.level(float(t)) for t in times])
        return times, levels


class ConstantPattern(LoadPattern):
    """A flat load at ``value`` (in [0, 1])."""

    def __init__(self, value: float, peak_rate: float = 1.0) -> None:
        super().__init__(peak_rate)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"value must be in [0, 1], got {value}")
        self.value = value

    def level(self, t: float) -> float:
        return self.value


class DiurnalPattern(LoadPattern):
    """Smooth day/night cycle: sinusoid peaking at ``peak_hour``.

    Level swings between ``floor`` and 1.0; this is the canonical diurnal
    shape of cloud services (paper §III Q2, Fig. 7's "midday peaks above
    50 % and valleys lower than 20 % at night").
    """

    def __init__(self, peak_hour: float = 13.0, floor: float = 0.15,
                 peak_rate: float = 1.0) -> None:
        super().__init__(peak_rate)
        if not 0.0 <= floor < 1.0:
            raise ValueError(f"floor must be in [0, 1), got {floor}")
        if not 0.0 <= peak_hour < 24.0:
            raise ValueError(f"peak_hour must be in [0, 24), got {peak_hour}")
        self.peak_hour = peak_hour
        self.floor = floor

    def level(self, t: float) -> float:
        phase = 2 * math.pi * (hour_of_day(t) - self.peak_hour) / 24.0
        # cos(phase) == 1 at the peak hour, -1 twelve hours away.
        return self.floor + (1.0 - self.floor) * 0.5 * (1.0 + math.cos(phase))


class BusinessHoursPattern(LoadPattern):
    """Service-A shape: plateau between ``start_hour`` and ``end_hour``.

    Smooth (half-cosine) ramps of ``ramp_hours`` on both sides; ``floor``
    elsewhere.
    """

    def __init__(self, start_hour: float = 10.0, end_hour: float = 12.0,
                 floor: float = 0.3, ramp_hours: float = 2.0,
                 peak_rate: float = 1.0) -> None:
        super().__init__(peak_rate)
        if not 0 <= start_hour < end_hour <= 24:
            raise ValueError(
                f"need 0 <= start < end <= 24, got {start_hour}/{end_hour}")
        if ramp_hours <= 0:
            raise ValueError(f"ramp_hours must be positive, got {ramp_hours}")
        self.start_hour = start_hour
        self.end_hour = end_hour
        self.floor = floor
        self.ramp_hours = ramp_hours

    def level(self, t: float) -> float:
        h = hour_of_day(t)
        if self.start_hour <= h <= self.end_hour:
            return 1.0
        if h < self.start_hour:
            gap = self.start_hour - h
        else:
            gap = h - self.end_hour
        if gap >= self.ramp_hours:
            return self.floor
        ramp = 0.5 * (1.0 + math.cos(math.pi * gap / self.ramp_hours))
        return self.floor + (1.0 - self.floor) * ramp


class TopOfHourPattern(LoadPattern):
    """Service-B/C shape: spikes at the top (and bottom) of each hour.

    Each spike lasts ``spike_minutes``, reaching 1.0; between spikes the
    level is the underlying ``base`` pattern (default: diurnal scaled to
    ``base_scale``).  Meetings start on the hour and half-hour, hence the
    5-minute peaks the paper describes.
    """

    def __init__(self, spike_minutes: float = 5.0,
                 include_half_hour: bool = True,
                 base: Optional[LoadPattern] = None,
                 base_scale: float = 0.5,
                 peak_rate: float = 1.0) -> None:
        super().__init__(peak_rate)
        if not 0 < spike_minutes < 30:
            raise ValueError(
                f"spike_minutes must be in (0, 30), got {spike_minutes}")
        self.spike_minutes = spike_minutes
        self.include_half_hour = include_half_hour
        self.base = base or DiurnalPattern(peak_hour=14.0, floor=0.1)
        if not 0 <= base_scale <= 1:
            raise ValueError(f"base_scale must be in [0, 1], got {base_scale}")
        self.base_scale = base_scale

    def _in_spike(self, t: float) -> bool:
        minute = (t % SECONDS_PER_HOUR) / 60.0
        if minute < self.spike_minutes:
            return True
        if self.include_half_hour and 30.0 <= minute < 30.0 + self.spike_minutes:
            return True
        return False

    def level(self, t: float) -> float:
        base_level = self.base_scale * self.base.level(t)
        if self._in_spike(t):
            # Spike height itself follows the diurnal envelope so that the
            # biggest top-of-hour surge happens midday, as in Fig. 1.
            envelope = self.base.level(t)
            return max(base_level, envelope)
        return base_level


class SpikePattern(LoadPattern):
    """Explicit spikes: (start_seconds, duration_seconds, height) triples
    layered over a base pattern.  Used for fault-injection style tests."""

    def __init__(self, spikes: Sequence[tuple[float, float, float]],
                 base: Optional[LoadPattern] = None,
                 peak_rate: float = 1.0) -> None:
        super().__init__(peak_rate)
        for start, duration, height in spikes:
            if duration <= 0:
                raise ValueError(f"spike duration must be positive: {duration}")
            if not 0 <= height <= 1:
                raise ValueError(f"spike height must be in [0, 1]: {height}")
        self.spikes = list(spikes)
        self.base = base or ConstantPattern(0.2)

    def level(self, t: float) -> float:
        level = self.base.level(t)
        for start, duration, height in self.spikes:
            if start <= t < start + duration:
                level = max(level, height)
        return level


class WeekendScaledPattern(LoadPattern):
    """Scale another pattern down on weekends (enterprise traffic drop)."""

    def __init__(self, base: LoadPattern, weekend_scale: float = 0.35) -> None:
        super().__init__(base.peak_rate)
        if not 0 <= weekend_scale <= 1:
            raise ValueError(
                f"weekend_scale must be in [0, 1], got {weekend_scale}")
        self.base = base
        self.weekend_scale = weekend_scale

    def level(self, t: float) -> float:
        scale = self.weekend_scale if is_weekend(t) else 1.0
        return scale * self.base.level(t)


class NoisyPattern(LoadPattern):
    """Multiplicative lognormal noise over a base pattern.

    Noise is drawn lazily per quantization bucket (``noise_period``
    seconds) from the supplied RNG, so repeated queries at the same time
    are consistent within a run while different seeds give different
    realizations.
    """

    def __init__(self, base: LoadPattern, rng: np.random.Generator,
                 sigma: float = 0.05, noise_period: float = 300.0) -> None:
        super().__init__(base.peak_rate)
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if noise_period <= 0:
            raise ValueError(
                f"noise_period must be positive, got {noise_period}")
        self.base = base
        self.rng = rng
        self.sigma = sigma
        self.noise_period = noise_period
        self._noise_cache: dict[int, float] = {}

    def _noise(self, t: float) -> float:
        bucket = int(t // self.noise_period)
        if bucket not in self._noise_cache:
            self._noise_cache[bucket] = float(
                self.rng.lognormal(mean=0.0, sigma=self.sigma))
        return self._noise_cache[bucket]

    def level(self, t: float) -> float:
        return min(1.0, self.base.level(t) * self._noise(t))


class CompositePattern(LoadPattern):
    """Weighted mixture of patterns (a rack hosts many services)."""

    def __init__(self, parts: Sequence[tuple[LoadPattern, float]],
                 peak_rate: float = 1.0) -> None:
        super().__init__(peak_rate)
        if not parts:
            raise ValueError("composite pattern needs at least one part")
        total = sum(weight for _, weight in parts)
        if total <= 0:
            raise ValueError("composite weights must sum to > 0")
        self.parts = [(p, w / total) for p, w in parts]

    def level(self, t: float) -> float:
        return min(1.0, sum(w * p.level(t) for p, w in self.parts))
