"""Workload models.

SmartOClock's evaluation exercises three workload classes:

* latency-critical microservices (DeathStarBench SocialNet) — modeled as
  queueing stations whose service rate scales with core frequency
  (:mod:`repro.workloads.microservices`, backed by the closed-form and
  simulated queues in :mod:`repro.workloads.queueing`);
* throughput-optimized ML training (FunctionBench MLTrain) —
  :mod:`repro.workloads.mltrain`;
* the WebConf conferencing application with deployment-level goals —
  :mod:`repro.workloads.webconf`.

Load shapes (diurnal, top-of-hour spikes, business-hours plateaus) come
from :mod:`repro.workloads.loadgen`.
"""

from repro.workloads.loadgen import (
    BusinessHoursPattern,
    CompositePattern,
    ConstantPattern,
    DiurnalPattern,
    LoadPattern,
    NoisyPattern,
    SpikePattern,
    TopOfHourPattern,
    WeekendScaledPattern,
)
from repro.workloads.queueing import MMcQueue, QueueSimulator, simulate_mgc
from repro.workloads.microservices import (
    MicroserviceSpec,
    MicroserviceInstance,
    MicroserviceDeployment,
    SOCIALNET_SERVICES,
    socialnet_service,
)
from repro.workloads.mltrain import MLTrainJob
from repro.workloads.webconf import WebConfDeployment, WebConfVM

__all__ = [
    "LoadPattern",
    "ConstantPattern",
    "DiurnalPattern",
    "BusinessHoursPattern",
    "TopOfHourPattern",
    "SpikePattern",
    "NoisyPattern",
    "WeekendScaledPattern",
    "CompositePattern",
    "MMcQueue",
    "QueueSimulator",
    "simulate_mgc",
    "MicroserviceSpec",
    "MicroserviceInstance",
    "MicroserviceDeployment",
    "SOCIALNET_SERVICES",
    "socialnet_service",
    "MLTrainJob",
    "WebConfDeployment",
    "WebConfVM",
]
