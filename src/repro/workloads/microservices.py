"""SocialNet-style microservice models.

Reproduces the workload side of the paper's §III Q1 and §V-A experiments:
eight latency-critical microservices (DeathStarBench SocialNet) with
heterogeneous queueing characteristics, so that

* some services (*Usr*) tolerate high CPU utilization without violating
  their SLO (many parallel workers → economy of scale), while
* others (*UrlShort*) violate the SLO even at low utilization (a single
  serial worker with a long service time → the tail blows up early).

This heterogeneity is exactly why the paper argues a workload-agnostic
CPU-utilization trigger is suboptimal.

SLO convention (paper §III/§V-A): SLO = ``slo_multiplier`` (default 5) ×
the service's execution time on an unloaded system at max turbo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workloads.queueing import (
    MMcQueue,
    frequency_speedup,
)

__all__ = [
    "MicroserviceSpec",
    "MicroserviceInstance",
    "MicroserviceDeployment",
    "SOCIALNET_SERVICES",
    "socialnet_service",
]

#: Frequency used as the reference point for SLOs and speedups (max turbo).
TURBO_GHZ = 3.3

# How far past saturation the analytic model reports before clamping: an
# unstable queue has unbounded tail latency, but tick-based experiments
# need finite numbers, so latencies at rho >= _RHO_CLAMP grow linearly in
# the excess load instead.
_RHO_CLAMP = 0.98
_OVERLOAD_SLOPE = 40.0


@dataclass(frozen=True)
class MicroserviceSpec:
    """Static description of one microservice tier.

    ``unloaded_ms`` — mean service time at max turbo on an idle system;
    ``workers`` — concurrent request-processing workers per VM instance
    (bounded by the instance's cores);
    ``freq_sensitivity`` — frequency-bound fraction of the work in [0, 1];
    ``slo_multiplier`` — SLO as a multiple of the unloaded latency.
    """

    name: str
    unloaded_ms: float
    workers: int
    freq_sensitivity: float
    slo_multiplier: float = 5.0

    def __post_init__(self) -> None:
        if self.unloaded_ms <= 0:
            raise ValueError(f"unloaded_ms must be > 0: {self.unloaded_ms}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if not 0.0 <= self.freq_sensitivity <= 1.0:
            raise ValueError(
                f"freq_sensitivity must be in [0, 1]: {self.freq_sensitivity}")
        if self.slo_multiplier <= 1.0:
            raise ValueError(
                f"slo_multiplier must be > 1: {self.slo_multiplier}")

    @property
    def slo_ms(self) -> float:
        """Tail-latency SLO in milliseconds."""
        return self.slo_multiplier * self.unloaded_ms

    def service_rate(self, freq_ghz: float) -> float:
        """Per-worker service rate (req/s) at ``freq_ghz``."""
        base = 1000.0 / self.unloaded_ms
        return base * frequency_speedup(freq_ghz, TURBO_GHZ,
                                        self.freq_sensitivity)

    def capacity(self, freq_ghz: float) -> float:
        """Max sustainable arrival rate per instance (req/s) at ``freq``."""
        return self.workers * self.service_rate(freq_ghz)

    def rho_for_slo(self, freq_ghz: float = TURBO_GHZ) -> float:
        """Per-worker load ρ at which the P99 latency exactly hits the SLO.

        This is the service's *SLO-critical load*: a fragile serial
        service (UrlShort) hits its SLO at a much lower utilization than a
        wide parallel one (Usr) — the heterogeneity behind §III Q1.  Found
        by bisection; every spec meets its SLO as ρ → 0 because the
        unloaded P99 is ln(100) ≈ 4.6 times the mean service time, below
        the 5× SLO.
        """
        mu = self.service_rate(freq_ghz)

        def p99_ms(rho: float) -> float:
            queue = MMcQueue(rho * self.workers * mu, mu, self.workers)
            return queue.p99_response() * 1000.0

        lo, hi = 1e-6, 0.999
        if p99_ms(lo) >= self.slo_ms:
            return lo
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if p99_ms(mid) < self.slo_ms:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


#: The eight SocialNet services profiled in Figs. 2-3.  Parameters are
#: chosen to reproduce the paper's qualitative findings: *Usr* has many
#: parallel workers (tolerates high utilization), *UrlShort* is serial and
#: slow (violates its SLO at low utilization), *Media* and *Text* are
#: comparatively memory-bound (low frequency sensitivity).
SOCIALNET_SERVICES: tuple[MicroserviceSpec, ...] = (
    MicroserviceSpec("ComposePost", unloaded_ms=2.0, workers=4,
                     freq_sensitivity=0.85),
    MicroserviceSpec("HomeTimeline", unloaded_ms=1.5, workers=6,
                     freq_sensitivity=0.80),
    MicroserviceSpec("UserTimeline", unloaded_ms=1.8, workers=6,
                     freq_sensitivity=0.75),
    MicroserviceSpec("SocialGraph", unloaded_ms=1.0, workers=4,
                     freq_sensitivity=0.70),
    MicroserviceSpec("UrlShort", unloaded_ms=3.0, workers=1,
                     freq_sensitivity=0.90),
    MicroserviceSpec("Usr", unloaded_ms=0.8, workers=12,
                     freq_sensitivity=0.90),
    MicroserviceSpec("Text", unloaded_ms=1.2, workers=4,
                     freq_sensitivity=0.50),
    MicroserviceSpec("Media", unloaded_ms=6.0, workers=8,
                     freq_sensitivity=0.40),
)


def socialnet_service(name: str) -> MicroserviceSpec:
    """Look up one of the eight SocialNet services by name."""
    for spec in SOCIALNET_SERVICES:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown SocialNet service {name!r}; choose from "
                   f"{[s.name for s in SOCIALNET_SERVICES]}")


class MicroserviceInstance:
    """One VM instance of a microservice: a frequency-scaled M/M/c station.

    The instance exposes the telemetry the Workload Intelligence agents
    consume (tail latency, CPU utilization) as analytic functions of its
    current arrival rate and core frequency.
    """

    def __init__(self, spec: MicroserviceSpec,
                 freq_ghz: float = TURBO_GHZ) -> None:
        self.spec = spec
        self.freq_ghz = freq_ghz
        self.arrival_rate = 0.0

    def set_load(self, arrival_rate: float) -> None:
        if arrival_rate < 0:
            raise ValueError(f"arrival rate must be >= 0: {arrival_rate}")
        self.arrival_rate = arrival_rate

    def set_frequency(self, freq_ghz: float) -> None:
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be > 0: {freq_ghz}")
        self.freq_ghz = freq_ghz

    @property
    def utilization(self) -> float:
        """CPU utilization in [0, 1] (offered load, clamped)."""
        cap = self.spec.capacity(self.freq_ghz)
        return min(1.0, self.arrival_rate / cap)

    @property
    def offered_rho(self) -> float:
        """Unclamped offered load per worker (may exceed 1 under overload)."""
        return self.arrival_rate / self.spec.capacity(self.freq_ghz)

    def _queue(self, rho_clamped: float) -> MMcQueue:
        mu = self.spec.service_rate(self.freq_ghz)
        lam = rho_clamped * self.spec.workers * mu
        return MMcQueue(lam, mu, self.spec.workers)

    def _latency_ms(self, quantile: Optional[float]) -> float:
        rho = self.offered_rho
        clamped = min(rho, _RHO_CLAMP)
        queue = self._queue(clamped)
        if quantile is None:
            seconds = queue.mean_response()
        else:
            seconds = queue.response_quantile(quantile)
        latency = seconds * 1000.0
        if rho > _RHO_CLAMP:
            # Overloaded: backlog grows without bound; report a latency that
            # grows linearly in the excess load so tick-based experiments
            # see finite but clearly SLO-violating numbers.
            latency *= 1.0 + _OVERLOAD_SLOPE * (rho - _RHO_CLAMP)
        return latency

    def mean_latency_ms(self) -> float:
        return self._latency_ms(None)

    def p99_latency_ms(self) -> float:
        return self._latency_ms(0.99)

    def latency_quantile_ms(self, q: float) -> float:
        return self._latency_ms(q)

    def meets_slo(self) -> bool:
        return self.p99_latency_ms() <= self.spec.slo_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MicroserviceInstance({self.spec.name}, "
                f"f={self.freq_ghz:.2f}GHz, rho={self.offered_rho:.2f})")


class MicroserviceDeployment:
    """A load-balanced group of identical instances of one service.

    The deployment is what the autoscaler and the Global WI agent reason
    about: total arrival rate is split evenly across instances, and
    deployment-level latency equals instance latency (identical stations).
    """

    def __init__(self, spec: MicroserviceSpec, initial_instances: int = 1,
                 freq_ghz: float = TURBO_GHZ) -> None:
        if initial_instances < 1:
            raise ValueError(
                f"need at least 1 instance: {initial_instances}")
        self.spec = spec
        self.total_rate = 0.0
        self.instances: list[MicroserviceInstance] = [
            MicroserviceInstance(spec, freq_ghz)
            for _ in range(initial_instances)
        ]

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    def set_load(self, total_rate: float) -> None:
        if total_rate < 0:
            raise ValueError(f"total rate must be >= 0: {total_rate}")
        self.total_rate = total_rate
        self._rebalance()

    def _rebalance(self) -> None:
        per_instance = self.total_rate / len(self.instances)
        for instance in self.instances:
            instance.set_load(per_instance)

    def scale_to(self, n: int) -> None:
        """Add or remove instances; new instances start at turbo."""
        if n < 1:
            raise ValueError(f"need at least 1 instance: {n}")
        while len(self.instances) < n:
            self.instances.append(MicroserviceInstance(self.spec, TURBO_GHZ))
        while len(self.instances) > n:
            self.instances.pop()
        self._rebalance()

    def set_frequency(self, freq_ghz: float) -> None:
        for instance in self.instances:
            instance.set_frequency(freq_ghz)

    def p99_latency_ms(self) -> float:
        return max(i.p99_latency_ms() for i in self.instances)

    def mean_latency_ms(self) -> float:
        return float(np.mean([i.mean_latency_ms() for i in self.instances]))

    def mean_utilization(self) -> float:
        return float(np.mean([i.utilization for i in self.instances]))

    def meets_slo(self) -> bool:
        return self.p99_latency_ms() <= self.spec.slo_ms

    def required_instances(self, total_rate: float,
                           freq_ghz: float = TURBO_GHZ,
                           target_rho: float = 0.7) -> int:
        """Instances needed to keep per-worker load at ``target_rho``."""
        if not 0 < target_rho < 1:
            raise ValueError(f"target_rho must be in (0, 1): {target_rho}")
        capacity = self.spec.capacity(freq_ghz) * target_rho
        return max(1, math.ceil(total_rate / capacity))
