"""WebConf: a conferencing application with deployment-level goals.

Reproduces the paper's Figure 4 scenario (§III Q1): a deployment keeps the
*average deployment-level* CPU utilization below a target (50 %) so it can
absorb the load of a failed availability zone.  Individual VMs can run hot
while the deployment as a whole is fine — so overclocking a hot VM is
wasted when the deployment-level goal is already met.  This is the
motivating case for deployment-level (global WI) decisions.

Overclocking a VM reduces its utilization because the same work completes
faster: ``util(f) = util_turbo / speedup(f)``.
"""

from __future__ import annotations


import numpy as np

from repro.workloads.queueing import frequency_speedup

__all__ = ["WebConfVM", "WebConfDeployment"]

TURBO_GHZ = 3.3


class WebConfVM:
    """One WebConf VM hosting conference calls."""

    def __init__(self, name: str, base_utilization: float, *,
                 freq_sensitivity: float = 0.85,
                 freq_ghz: float = TURBO_GHZ) -> None:
        if not 0.0 <= base_utilization <= 1.0:
            raise ValueError(
                f"base_utilization must be in [0, 1]: {base_utilization}")
        self.name = name
        self.base_utilization = base_utilization
        self.freq_sensitivity = freq_sensitivity
        self.freq_ghz = freq_ghz

    def set_frequency(self, freq_ghz: float) -> None:
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be > 0: {freq_ghz}")
        self.freq_ghz = freq_ghz

    def set_base_utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1]: {utilization}")
        self.base_utilization = utilization

    @property
    def utilization(self) -> float:
        """Utilization at the current frequency (work conserving)."""
        speedup = frequency_speedup(self.freq_ghz, TURBO_GHZ,
                                    self.freq_sensitivity)
        return min(1.0, self.base_utilization / speedup)


class WebConfDeployment:
    """A set of WebConf VMs with a deployment-level utilization target."""

    def __init__(self, vms: list[WebConfVM],
                 target_utilization: float = 0.5) -> None:
        if not vms:
            raise ValueError("deployment needs at least one VM")
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target must be in (0, 1]: {target_utilization}")
        self.vms = list(vms)
        self.target_utilization = target_utilization

    def deployment_utilization(self) -> float:
        """Average utilization across VMs — the provisioning metric."""
        return float(np.mean([vm.utilization for vm in self.vms]))

    def meets_target(self) -> bool:
        return self.deployment_utilization() <= self.target_utilization

    def hot_vms(self, threshold: float = 0.7) -> list[WebConfVM]:
        """VMs an instance-level policy would flag for overclocking."""
        return [vm for vm in self.vms if vm.utilization > threshold]

    def overclock_is_needed(self) -> bool:
        """Deployment-level decision: overclock only if the deployment
        target is violated (paper: overclocking a hot VM while the
        deployment average is below target is wasted lifetime)."""
        return not self.meets_target()
