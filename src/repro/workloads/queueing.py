"""Queueing models for latency-critical services.

Two implementations of the same physics, used to cross-validate each other:

* :class:`MMcQueue` — closed-form M/M/c (Erlang-C) response-time
  distribution; exact for Poisson arrivals and exponential service.
* :func:`simulate_mgc` / :class:`QueueSimulator` — request-level
  discrete-event simulation of a G/G/c FCFS station; supports lognormal
  service times for heavy-tailed services.

Frequency scaling enters through the service rate: a core at frequency
``f`` completes work at ``mu(f) = mu_turbo * speedup(f)`` where the speedup
depends on how frequency-bound the service is (memory-bound services gain
less — paper §I: "overclocking the CPU of a memory-bound workload ... will
not provide much benefit").
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.metrics import empirical_quantile

__all__ = ["MMcQueue", "QueueSimulator", "simulate_mgc", "frequency_speedup"]


def frequency_speedup(freq_ghz: float, base_freq_ghz: float,
                      sensitivity: float = 1.0) -> float:
    """Throughput multiplier when moving from ``base_freq`` to ``freq``.

    ``sensitivity`` in [0, 1] is the frequency-bound fraction of the work
    (Amdahl-style): 1.0 → fully core-bound (speedup = f/f0), 0.0 → fully
    memory-bound (no speedup).
    """
    if freq_ghz <= 0 or base_freq_ghz <= 0:
        raise ValueError("frequencies must be positive")
    if not 0.0 <= sensitivity <= 1.0:
        raise ValueError(f"sensitivity must be in [0, 1], got {sensitivity}")
    ratio = freq_ghz / base_freq_ghz
    # time(f) = (1 - s) * t0 + s * t0 / ratio  →  speedup = t0 / time(f)
    return 1.0 / ((1.0 - sensitivity) + sensitivity / ratio)


class MMcQueue:
    """Closed-form M/M/c queue.

    ``arrival_rate`` (λ, req/s), ``service_rate`` (μ, req/s per server),
    ``servers`` (c).  Stable only for ρ = λ/(cμ) < 1; latency queries on an
    unstable queue raise, because an overloaded microservice has unbounded
    tail latency and callers must handle that explicitly.
    """

    def __init__(self, arrival_rate: float, service_rate: float,
                 servers: int) -> None:
        if arrival_rate < 0:
            raise ValueError(f"arrival rate must be >= 0: {arrival_rate}")
        if service_rate <= 0:
            raise ValueError(f"service rate must be > 0: {service_rate}")
        if servers < 1:
            raise ValueError(f"need at least 1 server: {servers}")
        self.arrival_rate = arrival_rate
        self.service_rate = service_rate
        self.servers = servers

    @property
    def utilization(self) -> float:
        """Offered load per server, ρ = λ / (cμ)."""
        return self.arrival_rate / (self.servers * self.service_rate)

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    def erlang_c(self) -> float:
        """Probability that an arriving request must wait (Erlang-C)."""
        if self.arrival_rate == 0:
            return 0.0
        if not self.stable:
            return 1.0
        c = self.servers
        a = self.arrival_rate / self.service_rate  # offered load in erlangs
        rho = self.utilization
        # Compute iteratively in log space for numerical robustness.
        term = 1.0  # a^0 / 0!
        partial_sum = term
        for k in range(1, c):
            term *= a / k
            partial_sum += term
        term_c = term * a / c  # a^c / c!
        numerator = term_c / (1.0 - rho)
        return numerator / (partial_sum + numerator)

    def mean_wait(self) -> float:
        """Mean queueing delay E[W] (excluding service)."""
        self._require_stable()
        if self.arrival_rate == 0:
            return 0.0
        theta = self.servers * self.service_rate - self.arrival_rate
        return self.erlang_c() / theta

    def mean_response(self) -> float:
        """Mean response time E[T] = E[W] + 1/μ."""
        self._require_stable()
        return self.mean_wait() + 1.0 / self.service_rate

    def response_tail(self, t: float) -> float:
        """P(T > t) for the FCFS response time T = W + S.

        W has an atom of mass (1 - Pw) at zero and an exponential tail with
        rate θ = cμ - λ; S ~ Exp(μ) independent of W.
        """
        self._require_stable()
        if t < 0:
            return 1.0
        mu = self.service_rate
        theta = self.servers * mu - self.arrival_rate
        pw = self.erlang_c()
        if abs(mu - theta) < 1e-12 * mu:
            # Degenerate case: identical rates, the convolution integral
            # produces a t * e^{-mu t} term.
            return ((1.0 - pw) * math.exp(-mu * t)
                    + pw * math.exp(-theta * t)
                    + pw * theta * t * math.exp(-mu * t))
        tail = ((1.0 - pw) * math.exp(-mu * t)
                + pw * math.exp(-theta * t)
                + pw * theta * (math.exp(-theta * t) - math.exp(-mu * t))
                / (mu - theta))
        return min(1.0, max(0.0, tail))

    def response_quantile(self, q: float) -> float:
        """t such that P(T <= t) = q, by bisection on the closed-form tail."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self._require_stable()
        target = 1.0 - q
        lo, hi = 0.0, 1.0 / self.service_rate
        while self.response_tail(hi) > target:
            hi *= 2.0
            if hi > 1e9:
                raise RuntimeError("quantile search diverged")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.response_tail(mid) > target:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-12 * max(1.0, hi):
                break
        return 0.5 * (lo + hi)

    def p99_response(self) -> float:
        return self.response_quantile(0.99)

    def _require_stable(self) -> None:
        if not self.stable:
            raise OverloadedQueueError(
                f"queue unstable: rho={self.utilization:.3f} "
                f"(lambda={self.arrival_rate}, c={self.servers}, "
                f"mu={self.service_rate})")


class OverloadedQueueError(RuntimeError):
    """Raised when latency is queried on an unstable queue (ρ >= 1)."""


@dataclass
class SimulatedLatencies:
    """Result of a request-level queue simulation."""

    latencies: np.ndarray
    waits: np.ndarray
    completed: int
    duration: float

    def mean(self) -> float:
        if self.completed == 0:
            raise ValueError("no completed requests")
        return float(np.mean(self.latencies))

    def quantile(self, q: float) -> float:
        """Sample quantile of completed-request latencies
        (:func:`repro.sim.metrics.empirical_quantile` convention)."""
        if self.completed == 0:
            raise ValueError("no completed requests")
        return empirical_quantile(self.latencies, q)

    def p99(self) -> float:
        return self.quantile(0.99)


class QueueSimulator:
    """Request-level G/G/c FCFS simulation.

    Arrivals: Poisson with rate λ.  Service: exponential (``cv=1``) or
    lognormal with squared coefficient of variation ``cv**2``.  This is the
    "ground truth" against which :class:`MMcQueue` is validated, and the
    engine behind heavy-tailed service experiments.
    """

    def __init__(self, arrival_rate: float, service_rate: float,
                 servers: int, *, cv: float = 1.0,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None) -> None:
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be > 0: {arrival_rate}")
        if service_rate <= 0:
            raise ValueError(f"service rate must be > 0: {service_rate}")
        if servers < 1:
            raise ValueError(f"need at least 1 server: {servers}")
        if cv <= 0:
            raise ValueError(f"cv must be > 0: {cv}")
        if rng is None and seed is None:
            # A hidden default (the old `rng or default_rng(0)`) silently
            # gave every station that omitted rng the *same* stream,
            # correlating supposedly independent queues.  Randomness must
            # be an explicit choice at the constructor boundary.
            raise ValueError(
                "QueueSimulator needs an explicit rng= or seed=; a hidden "
                "shared default would correlate independent stations")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng= or seed=, not both")
        self.arrival_rate = arrival_rate
        self.service_rate = service_rate
        self.servers = servers
        self.cv = cv
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def _service_sample(self, n: int) -> np.ndarray:
        mean = 1.0 / self.service_rate
        if abs(self.cv - 1.0) < 1e-9:
            return self.rng.exponential(mean, size=n)
        # Lognormal with the requested mean and cv.
        sigma2 = math.log(1.0 + self.cv ** 2)
        mu = math.log(mean) - sigma2 / 2.0
        return self.rng.lognormal(mu, math.sqrt(sigma2), size=n)

    def run(self, n_requests: int) -> SimulatedLatencies:
        """Simulate ``n_requests`` arrivals through the station."""
        if n_requests < 1:
            raise ValueError(f"need at least 1 request: {n_requests}")
        inter = self.rng.exponential(1.0 / self.arrival_rate, size=n_requests)
        arrivals = np.cumsum(inter)
        services = self._service_sample(n_requests)
        # c-server FCFS: next free server from a min-heap of free times.
        free_at = [0.0] * self.servers
        heapq.heapify(free_at)
        latencies = np.empty(n_requests)
        waits = np.empty(n_requests)
        for i in range(n_requests):
            earliest = heapq.heappop(free_at)
            start = max(arrivals[i], earliest)
            finish = start + services[i]
            heapq.heappush(free_at, finish)
            waits[i] = start - arrivals[i]
            latencies[i] = finish - arrivals[i]
        return SimulatedLatencies(latencies=latencies, waits=waits,
                                  completed=n_requests,
                                  duration=float(arrivals[-1]))


def simulate_mgc(arrival_rate: float, service_rate: float, servers: int,
                 n_requests: int = 20000, cv: float = 1.0,
                 seed: int = 0) -> SimulatedLatencies:
    """One-shot wrapper around :class:`QueueSimulator`."""
    sim = QueueSimulator(arrival_rate, service_rate, servers, cv=cv,
                         rng=np.random.default_rng(seed))
    return sim.run(n_requests)
