"""gOA ↔ sOA message channel (decentralization plumbing, §III Q5/§IV-C).

In the paper the gOA and its sOAs live on different machines: budget
pushes and profile pulls traverse a real network that can drop, delay or
partition.  The seed reproduction modelled them as direct method calls,
which made the decentralization claim untestable — nothing could fail.

:class:`MessageChannel` is the interposition point.  Senders hand it an
:class:`Envelope` plus a delivery callback; a pluggable *fate hook*
(installed by :class:`repro.faults.FaultInjector`, or absent for a
healthy channel) decides per message whether it is delivered
immediately, delayed, or dropped.  Delayed messages sit in a
deterministic FIFO released by :meth:`pump`, which whatever drives time
(the platform tick) calls each interval.

Profile pulls are request/response and synchronous: a faulted pull
simply fails for this cycle (returns ``None``) and the gOA keeps the
server's previous — now stale — profile, which is exactly the paper's
degradation mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

__all__ = ["Envelope", "MessageFate", "MessageChannel",
           "BUDGET_PUSH", "PROFILE_PULL", "GOA_HEARTBEAT"]

BUDGET_PUSH = "budget_push"
PROFILE_PULL = "profile_pull"
GOA_HEARTBEAT = "goa_heartbeat"

T = TypeVar("T")


@dataclass(frozen=True)
class Envelope:
    """One in-flight message between a gOA and an sOA."""

    kind: str
    src: str
    dst: str
    sent_at: float


@dataclass(frozen=True)
class MessageFate:
    """A fate hook's verdict for one envelope."""

    dropped: bool = False
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0: {self.delay_s}")


DELIVER = MessageFate()

FateHook = Callable[[Envelope], MessageFate]


@dataclass
class _Pending:
    envelope: Envelope
    deliver_at: float
    deliver: Callable[[float], None] = field(repr=False)


class MessageChannel:
    """Fault-interposable transport for gOA/sOA control messages.

    Without a ``fate_hook`` the channel is a healthy network: every send
    is delivered synchronously and every pull succeeds, so wiring a
    channel in changes nothing about fault-free behaviour.
    """

    def __init__(self, fate_hook: Optional[FateHook] = None) -> None:
        self.fate_hook = fate_hook
        self._pending: list[_Pending] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.delayed = 0
        # Synchronous pulls that failed because the fate was a *delay*
        # (a pull cannot wait).  Kept apart from ``dropped`` so drop
        # counts report actual message loss; the conservation identity
        # is ``sent == delivered + dropped + failed_pulls + in_flight``.
        self.failed_pulls = 0

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def _fate(self, envelope: Envelope) -> MessageFate:
        if self.fate_hook is None:
            return DELIVER
        return self.fate_hook(envelope)

    def send(self, envelope: Envelope,
             deliver: Callable[[float], None]) -> bool:
        """Send one message; ``deliver(now)`` runs at its delivery time.

        Returns whether the message will (eventually) be delivered.
        """
        self.sent += 1
        fate = self._fate(envelope)
        if fate.dropped:
            self.dropped += 1
            return False
        if fate.delay_s > 0.0:
            self.delayed += 1
            self._pending.append(_Pending(
                envelope, envelope.sent_at + fate.delay_s, deliver))
            return True
        self.delivered += 1
        deliver(envelope.sent_at)
        return True

    def pump(self, now: float) -> int:
        """Deliver every delayed message due by ``now``, ordered by
        ``deliver_at``; ties break by send order (the sort is stable), so
        runs stay deterministic.  Returns deliveries."""
        if not self._pending:
            return 0
        due = [p for p in self._pending if p.deliver_at <= now]
        if not due:
            return 0
        self._pending = [p for p in self._pending if p.deliver_at > now]
        due.sort(key=lambda p: p.deliver_at)
        for pending in due:
            self.delivered += 1
            pending.deliver(now)
        return len(due)

    def request(self, envelope: Envelope,
                fetch: Callable[[], T]) -> Optional[T]:
        """Synchronous request/response (profile pull).  A dropped *or*
        delayed fate fails the pull for this cycle — the caller retries
        next period with whatever state it kept.

        Accounting: a drop-fated pull is a lost message (``dropped``); a
        delay-fated pull is *not* — the network would have delivered it,
        just too late for a synchronous exchange — so it counts in
        ``failed_pulls`` instead and drop counts stay true."""
        self.sent += 1
        fate = self._fate(envelope)
        if fate.dropped:
            self.dropped += 1
            return None
        if fate.delay_s > 0.0:
            self.failed_pulls += 1
            return None
        self.delivered += 1
        return fetch()
