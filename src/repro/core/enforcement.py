"""Per-server prioritized feedback loop (paper §IV-D).

Once a VM's overclocking request is granted, the sOA does not jump it to
the target frequency: a control loop steps frequencies in ``step_ghz``
increments (100 MHz) while watching measured server power against the
server's budget:

* ``draw < threshold``   → step **up** (highest-priority VM first),
* ``threshold <= draw < limit`` → hold,
* ``draw >= limit``      → step **down** (lowest-priority VM first),

where ``threshold = limit - buffer``.  Prioritization means the more
important VMs reach the ceiling before less important VMs get anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import Server, VirtualMachine

__all__ = ["FeedbackLoop", "LoopAction"]


@dataclass(frozen=True)
class LoopAction:
    """What one control tick did (telemetry for tests/experiments)."""

    stepped_up: int
    stepped_down: int
    draw_watts: float
    limit_watts: float

    @property
    def held(self) -> bool:
        return self.stepped_up == 0 and self.stepped_down == 0


class FeedbackLoop:
    """Drives granted VMs toward their target frequencies under a budget."""

    def __init__(self, server: Server, buffer_watts: float = 20.0) -> None:
        if buffer_watts < 0:
            raise ValueError(f"buffer must be >= 0: {buffer_watts}")
        self.server = server
        self.buffer_watts = buffer_watts
        # vm_id -> target frequency while the grant is active.
        self._targets: dict[int, float] = {}

    @property
    def active_vms(self) -> int:
        return len(self._targets)

    def engage(self, vm: VirtualMachine, target_freq_ghz: float) -> None:
        """Start ramping ``vm`` toward ``target_freq_ghz``."""
        if vm.vm_id not in self.server.vms:
            raise KeyError(f"{vm.name} is not on {self.server.server_id}")
        target = self.server.plan.clamp(target_freq_ghz)
        self._targets[vm.vm_id] = target

    def disengage(self, vm: VirtualMachine, *,
                  reset_to_turbo: bool = True) -> None:
        """Stop controlling ``vm`` (grant expired/revoked)."""
        self._targets.pop(vm.vm_id, None)
        if reset_to_turbo and vm.vm_id in self.server.vms:
            self.server.set_vm_frequency(vm, self.server.plan.turbo_ghz)

    def disengage_all(self, *, reset_to_turbo: bool = True) -> None:
        for vm_id in list(self._targets):
            vm = self.server.vms.get(vm_id)
            if vm is not None:
                self.disengage(vm, reset_to_turbo=reset_to_turbo)
            else:
                self._targets.pop(vm_id, None)

    def is_engaged(self, vm: VirtualMachine) -> bool:
        return vm.vm_id in self._targets

    def all_at_target(self) -> bool:
        """True when every controlled VM reached its target frequency."""
        for vm_id, target in self._targets.items():
            vm = self.server.vms.get(vm_id)
            if vm is not None and vm.freq_ghz < target - 1e-9:
                return False
        return True

    def constrained(self, limit_watts: float) -> bool:
        """True when some VM is held below target by the power budget."""
        if self.all_at_target():
            return False
        threshold = limit_watts - self.buffer_watts
        return self.server.power_watts() >= threshold

    def _controlled(self, ascending_priority: bool) -> list[VirtualMachine]:
        vms = [self.server.vms[vm_id] for vm_id in self._targets
               if vm_id in self.server.vms]
        return sorted(vms, key=lambda vm: (vm.priority, vm.vm_id),
                      reverse=not ascending_priority)

    def tick(self, limit_watts: float, max_steps: int = 128) -> LoopAction:
        """Run one control iteration against ``limit_watts``.

        The real loop iterates every few milliseconds; a simulation tick
        covers many iterations, so the up-phase steps repeatedly (most
        important VM first) until the threshold is reached, every VM is at
        target, or ``max_steps`` step quota is used.
        """
        if limit_watts <= 0:
            raise ValueError(f"limit must be > 0: {limit_watts}")
        self._prune()
        threshold = limit_watts - self.buffer_watts
        draw = self.server.power_watts()
        stepped_up = 0
        stepped_down = 0
        while draw < threshold and stepped_up < max_steps:
            stepped = False
            for vm in self._controlled(ascending_priority=False):
                target = self._targets[vm.vm_id]
                if vm.freq_ghz < target - 1e-9:
                    self.server.set_vm_frequency(
                        vm, min(target,
                                self.server.plan.step_up(vm.freq_ghz)))
                    stepped_up += 1
                    stepped = True
                    break
            if not stepped:
                break
            draw = self.server.power_watts()
        if draw >= limit_watts:
            # Over the limit: drain the least important overclocked VM all
            # the way to turbo before touching the next one.
            for vm in self._controlled(ascending_priority=True):
                while (self.server.power_watts() >= limit_watts
                       and vm.freq_ghz > self.server.plan.turbo_ghz + 1e-9
                       and stepped_down < max_steps):
                    self.server.set_vm_frequency(
                        vm, max(self.server.plan.turbo_ghz,
                                self.server.plan.step_down(vm.freq_ghz)))
                    stepped_down += 1
                if self.server.power_watts() < limit_watts:
                    break
            # The down-phase changed frequencies: the draw captured before
            # it is stale and could report >= limit even though the loop
            # already brought power back under it.
            draw = self.server.power_watts()
        return LoopAction(stepped_up=stepped_up, stepped_down=stepped_down,
                          draw_watts=draw, limit_watts=limit_watts)

    def _prune(self) -> None:
        gone = [vm_id for vm_id in self._targets
                if vm_id not in self.server.vms]
        for vm_id in gone:
            del self._targets[vm_id]
