"""The composed SmartOClock platform.

Wires the whole architecture of paper Fig. 10 onto a simulated cluster:
one sOA per server, one gOA + rack power manager per rack, and per-service
Global WI agents with per-VM Local WI agents.  The platform is tick-driven
(``tick(now, dt)``): experiments advance simulated time and the platform
runs its control, telemetry, capping and budget-update cadences.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.capping import (
    FairShareThrottler,
    PrioritizedThrottler,
    RackPowerManager,
)
from repro.cluster.topology import Datacenter, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.goa import GlobalOverclockingAgent
from repro.core.goa_ha import GoaSupervisor
from repro.core.messaging import MessageChannel
from repro.core.soa import ServerOverclockingAgent
from repro.core.types import ExhaustionSignal
from repro.core.workload_intelligence import (
    GlobalWIAgent,
    LocalWIAgent,
    MetricsTriggerPolicy,
    OverclockSchedule,
)

if TYPE_CHECKING:  # core stays layered below repro.faults/repro.recovery
    from repro.faults.injector import FaultInjector
    from repro.recovery.checkpoint import DurableStore
    from repro.recovery.lifecycle import ServerLifecycleManager
    from repro.reliability.hazard import HazardModel

__all__ = ["SmartOClockPlatform"]


class SmartOClockPlatform:
    """SmartOClock deployed on a datacenter.

    ``fault_injector`` (optional) is consulted at every interposition
    point — gOA update cycles, the per-rack gOA↔sOA message channels,
    sOA telemetry sampling, and template predictions.  Without one, all
    channels are healthy and behaviour is identical to the pre-fault
    platform.
    """

    def __init__(self, datacenter: Datacenter,
                 config: Optional[SmartOClockConfig] = None,
                 fault_injector: Optional["FaultInjector"] = None,
                 hazard_model: Optional["HazardModel"] = None,
                 durable_store: Optional["DurableStore"] = None,
                 recovery_seed: Optional[int] = None) -> None:
        self.datacenter = datacenter
        self.config = config or SmartOClockConfig()
        self.fault_injector = fault_injector
        self.soas: dict[str, ServerOverclockingAgent] = {}
        self.goas: dict[str, GlobalOverclockingAgent] = {}
        self.supervisors: dict[str, GoaSupervisor] = {}
        self.channels: dict[str, MessageChannel] = {}
        self.rack_managers: dict[str, RackPowerManager] = {}
        self.services: dict[str, GlobalWIAgent] = {}
        # Revocation/exhaustion routing indexes (add-only supersets):
        # vm_id → service names and server_id → service names with VMs
        # there.  Entries are added on attach and on placement (VM moves
        # never remove the old server's entry); the routing methods
        # re-verify against the live locals, so a stale superset only
        # costs a skipped service, never a wrong delivery.
        self._vm_services: dict[int, set[str]] = {}
        self._server_services: dict[str, set[str]] = {}
        self._last_telemetry = -float("inf")
        self._last_budget_update = -float("inf")

        # Durable store: needed by the recovery lifecycle (sOA
        # checkpoints) and by gOA HA (epoch checkpoints).  The fault
        # injector's corruption hook interposes on every save.
        plan = fault_injector.plan if fault_injector is not None else None
        wants_lifecycle = hazard_model is not None or (
            plan is not None and (plan.server_crashes or plan.soa_restarts
                                  or plan.checkpoint_corruptions))
        self.durable_store: Optional["DurableStore"] = None
        if wants_lifecycle or self.config.enable_goa_ha \
                or durable_store is not None:
            if durable_store is None:
                from repro.recovery.checkpoint import DurableStore
                durable_store = DurableStore()
            if fault_injector is not None \
                    and durable_store.corruption_hook is None:
                durable_store.corruption_hook = \
                    fault_injector.corruption_hook()
            self.durable_store = durable_store

        for rack in datacenter.racks.values():
            rack_soas: list[ServerOverclockingAgent] = []
            for server in rack.servers:
                if self.config.eager_accounting:
                    server.eager_accounting = True
                soa = ServerOverclockingAgent(
                    server, self.config,
                    on_exhaustion=self._route_exhaustion,
                    on_grant_revoked=self._route_revocation)
                if fault_injector is not None:
                    soa.prediction_scale = fault_injector.prediction_hook(
                        server.server_id)
                self.soas[server.server_id] = soa
                rack_soas.append(soa)
            # Prioritized capping is part of the SmartOClock stack; the
            # NaiveOClock ablation falls back to fair-share capping.
            throttler = (PrioritizedThrottler()
                         if self.config.enable_admission_control
                         else FairShareThrottler())
            manager = RackPowerManager(
                rack, warning_fraction=self.config.warning_fraction,
                graceful_restore=self.config.enable_admission_control,
                throttler=throttler)
            for soa in rack_soas:
                manager.on_warning(soa.on_warning)
                manager.on_cap(soa.on_cap)
            self.rack_managers[rack.rack_id] = manager
            channel = MessageChannel(
                fault_injector.channel_hook(rack.rack_id)
                if fault_injector is not None else None)
            self.channels[rack.rack_id] = channel
            if self.config.enable_goa_ha:
                assert self.durable_store is not None
                self.supervisors[rack.rack_id] = GoaSupervisor(
                    rack, self.config, rack_soas, channel,
                    self.durable_store,
                    down_hook=self._ha_down_hook(rack.rack_id))
            else:
                self.goas[rack.rack_id] = GlobalOverclockingAgent(
                    rack, self.config, rack_soas, channel=channel)

        # Crash/recovery lifecycle: engaged when a hazard model is given
        # or the fault plan carries crash/restart/corruption content.
        # Without it, behaviour is identical to the pre-recovery platform.
        self.lifecycle: Optional["ServerLifecycleManager"] = None
        if wants_lifecycle:
            # Local import: repro.core stays importable without the
            # recovery package loaded (layering mirrors repro.faults).
            from repro.recovery.lifecycle import ServerLifecycleManager
            from repro.recovery.quarantine import (
                QuarantineController,
                QuarantinePolicy,
            )
            quarantine = None
            if self.config.enable_quarantine \
                    and self.config.enable_admission_control:
                quarantine = QuarantineController(
                    QuarantinePolicy.from_config(self.config))
            seed = recovery_seed
            if seed is None:
                seed = fault_injector.seed if fault_injector else 0
            self.lifecycle = ServerLifecycleManager(
                self, hazard_model=hazard_model, plan=plan, seed=seed,
                store=durable_store, quarantine=quarantine)

    def _ha_down_hook(self, rack_id: str) -> Callable[[int, float], bool]:
        """Map :class:`~repro.faults.spec.GoaOutage` windows onto HA
        replica 0 — the machine the non-HA deployment runs its only gOA
        on.  Reads the plan directly (not the injector's counting
        ``goa_down``): under HA a primary outage is the supervisor's
        problem, tallied in its own counters."""
        def hook(index: int, at: float) -> bool:
            if index != 0 or self.fault_injector is None:
                return False
            return self.fault_injector.plan.goa_down(rack_id, at)
        return hook

    def _all_goas(self) -> list[GlobalOverclockingAgent]:
        """Every gOA instance: the bare per-rack ones, or both HA
        replicas per rack (for counter aggregation)."""
        goas = list(self.goas.values())
        for supervisor in self.supervisors.values():
            goas.extend(r.goa for r in supervisor.replicas)
        return goas

    # ------------------------------------------------------------------
    # Service registration
    # ------------------------------------------------------------------

    def register_service(self, name: str, *,
                         metrics_policy: Optional[MetricsTriggerPolicy] = None,
                         schedule: Optional[OverclockSchedule] = None,
                         scale_out_handler: Optional[
                             Callable[[float, int], None]] = None,
                         rejections_per_scale_out: int = 2,
                         scale_out_per: int = 1) -> GlobalWIAgent:
        """Create the Global WI agent for a service."""
        if name in self.services:
            raise ValueError(f"service {name!r} already registered")
        agent = GlobalWIAgent(
            name, metrics_policy=metrics_policy, schedule=schedule,
            scale_out_handler=scale_out_handler,
            rejections_per_scale_out=rejections_per_scale_out,
            scale_out_per=scale_out_per)
        self.services[name] = agent
        return agent

    def attach_vm(self, service_name: str, vm: VirtualMachine, *,
                  target_freq_ghz: float = 4.0,
                  priority: int = 0) -> LocalWIAgent:
        """Deploy a VM's Local WI agent and hook it to its server's sOA."""
        if vm.server is None:
            raise ValueError(f"{vm.name} must be placed before attaching")
        service = self.services.get(service_name)
        if service is None:
            raise KeyError(f"unknown service {service_name!r}")
        soa = self.soas[vm.server.server_id]
        local = LocalWIAgent(vm, soa, target_freq_ghz=target_freq_ghz,
                             priority=priority)
        service.attach(local)
        self._vm_services.setdefault(vm.vm_id, set()).add(service_name)
        self._server_services.setdefault(
            vm.server.server_id, set()).add(service_name)
        return local

    def note_vm_placement(self, vm: VirtualMachine) -> None:
        """Record a VM's (re)placement in the routing indexes.

        Called by the recovery lifecycle after an evacuation rebinds the
        VM's Local WI agent to the new server's sOA, so exhaustion
        signals from that server keep reaching the owning service.
        """
        if vm.server is None:
            return
        names = self._vm_services.get(vm.vm_id)
        if names:
            self._server_services.setdefault(
                vm.server.server_id, set()).update(names)

    def _route_revocation(self, vm: VirtualMachine, why: str,
                          now: float) -> None:
        """A grant was revoked (budget ran out): the owning service takes
        corrective action (§IV-D "Managing resource exhaustion")."""
        names = self._vm_services.get(vm.vm_id)
        if not names:
            return
        # Iterate in registration order, restricted by the index, and
        # re-verify against the live locals: identical delivery to the
        # full scan at O(index hit) cost.
        for name, service in self.services.items():
            if name not in names:
                continue
            if any(local.vm.vm_id == vm.vm_id for local in service.locals):
                service.on_rejection(now)
                return

    def _route_exhaustion(self, signal: ExhaustionSignal) -> None:
        """Deliver an sOA exhaustion signal to the services with VMs on the
        affected server."""
        names = self._server_services.get(signal.server_id)
        if not names:
            return
        for name, service in self.services.items():
            if name not in names:
                continue
            if any(local.vm.server is not None
                   and local.vm.server.server_id == signal.server_id
                   for local in service.locals):
                service.on_exhaustion(signal)

    # ------------------------------------------------------------------
    # Time driving
    # ------------------------------------------------------------------

    def tick(self, now: float, dt: float) -> None:
        """Advance the platform by one control interval.

        Order matters and mirrors the paper's architecture: the failure
        lifecycle resolves first (crashes, restarts, evacuations land on
        tick boundaries), then in-flight control messages, then local
        control (sOAs), then rack-level safety (warnings/caps), then the
        slower telemetry and weekly budget cadences.
        """
        if self.lifecycle is not None:
            self.lifecycle.tick(now, dt)
        for channel in self.channels.values():
            if channel.in_flight:
                channel.pump(now)
        for supervisor in self.supervisors.values():
            supervisor.tick(now)
        for soa in self.soas.values():
            if soa.alive:
                soa.control_tick(now, dt)
        for manager in self.rack_managers.values():
            manager.sample(now)
        for rack in self.datacenter.racks.values():
            for server in rack.servers:
                server.advance(dt)
        if now - self._last_telemetry >= self.config.telemetry_interval_s:
            self._last_telemetry = now
            for server_id, soa in self.soas.items():
                if not soa.alive:
                    continue
                if self.fault_injector is not None and \
                        self.fault_injector.telemetry_drop(server_id, now):
                    continue
                soa.telemetry_tick(now)
        if now - self._last_budget_update >= self.config.budget_update_period_s:
            # First update happens immediately (bootstraps fair-share away).
            if self._last_budget_update > -float("inf"):
                self._goa_update(now)
            self._last_budget_update = now

    def _goa_update(self, now: float) -> None:
        """Run each rack's gOA cycle unless its gOA is faulted down.

        Under HA the supervisor decides who runs (whichever replicas
        believe primary and are up) and keeps its own missed-cycle
        tally, so the injector's counting ``goa_down`` is not consulted."""
        for rack_id, goa in self.goas.items():
            if self.fault_injector is not None and \
                    self.fault_injector.goa_down(rack_id, now):
                continue
            goa.update(now)
        for supervisor in self.supervisors.values():
            supervisor.update(now)

    def force_budget_update(self, now: float) -> None:
        """Trigger gOA profile collection + budget recompute immediately
        (skipped for racks whose gOA is faulted down, like the periodic
        cadence)."""
        self._goa_update(now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_power_watts(self) -> float:
        """Current fleet draw: an O(1) read of the datacenter's
        incrementally-maintained power aggregate (no per-core model
        evaluation), cheap enough for per-tick telemetry at fleet scale."""
        return self.datacenter.total_power_watts()

    def rack_power_watts(self) -> dict[str, float]:
        """Per-rack draw snapshot from the cached rack aggregates."""
        return {rack_id: rack.power_watts()
                for rack_id, rack in self.datacenter.racks.items()}

    def total_cap_events(self) -> int:
        return sum(len(m.cap_events) for m in self.rack_managers.values())

    def total_warnings(self) -> int:
        return sum(len(m.warnings) for m in self.rack_managers.values())

    def channel_statistics(self) -> dict[str, int]:
        """Aggregate gOA↔sOA channel counters across racks."""
        totals = {"sent": 0, "delivered": 0, "dropped": 0, "delayed": 0,
                  "failed_pulls": 0}
        for channel in self.channels.values():
            totals["sent"] += channel.sent
            totals["delivered"] += channel.delivered
            totals["dropped"] += channel.dropped
            totals["delayed"] += channel.delayed
            totals["failed_pulls"] += channel.failed_pulls
        return totals

    def fault_counters(self) -> Optional[dict[str, int]]:
        """One consistent counter table for the whole failure surface.

        Merges the injector's activity counters, the recovery
        lifecycle's crash/restore counters and the gOAs' membership
        counters.  Missing subsystems contribute zeros so the table's
        shape is stable; returns None only when the platform runs with
        neither an injector nor a lifecycle.
        """
        if self.fault_injector is None and self.lifecycle is None \
                and not self.supervisors:
            return None
        if self.fault_injector is not None:
            merged = self.fault_injector.counters.as_dict()
        else:
            from repro.faults.injector import FaultCounters
            merged = FaultCounters().as_dict()
        if self.lifecycle is not None:
            merged.update(self.lifecycle.counter_dict())
        else:
            from repro.recovery.lifecycle import RecoveryCounters
            merged.update(RecoveryCounters().as_dict())
        from repro.core.goa_ha import HaCounters
        ha = HaCounters()
        for supervisor in self.supervisors.values():
            c = supervisor.counters
            ha.failovers += c.failovers
            ha.stepdowns += c.stepdowns
            ha.heartbeats_sent += c.heartbeats_sent
            ha.heartbeats_received += c.heartbeats_received
            ha.cycles_missed += c.cycles_missed
        merged.update(ha.as_dict())
        merged["stale_pushes_rejected"] = sum(
            s.stale_pushes_rejected for s in self.soas.values())
        merged["checkpoint_corruption_detected"] = (
            self.durable_store.corruption_detected
            if self.durable_store is not None else 0)
        merged["servers_marked_dead"] = sum(
            g.servers_marked_dead for g in self._all_goas())
        merged["servers_revived"] = sum(
            g.servers_revived for g in self._all_goas())
        return merged

    def grant_statistics(self) -> dict[str, int]:
        received = sum(s.requests_received for s in self.soas.values())
        granted = sum(s.requests_granted for s in self.soas.values())
        rej_power = sum(s.requests_rejected_power
                        for s in self.soas.values())
        rej_life = sum(s.requests_rejected_lifetime
                       for s in self.soas.values())
        rej_quarantine = sum(s.requests_rejected_quarantine
                             for s in self.soas.values())
        return {"received": received, "granted": granted,
                "rejected_power": rej_power, "rejected_lifetime": rej_life,
                "rejected_quarantine": rej_quarantine}
