"""Requests, decisions, and signals exchanged between SmartOClock agents."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "RequestKind",
    "OverclockRequest",
    "RejectionReason",
    "AdmissionDecision",
    "ExhaustionKind",
    "ExhaustionSignal",
    "ServerProfileReport",
]


class RequestKind(str, enum.Enum):
    """How the overclocking was triggered (§IV-A)."""

    METRICS = "metrics"        # reactive, from latency/utilization triggers
    SCHEDULED = "scheduled"    # reserved ahead of time for known peaks


@dataclass(frozen=True)
class OverclockRequest:
    """A local WI agent asking its sOA to overclock one VM."""

    vm_id: int
    kind: RequestKind
    target_freq_ghz: float
    n_cores: int
    time: float
    priority: int = 0
    # Scheduled requests carry the window they want reserved.
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.target_freq_ghz <= 0:
            raise ValueError(
                f"target frequency must be > 0: {self.target_freq_ghz}")
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1: {self.n_cores}")
        if self.kind is RequestKind.SCHEDULED and self.duration_s is None:
            raise ValueError("scheduled requests must carry duration_s")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0: {self.duration_s}")


class RejectionReason(str, enum.Enum):
    POWER_BUDGET = "power_budget"        # predicted power exceeds budget
    LIFETIME_BUDGET = "lifetime_budget"  # overclocking time budget exhausted
    UNKNOWN_VM = "unknown_vm"
    ALREADY_OVERCLOCKED = "already_overclocked"
    QUARANTINED = "quarantined"          # server under crash/wear cooldown


@dataclass(frozen=True)
class AdmissionDecision:
    """The sOA's answer to an :class:`OverclockRequest`."""

    granted: bool
    reason: Optional[RejectionReason] = None
    # For granted metrics-based requests: how long the lifetime budget can
    # sustain this VM's overclocking before corrective action is needed.
    granted_until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.granted and self.reason is not None:
            raise ValueError("granted decisions carry no rejection reason")
        if not self.granted and self.reason is None:
            raise ValueError("rejections must carry a reason")


class ExhaustionKind(str, enum.Enum):
    POWER = "power"
    LIFETIME = "lifetime"


@dataclass(frozen=True)
class ExhaustionSignal:
    """sOA → global WI agent: resources run out soon; act now (§IV-D)."""

    server_id: str
    kind: ExhaustionKind
    time: float
    time_to_exhaustion_s: float

    def __post_init__(self) -> None:
        if self.time_to_exhaustion_s < 0:
            raise ValueError("time_to_exhaustion_s must be >= 0: "
                             f"{self.time_to_exhaustion_s}")


@dataclass(frozen=True)
class ServerProfileReport:
    """What an sOA periodically sends its gOA (§IV-C).

    Slot-resolution series over one week: predicted regular (non-overclock)
    power, and the number of cores that requested / were granted
    overclocking per slot.
    """

    server_id: str
    slot_s: float
    regular_power_watts: np.ndarray
    oc_requested_cores: np.ndarray
    oc_granted_cores: np.ndarray
    # High-quantile power series at the platform's oversubscription risk
    # level; only populated when oversubscription is enabled (the gOA
    # sums these into the rack-peak upper bound).
    hi_quantile_power_watts: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.regular_power_watts)
        if len(self.oc_requested_cores) != n or len(self.oc_granted_cores) != n:
            raise ValueError("profile series must be aligned")
        if self.hi_quantile_power_watts is not None \
                and len(self.hi_quantile_power_watts) != n:
            raise ValueError("profile series must be aligned")
        if n < 1:
            raise ValueError("profile needs at least one slot")
        if self.slot_s <= 0:
            raise ValueError(f"slot_s must be > 0: {self.slot_s}")
