"""Risk-aware oversubscription admission (ROADMAP item 2).

After Kumbhare et al. (*Prediction-Based Power Oversubscription in Cloud
Platforms*): a rack provisioned against its nameplate limit strands
power whenever the workload's actual peak sits below that limit.  If a
high quantile of the *predicted* rack peak plus a confidence margin
still clears the limit, the controller can admit extra overclock
headroom into the planning limit — more granted cores from the same
physical capacity — and *Risk-aware Adaptive vCPU Oversubscription*
makes the aggressiveness an explicit knob.

The controller is deliberately pure math over prediction series; the
gOA (platform path) and the ``SmartOClock+OSub`` trace policy both call
:meth:`OversubscriptionController.admit` with their own quantile
predictions.  Enforcement still runs against the *physical* limit: an
oversubscription mistake shows up as cap events (attributed via
``osub_cap_events``), never as an uncapped excursion.

Margin math, per planning slot ``t``::

    margin(t)   = margin_fraction * max(0, hi(t) - mid(t))
    admitted(t) = clip(limit - (hi(t) + margin(t)), 0,
                       max_extra_fraction * limit)
    planning(t) = limit + admitted(t)

``hi`` is the risk level's quantile of predicted rack power and ``mid``
the median prediction, so the margin is proportional to predictive
*uncertainty*: a workload whose upper quantile hugs its median admits
nearly up to the limit, a noisy one keeps a wide guard band.  Across
the risk ladder all three dials move together — a higher risk level
uses a lower ``hi`` quantile, a thinner margin, *and* a larger per-slot
cap on admitted headroom (``max_extra_fraction``) — so admitted
headroom is monotone in risk by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

__all__ = [
    "RiskProfile",
    "RISK_LEVELS",
    "OversubscriptionDecision",
    "OversubscriptionController",
]


@dataclass(frozen=True)
class RiskProfile:
    """One point on the risk ladder: which quantile bounds predicted
    peak, how much of the hi−mid uncertainty to keep as margin, and how
    much of the physical limit a single slot may oversubscribe by."""

    name: str
    quantile: float
    margin_fraction: float
    max_extra_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]: {self.quantile}")
        if self.margin_fraction < 0.0:
            raise ValueError(
                f"margin_fraction must be >= 0: {self.margin_fraction}")
        if not 0.0 <= self.max_extra_fraction <= 1.0:
            raise ValueError(
                "max_extra_fraction must be in [0, 1]: "
                f"{self.max_extra_fraction}")


#: The risk knob: conservative bounds peak by a higher quantile, keeps
#: the full uncertainty band as margin, and caps admitted headroom at
#: 5 % of the limit; aggressive trusts the P90, a quarter band, and up
#: to 15 %.  Ordered least → most risk.  Immutable (a read-only proxy)
#: so pool workers constructing controllers stay pure functions of
#: their job payload under both fork and spawn.
RISK_LEVELS: Mapping[str, RiskProfile] = MappingProxyType({
    "conservative": RiskProfile("conservative", quantile=0.99,
                                margin_fraction=1.0,
                                max_extra_fraction=0.05),
    "balanced": RiskProfile("balanced", quantile=0.95, margin_fraction=0.5,
                            max_extra_fraction=0.10),
    "aggressive": RiskProfile("aggressive", quantile=0.90,
                              margin_fraction=0.25,
                              max_extra_fraction=0.15),
})

#: RISK_LEVELS keys ordered least → most risk (dict order is insertion
#: order, but the contract deserves a name).
RISK_ORDER = tuple(RISK_LEVELS)


@dataclass(frozen=True)
class OversubscriptionDecision:
    """One admission decision over a planning horizon of slots."""

    risk_level: str
    quantile: float
    limit_watts: np.ndarray            # physical limit per slot
    predicted_hi_watts: np.ndarray     # risk quantile of predicted power
    predicted_mid_watts: np.ndarray    # median prediction
    margin_watts: np.ndarray
    admitted_extra_watts: np.ndarray   # >= 0, the oversubscribed headroom
    planning_limit_watts: np.ndarray = field(repr=False)

    @property
    def mean_admitted_watts(self) -> float:
        return float(np.mean(self.admitted_extra_watts))

    @property
    def max_admitted_watts(self) -> float:
        return float(np.max(self.admitted_extra_watts))

    @property
    def any_admitted(self) -> bool:
        return bool(np.any(self.admitted_extra_watts > 0.0))


class OversubscriptionController:
    """Pure admission math: prediction series in, planning limits out."""

    def __init__(self, risk_level: str = "conservative", *,
                 max_extra_fraction: "float | None" = None) -> None:
        if risk_level not in RISK_LEVELS:
            raise ValueError(
                f"unknown risk level {risk_level!r}; choose from "
                f"{sorted(RISK_LEVELS)}")
        self.risk = RISK_LEVELS[risk_level]
        if max_extra_fraction is None:
            max_extra_fraction = self.risk.max_extra_fraction
        if not 0.0 <= max_extra_fraction <= 1.0:
            raise ValueError(
                f"max_extra_fraction must be in [0, 1]: {max_extra_fraction}")
        self.max_extra_fraction = max_extra_fraction

    def admit(self, limit_watts: "float | np.ndarray",
              predicted_hi_watts: np.ndarray,
              predicted_mid_watts: np.ndarray) -> OversubscriptionDecision:
        """Decide per-slot admitted extra headroom.

        ``predicted_hi_watts`` must be the rack-power series at this
        controller's risk quantile, ``predicted_mid_watts`` the median
        series over the same slots.  Slots where the hi prediction plus
        margin already reaches the limit admit nothing; no slot ever
        admits more than ``max_extra_fraction`` of the physical limit.
        """
        hi = np.asarray(predicted_hi_watts, dtype=float)
        mid = np.asarray(predicted_mid_watts, dtype=float)
        if hi.shape != mid.shape or hi.ndim != 1:
            raise ValueError(
                f"hi/mid series must be equal-length 1-D: {hi.shape} vs "
                f"{mid.shape}")
        limit = np.broadcast_to(
            np.asarray(limit_watts, dtype=float), hi.shape).astype(float)
        if np.any(limit <= 0):
            raise ValueError(f"limit must be > 0: {limit_watts}")
        if not (np.all(np.isfinite(hi)) and np.all(np.isfinite(mid))):
            raise ValueError("predictions must be finite")
        margin = self.risk.margin_fraction * np.maximum(0.0, hi - mid)
        admitted = np.clip(limit - (hi + margin), 0.0,
                           self.max_extra_fraction * limit)
        return OversubscriptionDecision(
            risk_level=self.risk.name,
            quantile=self.risk.quantile,
            limit_watts=limit,
            predicted_hi_watts=hi,
            predicted_mid_watts=mid,
            margin_watts=margin,
            admitted_extra_watts=admitted,
            planning_limit_watts=limit + admitted,
        )
