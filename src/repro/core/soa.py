"""Server Overclocking Agent (paper Fig. 11, §IV-B/§IV-D).

The sOA is the decentralized decision-maker on every server:

* **admission control** — grants/rejects overclocking requests against the
  server's power budget (predicted power + overclock delta ≤ budget) and
  the per-core lifetime budgets;
* **enforcement** — a prioritized feedback loop steps granted VMs toward
  their targets while keeping measured power under the effective budget;
* **exploration** — when constrained by a possibly-stale budget, probes
  beyond it, guided by rack warnings (see
  :class:`~repro.core.exploration.ExplorationController`);
* **lifetime accounting** — consumes per-core epoch budgets while VMs run
  overclocked; reschedules VMs onto cores with remaining budget when their
  cores run dry;
* **exhaustion prediction** — warns the workload-intelligence layer when
  power or lifetime budget will run out within the configured window so it
  can scale out proactively;
* **profiling** — builds the weekly power/overclock profile report the gOA
  uses for heterogeneous budgeting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cluster.capping import CapEvent, WarningMessage
from repro.cluster.topology import Core, Server, VirtualMachine
from repro.core.budgets import BudgetAssignment
from repro.core.config import SmartOClockConfig
from repro.core.enforcement import FeedbackLoop
from repro.core.exploration import ExplorationController, ExplorationPhase
from repro.core.types import (
    AdmissionDecision,
    ExhaustionKind,
    ExhaustionSignal,
    OverclockRequest,
    RejectionReason,
    RequestKind,
    ServerProfileReport,
)
from repro.core.oversubscription import RISK_LEVELS
from repro.prediction.predictor import TemplateStore
from repro.prediction.quantiles import DailyQuantileTemplate
from repro.recovery.checkpoint import RestoreReport, SoaCheckpoint
from repro.reliability.online_wear import OnlineWearBudget
from repro.reliability.wearout import CoreWearoutCounter, EpochBudget

__all__ = ["ServerOverclockingAgent", "GrantState"]

SECONDS_PER_WEEK = 7 * 86400.0


def _unit_scale(t: float) -> float:
    """Healthy prediction path: no skew."""
    return 1.0


@dataclass
class GrantState:
    """Book-keeping for one active overclocking grant."""

    vm_id: int
    kind: RequestKind
    target_freq_ghz: float
    granted_at: float
    granted_until: Optional[float]
    from_reservation: bool = False


class ServerOverclockingAgent:
    """One sOA per server."""

    def __init__(self, server: Server, config: SmartOClockConfig, *,
                 on_exhaustion: Optional[
                     Callable[[ExhaustionSignal], None]] = None,
                 on_grant_revoked: Optional[
                     Callable[[VirtualMachine, str, float], None]] = None
                 ) -> None:
        self.server = server
        self.config = config
        self.on_exhaustion = on_exhaustion or (lambda signal: None)
        self.on_grant_revoked = on_grant_revoked or (
            lambda vm, why, now: None)

        # Liveness & quarantine.  ``alive`` flips when the sOA process
        # (or its whole server) crashes; ``quarantined_until`` is a
        # cached projection of the platform's risk controller — the
        # controller is the source of truth and re-imposes it after
        # restarts.
        self.alive = True
        self.quarantined_until: Optional[float] = None
        # Fault hook: scales template predictions (1.0 = healthy).  The
        # fault injector installs a per-server skew to model the
        # misprediction regimes of §V / Kumbhare et al.  Survives
        # restarts: the hook models the *environment*, not sOA state.
        self.prediction_scale: Callable[[float], float] = _unit_scale
        # Telemetry counters (harness instrumentation: survive restarts
        # so experiment totals cover the whole run).
        self.requests_received = 0
        self.requests_granted = 0
        self.requests_rejected_power = 0
        self.requests_rejected_lifetime = 0
        self.requests_rejected_quarantine = 0
        self.stale_pushes_rejected = 0
        self._build_fresh_state()

    def _build_fresh_state(self) -> None:
        """(Re)build all in-memory control state, as a newly started sOA
        process would.  Durable state is layered back on top by
        :meth:`restart` when a checkpoint exists."""
        config = self.config
        server = self.server
        self.power_store = TemplateStore(config.template_kind,
                                         config.template_history_weeks)
        self.loop = FeedbackLoop(server,
                                 buffer_watts=config.power_buffer_watts)
        self.explorer = ExplorationController(
            step_watts=config.explore_step_watts,
            confirm_s=config.explore_confirm_s,
            backoff_initial_s=config.explore_backoff_initial_s,
            backoff_factor=config.explore_backoff_factor,
            backoff_max_s=config.explore_backoff_max_s,
            exploit_duration_s=config.exploit_duration_s)
        self.core_budgets = [
            EpochBudget(budget_fraction=config.oc_budget_fraction,
                        epoch_seconds=config.epoch_seconds,
                        weekday_only=config.weekday_only_budget,
                        carryover_cap_epochs=config.carryover_cap_epochs)
            for _ in server.cores
        ]
        self.wear_counters = [CoreWearoutCounter()
                              for _ in server.cores]
        # Lazy wear ledger: control ticks note [dt, tick-count] runs here;
        # the notes replay through ``accumulate_run`` when a counter is
        # read or the server's operating point changes.  Notes pending at
        # a crash are dropped with the rest of the volatile state — the
        # restore overwrites the counters from the checkpoint either way.
        self._pending_wear: list[list[float]] = []
        for counter in self.wear_counters:
            counter._flush_hook = self._flush_wear
        server.set_accrual_hook("soa", self._flush_wear)
        self.online_budgets = [
            OnlineWearBudget(counter,
                             safety_margin=config.online_wear_safety_margin,
                             warmup_seconds=config.online_wear_warmup_s)
            for counter in self.wear_counters
        ]
        self._assignment: Optional[BudgetAssignment] = None
        self._assignment_received_at: Optional[float] = None
        self._grants: dict[int, GrantState] = {}
        # Per-slot-of-week overclock demand telemetry for the gOA profile.
        self._slot_s = config.budget_slot_s
        n_slots = int(round(SECONDS_PER_WEEK / self._slot_s))
        self._oc_requested = np.zeros(n_slots)
        self._oc_granted = np.zeros(n_slots)
        # slot -> vm_id -> that VM's peak request/grant within the slot.
        self._requested_by_vm: dict[int, dict[int, int]] = {}
        self._granted_by_vm: dict[int, dict[int, int]] = {}
        self._regular_power = np.zeros(n_slots)
        self._regular_count = np.zeros(n_slots, dtype=np.int64)
        self._last_exhaustion_signal_at = -float("inf")
        self._last_power_rejection_at = -float("inf")

    # ------------------------------------------------------------------
    # Budget plumbing
    # ------------------------------------------------------------------

    def set_budget_assignment(self, assignment: BudgetAssignment,
                              now: Optional[float] = None) -> None:
        """Install the gOA's latest heterogeneous budget.

        ``now`` is the delivery time (stamped by the message channel);
        it anchors the staleness margin.  Without it the assignment is
        treated as ageless — the pre-channel behaviour.
        """
        if self.server.server_id not in assignment.budgets:
            raise KeyError(f"assignment lacks {self.server.server_id}")
        self._assignment = assignment
        self._assignment_received_at = now

    def receive_budget_push(self, assignment: BudgetAssignment,
                            now: Optional[float] = None) -> None:
        """Channel delivery endpoint for gOA budget pushes.

        A dead sOA process cannot take delivery: the push is silently
        lost (exactly what happens to a message addressed to a crashed
        agent) and the restarted sOA works from its restored assignment
        until the gOA's next cycle.

        Pushes are *epoch-fenced*: a push older than the installed
        assignment's epoch is a delayed/reordered delivery of something
        already superseded (or a split-brain push from a deposed gOA
        primary) — installing it would roll the budget backward *and*
        re-stamp stale data as fresh.  Such pushes are rejected and
        counted.  Equal epochs are re-deliveries of the same assignment
        and install harmlessly (they refresh nothing they shouldn't:
        same epoch means same recompute)."""
        if not self.alive:
            return
        if self._assignment is not None \
                and assignment.epoch < self._assignment.epoch:
            self.stale_pushes_rejected += 1
            return
        self.set_budget_assignment(assignment, now=now)

    def budget_age(self, now: float) -> Optional[float]:
        """Seconds since the current assignment arrived (None before the
        first stamped assignment)."""
        if self._assignment is None or self._assignment_received_at is None:
            return None
        return now - self._assignment_received_at

    def stale_budget_margin(self, now: float) -> float:
        """Safety margin shaved off an ageing assignment (fraction).

        A budget computed for the week it was pushed gets less
        trustworthy each missed update period: after
        ``stale_budget_grace_periods`` the sOA derates its budget by
        ``stale_budget_margin_per_period`` per additional period, capped
        at ``stale_budget_margin_max`` — graceful degradation instead of
        either freezing overclocking or trusting stale data forever.
        """
        age = self.budget_age(now)
        if age is None:
            return 0.0
        period = self.config.budget_update_period_s
        over = age / period - self.config.stale_budget_grace_periods
        if over <= 0.0:
            return 0.0
        return min(self.config.stale_budget_margin_max,
                   over * self.config.stale_budget_margin_per_period)

    def assigned_budget(self, now: float) -> float:
        """The gOA-assigned budget (fair fallback before first assignment),
        derated by the stale-budget safety margin as the assignment ages."""
        if self._assignment is not None:
            # Periodic replay is deliberate here: a stale assignment keeps
            # serving its time-of-week budgets (derated below) until the
            # gOA ships a fresh one.
            budget = self._assignment.budget_at(self.server.server_id, now,
                                                out_of_horizon="wrap")
            return budget * (1.0 - self.stale_budget_margin(now))
        rack = self.server.rack
        if rack is not None:
            return rack.fair_share_watts()
        # Standalone server: its own max power is the only bound.
        return self.server.power_model.max_server_watts()

    def effective_budget(self, now: float) -> float:
        """Assigned budget plus whatever exploration has claimed."""
        return self.assigned_budget(now) + self.explorer.extra_watts

    # ------------------------------------------------------------------
    # Crash / checkpoint / restore lifecycle
    # ------------------------------------------------------------------

    def crash(self, now: float) -> None:
        """The sOA process dies: all volatile control state is lost.

        Enforcement targets die with the process, but the *hardware*
        keeps whatever frequencies were last programmed — a dead agent
        does not reset VM clocks.  The rack capping path, which runs
        independently of the sOA, remains the safety net until
        :meth:`restart` reconciles the frequencies against the restored
        grant ledger.
        """
        self.alive = False
        self.loop.disengage_all(reset_to_turbo=False)
        self._grants.clear()

    def build_checkpoint(self, now: float) -> SoaCheckpoint:
        """Snapshot the durable state (wear counters, epoch budgets,
        template history, grant ledger, last budget assignment) as a
        JSON-compatible payload."""
        grants = {
            str(vm_id): {
                "vm_id": grant.vm_id,
                "kind": grant.kind.value,
                "target_freq_ghz": grant.target_freq_ghz,
                "granted_at": grant.granted_at,
                "granted_until": grant.granted_until,
                "from_reservation": grant.from_reservation,
            }
            for vm_id, grant in sorted(self._grants.items())
        }
        assignment = None
        if self._assignment is not None:
            assignment = {
                "slot_s": self._assignment.slot_s,
                "epoch": self._assignment.epoch,
                "received_at": self._assignment_received_at,
                "budgets": {
                    sid: [float(x) for x in series]
                    for sid, series in sorted(
                        self._assignment.budgets.items())
                },
            }
        payload = {
            "server_id": self.server.server_id,
            "wear_counters": [c.state_dict() for c in self.wear_counters],
            "epoch_budgets": [b.state_dict() for b in self.core_budgets],
            "templates": self.power_store.state_dict(),
            "grants": grants,
            "assignment": assignment,
        }
        return SoaCheckpoint(server_id=self.server.server_id,
                             taken_at=now, payload=payload)

    def restart(self, now: float,
                checkpoint: Optional[SoaCheckpoint] = None) -> RestoreReport:
        """Bring the sOA process back up, restoring durable state.

        All volatile state is rebuilt from scratch (nothing is
        replayed); the checkpoint layers the durable state back on top.
        Grants the restored ledger cannot prove were still valid — the
        VM left the server, or the grant carries no unexpired deadline —
        are conservatively revoked, and any VM still running overclocked
        without a surviving grant is forced back to turbo.
        """
        self._build_fresh_state()
        self.alive = True
        # Quarantine is a projection of the platform's risk controller;
        # the lifecycle manager re-imposes any active cooldown after the
        # restart (restoring it here from a stale checkpoint could
        # *shorten* a quarantine imposed while we were down).
        self.quarantined_until = None
        report = self._restore_checkpoint(checkpoint, now)
        plan = self.server.plan
        for vm in self.server.vms.values():
            if vm.vm_id in self._grants:
                continue
            if vm.freq_ghz is not None and plan.is_overclocked(vm.freq_ghz):
                self.server.set_vm_frequency(vm, plan.turbo_ghz)
        return report

    def _restore_checkpoint(self, checkpoint: Optional[SoaCheckpoint],
                            now: float) -> RestoreReport:
        if checkpoint is None:
            return RestoreReport(
                server_id=self.server.server_id, restored_at=now,
                checkpoint_taken_at=None, grants_kept=0, grants_revoked=0,
                assignment_age_s=None, stale_margin=0.0,
                checkpoint_budget_watts=None, restored_budget_watts=None)
        payload = checkpoint.payload
        for counter, state in zip(self.wear_counters,
                                  payload["wear_counters"]):
            counter.load_state_dict(state)
        for budget, state in zip(self.core_budgets,
                                 payload["epoch_budgets"]):
            budget.load_state_dict(state)
        self.power_store.load_state_dict(payload["templates"])
        checkpoint_budget = None
        restored_budget = None
        assignment_age = None
        if payload["assignment"] is not None:
            spec = payload["assignment"]
            # The epoch restores with the assignment so the fence holds
            # across restarts: a stale push from a deposed gOA primary is
            # rejected even by a freshly restored sOA.
            self._assignment = BudgetAssignment(
                slot_s=spec["slot_s"],
                budgets={sid: np.asarray(series, dtype=float)
                         for sid, series in spec["budgets"].items()},
                epoch=spec["epoch"])
            self._assignment_received_at = spec["received_at"]
            # The stale-budget margin re-derives from the restored
            # assignment age: an assignment that aged across the outage
            # comes back pre-derated.
            assignment_age = self.budget_age(now)
            checkpoint_budget = self._assignment.budget_at(
                self.server.server_id, now, out_of_horizon="wrap")
            restored_budget = self.assigned_budget(now)
        kept = 0
        revoked = 0
        for spec in payload["grants"].values():
            vm = self.server.vms.get(spec["vm_id"])
            valid = (vm is not None
                     and spec["granted_until"] is not None
                     and spec["granted_until"] > now)
            if not valid:
                revoked += 1
                continue
            self._grants[spec["vm_id"]] = GrantState(
                vm_id=spec["vm_id"], kind=RequestKind(spec["kind"]),
                target_freq_ghz=spec["target_freq_ghz"],
                granted_at=spec["granted_at"],
                granted_until=spec["granted_until"],
                from_reservation=spec["from_reservation"])
            self.loop.engage(vm, spec["target_freq_ghz"])
            kept += 1
        return RestoreReport(
            server_id=self.server.server_id, restored_at=now,
            checkpoint_taken_at=checkpoint.taken_at,
            grants_kept=kept, grants_revoked=revoked,
            assignment_age_s=assignment_age,
            stale_margin=self.stale_budget_margin(now),
            checkpoint_budget_watts=checkpoint_budget,
            restored_budget_watts=restored_budget)

    # ------------------------------------------------------------------
    # Admission control (§IV-B)
    # ------------------------------------------------------------------

    def predicted_power(self, t: float) -> float:
        """Server power prediction from the local template (falls back to
        the live measurement before the first weekly recompute).  Template
        outputs pass through the ``prediction_scale`` fault hook; the live
        fallback is a direct sensor read and is not skewed."""
        if self.power_store.has_template:
            return self.prediction_scale(t) * self.power_store.predict(t)
        return self.server.power_watts()

    def _oc_extra_watts(self, n_cores: int,
                        utilization: float = 1.0) -> float:
        """Overclock power delta for ``n_cores`` at ``utilization``.

        Admission uses the VM's predicted utilization (its recent level,
        floored for safety); exhaustion prediction keeps the worst case
        (§IV-D: "at a given core frequency and worst-case utilization").
        """
        return n_cores * self.server.power_model.overclock_core_delta(
            utilization)

    def _lifetime_available_s(self, vm: VirtualMachine, now: float) -> float:
        cores = self.server.vm_cores(vm)
        if self.config.lifetime_mode == "online":
            # Section VI wear-out counters: budget against each core's live
            # lifetime credits at the worst-case operating point.
            volts = self.server.plan.voltage(
                self.server.plan.overclock_max_ghz)
            return min(self.online_budgets[c.index].available_seconds(
                max(0.5, vm.utilization), volts) for c in cores)
        return min(self.core_budgets[c.index].available_seconds(now)
                   for c in cores)

    def handle_request(self, request: OverclockRequest,
                       now: float) -> AdmissionDecision:
        """Grant or reject an overclocking request (Fig. 11 left path)."""
        self.requests_received += 1
        vm = self.server.vms.get(request.vm_id)
        if vm is None:
            return AdmissionDecision(False, RejectionReason.UNKNOWN_VM)
        if request.vm_id in self._grants:
            return AdmissionDecision(
                False, RejectionReason.ALREADY_OVERCLOCKED)
        self._note_request(now, request.vm_id, request.n_cores)

        if not self.config.enable_admission_control:
            # NaiveOClock: grant unconditionally.
            return self._grant(vm, request, now, granted_until=None)

        # Risk controller: a quarantined server takes no new OC risk
        # until the cooldown lifts (it keeps running VMs at turbo).
        if self.quarantined_until is not None \
                and now < self.quarantined_until:
            self.requests_rejected_quarantine += 1
            return AdmissionDecision(False, RejectionReason.QUARANTINED)

        # Lifetime check: enough per-core budget for a useful grant.
        available_s = self._lifetime_available_s(vm, now)
        if request.kind is RequestKind.SCHEDULED:
            needed = request.duration_s
            if available_s < needed:
                self.requests_rejected_lifetime += 1
                return AdmissionDecision(
                    False, RejectionReason.LIFETIME_BUDGET)
        else:
            if available_s < self.config.min_grant_s:
                self.requests_rejected_lifetime += 1
                return AdmissionDecision(
                    False, RejectionReason.LIFETIME_BUDGET)

        # Power check: the request is admitted if at least the *minimum*
        # overclock step fits under the budget; the prioritized feedback
        # loop then ramps the VM as far as the budget allows (SmartOClock paper, section IV-D).
        predicted = self.predicted_power(now)
        admission_util = max(0.5, vm.utilization)
        plan = self.server.plan
        min_step_delta = request.n_cores * (
            self.server.power_model.core_dynamic_watts(
                admission_util, plan.turbo_ghz + plan.step_ghz)
            - self.server.power_model.core_dynamic_watts(
                admission_util, plan.turbo_ghz))
        if predicted + min_step_delta > self.effective_budget(now):
            self.requests_rejected_power += 1
            self._last_power_rejection_at = now
            return AdmissionDecision(False, RejectionReason.POWER_BUDGET)

        if request.kind is RequestKind.SCHEDULED:
            # Soft-reserve lifetime budget on each core for the window.
            for core in self.server.vm_cores(vm):
                if not self.core_budgets[core.index].reserve(
                        now, request.duration_s):
                    # Roll back partial reservations.
                    for other in self.server.vm_cores(vm):
                        if other.index == core.index:
                            break
                        self.core_budgets[other.index].release_reservation(
                            now, request.duration_s)
                    self.requests_rejected_lifetime += 1
                    return AdmissionDecision(
                        False, RejectionReason.LIFETIME_BUDGET)
            granted_until = now + request.duration_s
            return self._grant(vm, request, now, granted_until,
                               from_reservation=True)
        granted_until = now + available_s
        return self._grant(vm, request, now, granted_until)

    def _grant(self, vm: VirtualMachine, request: OverclockRequest,
               now: float, granted_until: Optional[float],
               from_reservation: bool = False) -> AdmissionDecision:
        self._grants[vm.vm_id] = GrantState(
            vm_id=vm.vm_id, kind=request.kind,
            target_freq_ghz=request.target_freq_ghz,
            granted_at=now, granted_until=granted_until,
            from_reservation=from_reservation)
        self.loop.engage(vm, request.target_freq_ghz)
        self.requests_granted += 1
        self._note_grant(now, vm.vm_id, request.n_cores)
        return AdmissionDecision(True, granted_until=granted_until)

    def stop_overclock(self, vm_id: int, now: float) -> None:
        """WI-triggered scale-down: end the grant and return to turbo."""
        grant = self._grants.pop(vm_id, None)
        if grant is None:
            return
        vm = self.server.vms.get(vm_id)
        if vm is not None:
            if grant.from_reservation and grant.granted_until is not None:
                unused = max(0.0, grant.granted_until - now)
                for core in self.server.vm_cores(vm):
                    self.core_budgets[core.index].release_reservation(
                        now, unused)
            self.loop.disengage(vm)

    def is_overclocking(self, vm_id: int) -> bool:
        return vm_id in self._grants

    @property
    def active_grants(self) -> int:
        return len(self._grants)

    # ------------------------------------------------------------------
    # Control loop (§IV-D)
    # ------------------------------------------------------------------

    def control_tick(self, now: float, dt: float) -> None:
        """One control iteration: budgets, expiry, feedback, exploration."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0: {dt}")
        if (not self.config.eager_accounting
                and not self._grants
                and self.loop.active_vms == 0
                and self.explorer.phase is ExplorationPhase.IDLE
                and now - self._last_power_rejection_at
                >= 2 * self.config.explore_confirm_s):
            # Idle fast path: with no grants, no enforcement targets, an
            # idle explorer and no recent power rejection, every step
            # below is provably mutation-free (lifetime/expiry loops
            # have nothing to visit, the feedback tick prunes and steps
            # nothing, the explorer's IDLE branch ignores an
            # unconstrained tick, exhaustion prediction bails without
            # grants) — except wear accrual, which the ledger notes.
            self._note_wear(now, dt)
            return
        self._consume_lifetime(now, dt)
        self._expire_grants(now)
        if self.config.enable_admission_control:
            budget = self.effective_budget(now)
        else:
            # NaiveOClock: no local budget — the rack capping system is
            # the only brake on overclocked power draw.
            budget = self.server.power_model.max_server_watts() * 2.0
        self.loop.tick(budget)
        if self.config.enable_exploration:
            # Unsatisfied demand counts as constrained whether the VM is
            # engaged below target or was rejected outright (§IV-D: the
            # sOA "can independently explore a higher budget to maximize
            # overclocking").
            recently_rejected = (now - self._last_power_rejection_at
                                 < 2 * self.config.explore_confirm_s)
            constrained = self.loop.constrained(budget) or recently_rejected
            at_target = self.loop.all_at_target() and not recently_rejected
            self.explorer.tick(now, constrained, at_target)
        self._note_wear(now, dt)
        if self.config.enable_proactive_scaleout:
            self._predict_exhaustion(now)

    def _consume_lifetime(self, now: float, dt: float) -> None:
        if not self._grants:
            return
        # Iterate the live dict and defer the mutations (dead-grant
        # deletions, reschedules/revocations) until after the scan: a
        # consume only touches the grant's own cores, a reschedule only
        # claims *unallocated* cores and a revocation only retunes its
        # own VM, so deferral is order-equivalent and saves the per-tick
        # list() copy of the ledger.
        plan = self.server.plan
        dead: list[int] = []
        troubled: list[VirtualMachine] = []
        for vm_id, grant in self._grants.items():
            vm = self.server.vms.get(vm_id)
            if vm is None:
                dead.append(vm_id)
                continue
            if vm.freq_ghz is None or not plan.is_overclocked(vm.freq_ghz):
                continue  # granted but not ramped up yet: no budget burned
            cores = self.server.vm_cores(vm)
            exhausted: list[Core] = []
            if self.config.lifetime_mode == "online":
                # Wear accrues through the counters in _note_wear; the
                # grant ends when a core's credits run dry.
                volts = plan.voltage(vm.freq_ghz)
                for core in cores:
                    if not self.online_budgets[core.index].can_overclock(
                            vm.utilization, volts, dt):
                        exhausted.append(core)
            else:
                for core in cores:
                    ok = self.core_budgets[core.index].consume(
                        now, dt, from_reservation=grant.from_reservation)
                    if not ok:
                        exhausted.append(core)
            if exhausted:
                troubled.append(vm)
        for vm_id in dead:
            del self._grants[vm_id]
        for vm in troubled:
            if not self._reschedule_cores(vm, now):
                self._revoke(vm, now, "lifetime budget exhausted")

    def _reschedule_cores(self, vm: VirtualMachine, now: float) -> bool:
        """Per-core budget exploration: move the VM onto cores that still
        have budget (§IV-D "Exploring beyond the local budgets")."""
        needed = vm.n_cores
        if self.config.lifetime_mode == "online":
            volts = self.server.plan.voltage(
                self.server.plan.overclock_max_ghz)
            def has_budget(core: Core) -> bool:
                return self.online_budgets[core.index].available_seconds(
                    max(0.5, vm.utilization), volts) \
                    >= self.config.min_grant_s
        else:
            def has_budget(core: Core) -> bool:
                return self.core_budgets[core.index].available_seconds(
                    now) >= self.config.min_grant_s
        candidates = [
            core for core in self.server.cores
            if (not core.allocated or core.vm_id == vm.vm_id)
            and has_budget(core)
        ]
        if len(candidates) < needed:
            return False
        self.server.reassign_vm_cores(vm, candidates[:needed])
        return True

    def _expire_grants(self, now: float) -> None:
        if not self._grants:
            return
        # Collect first, revoke after: revocations mutate the ledger.
        expired = [vm_id for vm_id, grant in self._grants.items()
                   if grant.granted_until is not None
                   and now >= grant.granted_until]
        for vm_id in expired:
            vm = self.server.vms.get(vm_id)
            if vm is not None:
                self._revoke(vm, now, "grant expired")
            else:
                del self._grants[vm_id]

    def _revoke(self, vm: VirtualMachine, now: float, why: str) -> None:
        self._grants.pop(vm.vm_id, None)
        self.loop.disengage(vm)
        self.on_grant_revoked(vm, why, now)

    def _accrue_wear(self, now: float, dt: float) -> None:
        plan = self.server.plan
        for vm in self.server.vms.values():
            volts = plan.voltage(vm.freq_ghz) if vm.freq_ghz else \
                plan.voltage(plan.turbo_ghz)
            for core in self.server.vm_cores(vm):
                self.wear_counters[core.index].accumulate(
                    dt, vm.utilization, volts)

    def _note_wear(self, now: float, dt: float) -> None:
        """Record one control tick's wear, eagerly or in the ledger."""
        if self.config.eager_accounting:
            self._accrue_wear(now, dt)
            return
        pending = self._pending_wear
        if pending and pending[-1][0] == dt:
            pending[-1][1] += 1
        else:
            pending.append([dt, 1])

    def _flush_wear(self) -> None:
        """Replay the pending wear ledger into the counters.

        Runs from the counters' read hooks and from the server's accrual
        flush, i.e. always *before* an operating-point change lands — the
        VM state read here is still the state every pending tick saw.
        """
        pending = self._pending_wear
        if not pending:
            return
        self._pending_wear = []
        plan = self.server.plan
        for vm in self.server.vms.values():
            volts = plan.voltage(vm.freq_ghz) if vm.freq_ghz else \
                plan.voltage(plan.turbo_ghz)
            for core in self.server.vm_cores(vm):
                counter = self.wear_counters[core.index]
                for dt, count in pending:
                    counter.accumulate_run(dt, vm.utilization, volts,
                                           int(count))

    # ------------------------------------------------------------------
    # Rack events
    # ------------------------------------------------------------------

    def on_warning(self, message: WarningMessage) -> None:
        if self.config.enable_warnings:
            self.explorer.on_warning(message.time)

    def on_cap(self, event: CapEvent) -> None:
        self.explorer.on_cap(event.time)

    # ------------------------------------------------------------------
    # Exhaustion prediction → proactive scale-out (§IV-D, Fig. 11 right)
    # ------------------------------------------------------------------

    def _predict_exhaustion(self, now: float) -> None:
        window = self.config.exhaustion_window_s
        if window <= 0 or not self._grants:
            return
        # Rate-limit signals to one per window.
        if now - self._last_exhaustion_signal_at < window:
            return
        signal = self.predict_power_exhaustion(now)
        if signal is None:
            signal = self.predict_lifetime_exhaustion(now)
        if signal is not None:
            self._last_exhaustion_signal_at = now
            self.on_exhaustion(signal)

    def predict_power_exhaustion(self, now: float
                                 ) -> Optional[ExhaustionSignal]:
        """Earliest time within the window when predicted power plus the
        active overclock draw exceeds the budget."""
        if not self.power_store.has_template:
            return None
        active_cores = sum(
            len(self.server.vm_cores(self.server.vms[g.vm_id]))
            for g in self._grants.values()
            if g.vm_id in self.server.vms)
        extra = self._oc_extra_watts(active_cores)
        step = self.config.budget_slot_s
        t = now
        while t <= now + self.config.exhaustion_window_s:
            if self.predicted_power(t) + extra > self.effective_budget(t):
                return ExhaustionSignal(
                    server_id=self.server.server_id,
                    kind=ExhaustionKind.POWER, time=now,
                    time_to_exhaustion_s=max(0.0, t - now))
            t += step
        return None

    def predict_lifetime_exhaustion(self, now: float
                                    ) -> Optional[ExhaustionSignal]:
        """Shortest remaining per-core lifetime budget among overclocking
        VMs, if within the window."""
        worst: Optional[float] = None
        for grant in self._grants.values():
            vm = self.server.vms.get(grant.vm_id)
            if vm is None:
                continue
            remaining = self._lifetime_available_s(vm, now)
            if grant.from_reservation and grant.granted_until is not None:
                remaining = max(remaining, grant.granted_until - now)
            if worst is None or remaining < worst:
                worst = remaining
        if worst is not None and worst <= self.config.exhaustion_window_s:
            return ExhaustionSignal(
                server_id=self.server.server_id,
                kind=ExhaustionKind.LIFETIME, time=now,
                time_to_exhaustion_s=worst)
        return None

    # ------------------------------------------------------------------
    # Telemetry & profile reporting (§IV-C)
    # ------------------------------------------------------------------

    def _slot_of_week(self, t: float) -> int:
        return int((t % SECONDS_PER_WEEK) // self._slot_s)

    def _note_demand(self, per_vm: dict[int, dict[int, int]],
                     series: np.ndarray, now: float, vm_id: int,
                     n_cores: int) -> None:
        """Record per-slot overclock demand as the *sum over distinct VMs*
        of each VM's peak request in the slot.

        Taking a plain max over requests understates concurrent demand:
        two VMs asking for 4 cores each in the same slot need 8 cores of
        overclock headroom, not 4 — and ``compute_heterogeneous_budgets``
        sizes this server's share of the rack headroom from that need.
        """
        slot = self._slot_of_week(now)
        vms = per_vm.setdefault(slot, {})
        vms[vm_id] = max(vms.get(vm_id, 0), n_cores)
        series[slot] = float(sum(vms.values()))

    def _note_request(self, now: float, vm_id: int, n_cores: int) -> None:
        self._note_demand(self._requested_by_vm, self._oc_requested,
                          now, vm_id, n_cores)

    def _note_grant(self, now: float, vm_id: int, n_cores: int) -> None:
        self._note_demand(self._granted_by_vm, self._oc_granted,
                          now, vm_id, n_cores)

    def telemetry_tick(self, now: float) -> None:
        """Sample power into the template store (5-minute cadence).

        The sOA separates measured power into regular and overclock parts
        using its knowledge of currently-overclocked cores (this is phase
        1 of the gOA's §IV-C computation, done at the edge).
        """
        measured = self.server.power_watts()
        oc_cores = self.server.overclocked_core_count()
        regular = measured - oc_cores * \
            self.server.power_model.overclock_core_delta(1.0)
        regular = max(self.server.power_model.idle_watts, regular)
        self.power_store.record(now, measured)
        slot = self._slot_of_week(now)
        self._regular_power[slot] += regular
        self._regular_count[slot] += 1

    def recompute_template(self) -> None:
        self.power_store.recompute()

    def build_profile_report(self) -> ServerProfileReport:
        """Weekly profile for the gOA: regular power + overclock demand."""
        counts = np.maximum(self._regular_count, 1)
        regular = self._regular_power / counts
        # Slots never observed fall back to the overall mean.
        seen = self._regular_count > 0
        if np.any(seen):
            fallback = float(np.mean(regular[seen]))
        else:
            fallback = self.server.power_model.idle_watts
        regular = np.where(seen, regular, fallback)
        return ServerProfileReport(
            server_id=self.server.server_id,
            slot_s=self._slot_s,
            regular_power_watts=regular,
            oc_requested_cores=self._oc_requested.copy(),
            oc_granted_cores=self._oc_granted.copy(),
            hi_quantile_power_watts=self._hi_quantile_series(regular))

    def _hi_quantile_series(self, regular: np.ndarray
                            ) -> Optional[np.ndarray]:
        """Per-slot high-quantile measured power for oversubscription.

        Built from the same retained telemetry as the template store, at
        the configured risk level's quantile, and floored at the regular
        series (an upper bound on power can't sit below the mean regular
        draw — quantiles of a short gappy history otherwise could).
        Returns ``None`` when oversubscription is off or the history
        can't support a template yet.
        """
        if not self.config.enable_oversubscription:
            return None
        times, values = self.power_store.history()
        if len(times) < 2:
            return None
        quantile = RISK_LEVELS[self.config.osub_risk_level].quantile
        try:
            template = DailyQuantileTemplate(times, values, q=quantile)
        except ValueError:
            return None  # degenerate history (e.g. irregular after gaps)
        slot_times = np.arange(len(regular)) * self._slot_s
        hi = template.predict_series(slot_times)
        return np.maximum(hi, regular)

    def reset_profile_window(self) -> None:
        """Start a fresh profiling week (called after reporting)."""
        self._oc_requested[:] = 0
        self._oc_granted[:] = 0
        self._requested_by_vm.clear()
        self._granted_by_vm.clear()
        self._regular_power[:] = 0
        self._regular_count[:] = 0
