"""gOA high availability: primary/standby replicas with lease failover.

The paper survives a dead gOA by decentralization alone: sOAs keep
operating on their last assignment, degrading overclocking quality until
the gOA returns (§III Q5).  That bounds *safety* but not *liveness* — a
gOA that stays dead means budgets go stale for good.  This module adds
the standard control-plane fix: one standby replica per rack that
watches the primary's heartbeat lease and takes over when it lapses.

Design (all on existing plumbing — no new transport):

* **Heartbeats** are ordinary :data:`~repro.core.messaging.GOA_HEARTBEAT`
  messages over the rack's :class:`~repro.core.messaging.MessageChannel`,
  so the same fault plans that drop budget pushes can drop heartbeats —
  false failovers are a scenario, not a bug.
* **Lease**: a standby that has not heard a heartbeat for
  ``config.goa_lease_s`` promotes itself.  It cannot distinguish a dead
  primary from a partitioned one, and does not need to:
* **Fencing**: every budget push carries the assignment's epoch
  (:class:`~repro.core.budgets.BudgetAssignment.epoch`), stamped from the
  pushing gOA's monotone counter.  A promoted standby seeds its counter
  past the greatest epoch it can prove existed — its own, the last one
  heard in a heartbeat, and the one in the durable gOA checkpoint — so
  its first recompute pushes at a strictly higher epoch and every sOA's
  fence (:meth:`~repro.core.soa.ServerOverclockingAgent
  .receive_budget_push`) rejects the deposed primary's stale pushes,
  including ones already in flight.
* **Stepdown**: a deposed primary learns of its deposition from either
  a heartbeat carrying a higher epoch or the durable checkpoint's epoch
  (checked before every push cycle) and demotes itself to standby.
  Until then the epoch fence keeps its split-brain pushes harmless.
* **State rebuild**: a promoted standby re-pulls live profiles from the
  sOAs (``goa.update``) rather than replaying history; the only state
  that must survive the primary is the epoch, which is exactly what the
  :class:`~repro.recovery.checkpoint.GoaCheckpoint` carries.  A
  corrupted or missing checkpoint degrades the epoch floor, never
  safety: heartbeat-observed epochs still fence, and in the worst case
  stale pushes are rejected by the sOAs' installed epoch anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.topology import Rack
from repro.core.budgets import BudgetAssignment
from repro.core.config import SmartOClockConfig
from repro.core.goa import GlobalOverclockingAgent
from repro.core.messaging import GOA_HEARTBEAT, Envelope, MessageChannel
from repro.core.soa import ServerOverclockingAgent
from repro.recovery.checkpoint import DurableStore, GoaCheckpoint

__all__ = ["HaCounters", "GoaReplica", "GoaSupervisor"]

PRIMARY = "primary"
STANDBY = "standby"

#: Is replica ``index`` down at time ``now``?  Installed by the platform
#: to map :class:`~repro.faults.spec.GoaOutage` windows onto replica 0
#: (the machine the non-HA deployment runs its only gOA on).
DownHook = Callable[[int, float], bool]


@dataclass
class HaCounters:
    """What the HA layer did during a run (telemetry for experiments)."""

    failovers: int = 0             # standby promotions (lease lapses)
    stepdowns: int = 0             # deposed primaries demoting
    heartbeats_sent: int = 0
    heartbeats_received: int = 0
    cycles_missed: int = 0         # update cycles with no live primary

    def as_dict(self) -> dict[str, int]:
        return {
            "ha_failovers": self.failovers,
            "ha_stepdowns": self.stepdowns,
            "ha_heartbeats_sent": self.heartbeats_sent,
            "ha_heartbeats_received": self.heartbeats_received,
            "ha_cycles_missed": self.cycles_missed,
        }


@dataclass
class GoaReplica:
    """One gOA replica plus the supervisor's view of it.

    ``role`` is the replica's own belief — two replicas can both believe
    ``primary`` during a partition (that is the split-brain window the
    epoch fence exists for)."""

    index: int
    goa: GlobalOverclockingAgent
    role: str
    # Standby bookkeeping: when the heartbeat lease runs out, and the
    # greatest primary epoch ever heard (fencing floor on promotion).
    lease_expires_at: float = 0.0
    last_seen_epoch: int = 0
    # Primary bookkeeping: next heartbeat due time.
    next_heartbeat_at: float = 0.0

    @property
    def name(self) -> str:
        return f"goa{self.index}"


class GoaSupervisor:
    """Runs a rack's primary + standby gOA replicas.

    The platform drives it exactly like a bare gOA — :meth:`tick` every
    platform tick (heartbeats, lease checks), :meth:`update` on the
    budget cadence — and reads :attr:`active_goa` wherever it read
    ``self.goas[rack_id]`` before.
    """

    def __init__(self, rack: Rack, config: SmartOClockConfig,
                 soas: list[ServerOverclockingAgent],
                 channel: MessageChannel,
                 store: DurableStore,
                 down_hook: Optional[DownHook] = None) -> None:
        self.rack = rack
        self.config = config
        self.channel = channel
        self.store = store
        self.down_hook = down_hook
        self.counters = HaCounters()
        # Both replicas speak to the same sOAs over the same channel —
        # they are two processes, not two control planes.
        self.replicas = [
            GoaReplica(index=0, role=PRIMARY,
                       goa=GlobalOverclockingAgent(
                           rack, config, soas, channel=channel)),
            GoaReplica(index=1, role=STANDBY,
                       goa=GlobalOverclockingAgent(
                           rack, config, soas, channel=channel),
                       lease_expires_at=config.goa_lease_s),
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def active_goa(self) -> GlobalOverclockingAgent:
        """The highest-epoch replica currently believing it is primary
        (falling back to replica 0 if, transiently, neither does)."""
        primaries = [r for r in self.replicas if r.role == PRIMARY]
        if not primaries:
            return self.replicas[0].goa
        return max(primaries, key=lambda r: (r.goa.epoch, -r.index)).goa

    @property
    def primary_indices(self) -> list[int]:
        return [r.index for r in self.replicas if r.role == PRIMARY]

    def _down(self, index: int, now: float) -> bool:
        if self.down_hook is None:
            return False
        return self.down_hook(index, now)

    def _stored_epoch(self) -> int:
        """Fencing floor from the durable gOA checkpoint.

        A corrupted checkpoint verifies as missing (epoch floor 0) —
        the heartbeat-observed epoch and the sOAs' installed epochs
        still fence, so corruption degrades takeover freshness only."""
        load = self.store.load_goa(self.rack.rack_id)
        if load.checkpoint is None:
            return 0
        return int(load.checkpoint.payload["epoch"])

    def _save_goa_checkpoint(self, replica: GoaReplica, now: float) -> None:
        goa = replica.goa
        self.store.save_goa(GoaCheckpoint(
            rack_id=self.rack.rack_id,
            taken_at=now,
            payload={
                "epoch": goa.epoch,
                "primary_index": replica.index,
                "budget_updates": goa.budget_updates,
            }))

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------

    def _promote(self, replica: GoaReplica, now: float) -> None:
        """Standby → primary: seed the epoch fence, rebuild, push."""
        replica.goa.epoch = max(replica.goa.epoch,
                                replica.last_seen_epoch,
                                self._stored_epoch())
        replica.role = PRIMARY
        replica.next_heartbeat_at = now
        self.counters.failovers += 1
        # Rebuild from the live sOAs: re-pull profiles and push a fresh
        # assignment at epoch+1.  Failed pulls just mean the sOAs keep
        # their last assignment until the next cycle — the non-HA
        # degradation mode, now bounded by the failover instead of
        # lasting as long as the outage.
        replica.goa.update(now)
        self._save_goa_checkpoint(replica, now)

    def _stepdown(self, replica: GoaReplica, now: float) -> None:
        """Deposed primary → standby with a fresh full lease."""
        replica.role = STANDBY
        replica.lease_expires_at = now + self.config.goa_lease_s
        self.counters.stepdowns += 1

    def _receive_heartbeat(self, receiver: GoaReplica, epoch: int,
                           at: float) -> None:
        if self._down(receiver.index, at):
            return  # a dead replica cannot take delivery
        self.counters.heartbeats_received += 1
        receiver.last_seen_epoch = max(receiver.last_seen_epoch, epoch)
        if receiver.role == STANDBY:
            receiver.lease_expires_at = at + self.config.goa_lease_s
            return
        # Two primaries hear each other: strictly higher epoch wins,
        # the other demotes.  A stale heartbeat (lower epoch, e.g. a
        # deposed primary's or one delayed in flight) is ignored.
        if epoch > receiver.goa.epoch:
            self._stepdown(receiver, at)

    # ------------------------------------------------------------------
    # Platform hooks
    # ------------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Per-platform-tick HA work: heartbeats and lease checks."""
        for replica in self.replicas:
            if self._down(replica.index, now):
                continue
            if replica.role == PRIMARY:
                if now >= replica.next_heartbeat_at:
                    self._send_heartbeat(replica, now)
                    replica.next_heartbeat_at = (
                        now + self.config.goa_heartbeat_interval_s)
            elif now >= replica.lease_expires_at:
                self._promote(replica, now)

    def _send_heartbeat(self, sender: GoaReplica, now: float) -> None:
        peer = self.replicas[1 - sender.index]
        self.counters.heartbeats_sent += 1
        self.channel.send(
            Envelope(GOA_HEARTBEAT, f"{self.rack.rack_id}/{sender.name}",
                     f"{self.rack.rack_id}/{peer.name}", now),
            lambda at, r=peer, e=sender.goa.epoch:
                self._receive_heartbeat(r, e, at))

    def update(self, now: float) -> Optional[BudgetAssignment]:
        """One budget cadence cycle, run by whoever believes primary.

        Each believer fence-checks the durable epoch before pushing: a
        deposed primary finds a higher stored epoch and steps down
        instead of pushing.  (Its already-in-flight pushes are fenced by
        the sOAs.)  Replica order is fixed, so runs are deterministic."""
        result: Optional[BudgetAssignment] = None
        live_primary = False
        for replica in self.replicas:
            if replica.role != PRIMARY:
                continue
            if self._down(replica.index, now):
                continue
            if self._stored_epoch() > replica.goa.epoch:
                self._stepdown(replica, now)
                continue
            live_primary = True
            assignment = replica.goa.update(now)
            self._save_goa_checkpoint(replica, now)
            if result is None or (assignment is not None
                                  and assignment.epoch > result.epoch):
                result = assignment
        if not live_primary:
            self.counters.cycles_missed += 1
        return result
