"""Trace-driven overclocking policies (paper §V-B, Table I).

These are the decision kernels the large-scale simulator
(:mod:`repro.experiments.largescale`) runs against production-style rack
traces at 5-minute granularity:

* **Central** — an oracle with a zero-latency global view of rack power;
  grants exactly as many overclocked cores as fit under the limit.  Its
  only error source is telemetry lag (decisions see the previous tick).
* **NaiveOClock** — grants everything; fair-share capping.
* **NoFeedback** — heterogeneous per-server budgets from weekly templates,
  strictly enforced, no exploration.
* **NoWarning** — NoFeedback + exploration beyond the budget, but only
  capping events rein it in.
* **SmartOClock** — full system: budgets, exploration, rack warnings with
  exponential back-off.

Each policy sees, per tick, last tick's observed baseline power and
utilization (telemetry lag), the servers' overclock demand in cores, and
its own persistent state; it returns granted cores per server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.core.budgets import compute_heterogeneous_budgets
from repro.core.types import ServerProfileReport
from repro.prediction.templates import TemplateKind, build_template

__all__ = [
    "TickContext",
    "TracePolicy",
    "CentralOracle",
    "NaiveOClock",
    "NoFeedback",
    "NoWarning",
    "SmartOClockPolicy",
    "make_policy",
    "POLICY_NAMES",
]


@dataclass(frozen=True)
class TickContext:
    """Everything a policy may look at when deciding one tick.

    ``observed_power`` / ``observed_util`` are from the *previous* tick
    (telemetry lag); ``oracle_power`` is the *current* tick's baseline
    power, which only the Central oracle may read; ``demand_cores`` is the
    current tick's overclock demand; ``delta_full_watts`` is the per-core
    overclock power delta at full utilization (scale by utilization for
    the expected draw).
    """

    index: int
    time: float
    limit_watts: float
    warning_watts: float
    observed_power: np.ndarray
    observed_util: np.ndarray
    oracle_power: np.ndarray
    oracle_util: np.ndarray
    demand_cores: np.ndarray
    delta_full_watts: float


class TracePolicy:
    """Base class; subclasses override :meth:`decide` and the hooks."""

    name = "base"
    capping_mode = "heterogeneous"  # or "fair"

    def __init__(self, n_servers: int) -> None:
        if n_servers < 1:
            raise ValueError(f"need at least one server: {n_servers}")
        self.n_servers = n_servers

    def begin_week(self, history_times: np.ndarray,
                   history_power: np.ndarray,
                   history_demand: np.ndarray,
                   limit_watts: float) -> None:
        """Install the prior week's telemetry (per-server rows)."""

    def decide(self, ctx: TickContext) -> np.ndarray:
        raise NotImplementedError

    def on_warning(self, ctx: TickContext) -> None:
        """Rack power crossed the warning threshold this tick."""

    def on_cap(self, ctx: TickContext) -> None:
        """Rack power exceeded the limit this tick."""

    def budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        """Per-server *assigned* budgets, if the policy maintains them
        (used for capping blame assignment); None → fair share."""
        return None

    def enforcement_budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        """Per-server budgets the local feedback loop enforces (assigned
        plus any exploration overlay).  None → no local enforcement: the
        policy's grants draw their full overclock power regardless of
        budget (Central trusts its oracle; NaiveOClock has no budgets)."""
        return None


class CentralOracle(TracePolicy):
    """Global view: pack overclocked cores under the rack limit.

    Reads the *current* tick's power (``oracle_power``): the paper's
    Central "can precisely decide if an overclocking request will result
    in capping".  Its residual capping events come only from ticks where
    the baseline alone exceeds the limit.
    """

    name = "Central"

    def decide(self, ctx: TickContext) -> np.ndarray:
        granted = np.zeros(self.n_servers, dtype=np.int64)
        expected_delta = ctx.delta_full_watts * np.maximum(
            ctx.oracle_util, 0.01)
        headroom = ctx.limit_watts - float(np.sum(ctx.oracle_power))
        if headroom <= 0:
            return granted
        demand = ctx.demand_cores.copy()
        # Round-robin core-by-core so no server starves.
        progress = True
        while progress and headroom > 0:
            progress = False
            for i in range(self.n_servers):
                if demand[i] > 0 and expected_delta[i] <= headroom:
                    granted[i] += 1
                    demand[i] -= 1
                    headroom -= expected_delta[i]
                    progress = True
        return granted


class NaiveOClock(TracePolicy):
    """Grant everything; even budget split during capping."""

    name = "NaiveOClock"
    capping_mode = "fair"

    def decide(self, ctx: TickContext) -> np.ndarray:
        return ctx.demand_cores.copy()


class NoFeedback(TracePolicy):
    """Heterogeneous per-server budgets, strictly enforced."""

    name = "NoFeedback"

    def __init__(self, n_servers: int,
                 template_kind: TemplateKind = TemplateKind.DAILY_MED,
                 slot_s: float = 300.0) -> None:
        super().__init__(n_servers)
        self.template_kind = template_kind
        self.slot_s = slot_s
        self._budgets: Optional[np.ndarray] = None   # (servers, slots)
        self._templates: list = []
        self._slots_per_week = int(round(7 * 86400.0 / slot_s))

    def begin_week(self, history_times: np.ndarray,
                   history_power: np.ndarray,
                   history_demand: np.ndarray,
                   limit_watts: float) -> None:
        self._templates = [
            build_template(self.template_kind, history_times,
                           history_power[i])
            for i in range(self.n_servers)
        ]
        # Build slot-resolution profile reports and compute budgets.
        week_start = (history_times[-1] // (7 * 86400.0) + 1) * 7 * 86400.0
        slot_times = week_start + self.slot_s * np.arange(
            self._slots_per_week)
        profiles: list[ServerProfileReport] = []
        for i in range(self.n_servers):
            regular = self._templates[i].predict_series(slot_times)
            # Demand template: per-slot-of-week max over history.
            slots = ((history_times % (7 * 86400.0))
                     // self.slot_s).astype(int) % self._slots_per_week
            demand = np.zeros(self._slots_per_week)
            np.maximum.at(demand, slots, history_demand[i])
            profiles.append(ServerProfileReport(
                server_id=f"s{i:03d}", slot_s=self.slot_s,
                regular_power_watts=regular,
                oc_requested_cores=demand,
                oc_granted_cores=demand))
        # The headroom split is proportional, so any positive per-core
        # delta yields the same budgets; 1.0 keeps the weights in "cores".
        assignment = compute_heterogeneous_budgets(
            limit_watts, profiles, oc_delta_watts_per_core=1.0)
        self._budgets = np.stack(
            [assignment.budgets[f"s{i:03d}"] for i in range(self.n_servers)])

    def _slot(self, t: float) -> int:
        return int((t % (7 * 86400.0)) // self.slot_s) % self._slots_per_week

    def _predicted_power(self, ctx: TickContext) -> np.ndarray:
        return np.array([tpl.predict(ctx.time) for tpl in self._templates])

    def _effective_budget(self, ctx: TickContext) -> np.ndarray:
        if self._budgets is None:
            raise RuntimeError("begin_week was not called")
        return self._budgets[:, self._slot(ctx.time)]

    def budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        if self._budgets is None:
            return None
        return self._budgets[:, self._slot(ctx.time)]

    def enforcement_budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        if self._budgets is None:
            return None
        return self._effective_budget(ctx)

    def decide(self, ctx: TickContext) -> np.ndarray:
        predicted = self._predicted_power(ctx)
        budget = self._effective_budget(ctx)
        expected_delta = ctx.delta_full_watts * np.maximum(
            ctx.observed_util, 0.05)
        slack = budget - predicted
        max_cores = np.floor(slack / expected_delta).astype(np.int64)
        return np.clip(max_cores, 0, ctx.demand_cores)


class NoWarning(NoFeedback):
    """Budgets + exploration; capping events are the only brake.

    A constrained server raises a local budget overlay (``extra``); the
    per-tick ramp is bounded by how many 30-second confirmation windows
    fit in one trace tick.  On a capping event every exploring server
    reverts to its assigned budget and backs off exponentially.
    """

    name = "NoWarning"

    def __init__(self, n_servers: int, *,
                 explore_step_watts: float = 20.0,
                 confirm_s: float = 30.0,
                 tick_s: float = 300.0,
                 backoff_ticks: int = 2,
                 template_kind: TemplateKind = TemplateKind.DAILY_MED,
                 slot_s: float = 300.0) -> None:
        super().__init__(n_servers, template_kind, slot_s)
        self.explore_step_watts = explore_step_watts
        self.backoff_ticks = backoff_ticks
        # Exploration steps that fit in one tick without hearing back.
        self.max_ramp_watts = explore_step_watts * max(
            1.0, tick_s / confirm_s)
        self.extra = np.zeros(n_servers)
        self._backoff_until = np.full(n_servers, -1)
        self._backoff_current = np.full(n_servers, backoff_ticks)

    def _effective_budget(self, ctx: TickContext) -> np.ndarray:
        return super()._effective_budget(ctx) + self.extra

    def _ramp(self, ctx: TickContext, granted: np.ndarray,
              allowed: np.ndarray) -> None:
        """Raise the overlay of constrained servers by up to the per-tick
        ramp, but no more than the unmet demand actually needs."""
        expected_delta = ctx.delta_full_watts * np.maximum(
            ctx.observed_util, 0.05)
        unmet = (ctx.demand_cores - granted).astype(float)
        need = unmet * expected_delta + self.explore_step_watts
        grow = allowed & (unmet > 0)
        self.extra[grow] += np.minimum(need[grow], self.max_ramp_watts)

    def decide(self, ctx: TickContext) -> np.ndarray:
        granted = super().decide(ctx)
        allowed = ctx.index >= self._backoff_until
        self._ramp(ctx, granted, allowed)
        # A cap-free exploration that met its demand resets the back-off.
        satisfied = (ctx.demand_cores > 0) & (granted >= ctx.demand_cores)
        self._backoff_current[satisfied] = self.backoff_ticks
        return granted

    def _backoff(self, ctx: TickContext, mask: np.ndarray) -> None:
        self._backoff_until[mask] = (ctx.index
                                     + self._backoff_current[mask])
        self._backoff_current[mask] = np.minimum(
            self._backoff_current[mask] * 2, 288)

    def on_cap(self, ctx: TickContext) -> None:
        exploring = self.extra > 0
        self.extra[:] = 0.0
        self._backoff(ctx, exploring)

    def begin_week(self, history_times: np.ndarray,
                   history_power: np.ndarray,
                   history_demand: np.ndarray,
                   limit_watts: float) -> None:
        super().begin_week(history_times, history_power, history_demand,
                           limit_watts)
        self._backoff_current[:] = self.backoff_ticks


class SmartOClockPolicy(NoWarning):
    """Full system: exploration heeds rack warnings, then *exploits*.

    On a warning, exploring servers give back one step and enter an
    exploitation phase: they keep granting against the discovered budget,
    ignore further warnings (per the paper, warnings only matter while
    exploring), and do not push higher until the exploitation window
    expires and their back-off allows a new exploration.
    """

    def __init__(self, n_servers: int, *, exploit_ticks: int = 2,
                 **kwargs: Any) -> None:
        super().__init__(n_servers, **kwargs)
        self.exploit_ticks = exploit_ticks
        self._exploit_until = np.full(n_servers, -1)

    name = "SmartOClock"

    def decide(self, ctx: TickContext) -> np.ndarray:
        granted = NoFeedback.decide(self, ctx)
        exploiting = ctx.index < self._exploit_until
        allowed = (ctx.index >= self._backoff_until) & ~exploiting
        # A 5-minute trace tick contains ten 30-second confirmation
        # windows: within a tick, warnings stop the ramp as soon as the
        # rack approaches the warning threshold.  Emulate that sub-tick
        # sequencing by bounding the rack-wide ramp to the distance
        # between the last broadcast rack power and the threshold.
        rack_room = ctx.warning_watts - float(
            np.sum(ctx.observed_power) + np.sum(self.extra))
        if rack_room <= 0:
            self.on_warning(ctx)
            return granted
        before = self.extra.copy()
        self._ramp(ctx, granted, allowed)
        added = self.extra - before
        total_added = float(np.sum(added))
        if total_added > rack_room:
            self.extra = before + added * (rack_room / total_added)
        # A warning-free exploration that met its demand resets the
        # back-off (the paper resets it after a successful exploration).
        satisfied = (ctx.demand_cores > 0) & (granted >= ctx.demand_cores)
        self._backoff_current[satisfied] = self.backoff_ticks
        return granted

    def on_warning(self, ctx: TickContext) -> None:
        exploiting = ctx.index < self._exploit_until
        exploring = (self.extra > 0) & ~exploiting
        if not np.any(exploring):
            return
        self.extra[exploring] = np.maximum(
            0.0, self.extra[exploring] - self.explore_step_watts)
        self._exploit_until[exploring] = ctx.index + self.exploit_ticks
        self._backoff(ctx, exploring)

    def on_cap(self, ctx: TickContext) -> None:
        super().on_cap(ctx)
        self._exploit_until[:] = -1


POLICY_NAMES = ("Central", "NaiveOClock", "NoFeedback", "NoWarning",
                "SmartOClock")


def make_policy(name: str, n_servers: int) -> TracePolicy:
    """Factory by Table-I policy name."""
    factories = {
        "Central": CentralOracle,
        "NaiveOClock": NaiveOClock,
        "NoFeedback": NoFeedback,
        "NoWarning": NoWarning,
        "SmartOClock": SmartOClockPolicy,
    }
    if name not in factories:
        raise KeyError(
            f"unknown policy {name!r}; choose from {sorted(factories)}")
    return factories[name](n_servers)
