"""Trace-driven overclocking policies (paper §V-B, Table I).

These are the decision kernels the large-scale simulator
(:mod:`repro.experiments.largescale`) runs against production-style rack
traces at 5-minute granularity:

* **Central** — an oracle with a zero-latency global view of rack power;
  grants exactly as many overclocked cores as fit under the limit.  Its
  only error source is telemetry lag (decisions see the previous tick).
* **NaiveOClock** — grants everything; fair-share capping.
* **NoFeedback** — heterogeneous per-server budgets from weekly templates,
  strictly enforced, no exploration.
* **NoWarning** — NoFeedback + exploration beyond the budget, but only
  capping events rein it in.
* **SmartOClock** — full system: budgets, exploration, rack warnings with
  exponential back-off.

Each policy sees, per tick, last tick's observed baseline power and
utilization (telemetry lag), the servers' overclock demand in cores, and
its own persistent state; it returns granted cores per server.

Fast-path contract (DESIGN.md "Performance architecture"): policies
additionally declare whether ``decide`` is *tick-stateless*
(``tick_stateless``) and may implement ``begin_week_fast`` /
``plan_segment`` so the vectorized simulator can pre-compute whole runs
of decisions.  Planned grants must be bitwise identical to what the
scalar ``decide`` loop would produce — the equivalence property tests
enforce this across all five policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Optional

import numpy as np

from repro.core.budgets import compute_heterogeneous_budgets
from repro.core.oversubscription import (
    RISK_LEVELS,
    OversubscriptionController,
    OversubscriptionDecision,
)
from repro.core.types import ServerProfileReport
from repro.prediction.quantiles import DailyQuantileTemplate
from repro.prediction.templates import (TemplateKind, build_template,
                                        predict_series_batch)

__all__ = [
    "TickContext",
    "RackWeekView",
    "SegmentPlan",
    "TracePolicy",
    "CentralOracle",
    "NaiveOClock",
    "NoFeedback",
    "NoWarning",
    "SmartOClockPolicy",
    "SmartOClockOSub",
    "make_policy",
    "POLICY_NAMES",
]


@dataclass(frozen=True)
class TickContext:
    """Everything a policy may look at when deciding one tick.

    ``observed_power`` / ``observed_util`` are from the *previous* tick
    (telemetry lag); ``oracle_power`` is the *current* tick's baseline
    power, which only the Central oracle may read; ``demand_cores`` is the
    current tick's overclock demand; ``delta_full_watts`` is the per-core
    overclock power delta at full utilization (scale by utilization for
    the expected draw).
    """

    index: int
    time: float
    limit_watts: float
    warning_watts: float
    observed_power: np.ndarray
    observed_util: np.ndarray
    oracle_power: np.ndarray
    oracle_util: np.ndarray
    demand_cores: np.ndarray
    delta_full_watts: float


@dataclass(frozen=True)
class RackWeekView:
    """One evaluation week of a rack trace in tick-major layout.

    The vectorized fast path of
    :func:`repro.experiments.largescale.simulate_rack` hands this to
    :meth:`TracePolicy.begin_week_fast` and
    :meth:`TracePolicy.plan_segment`.  Rows are ticks, columns servers
    (C-contiguous), so ``observed_power[k]`` carries bitwise the same
    values as the :class:`TickContext` for that tick would.  ``indices``
    are the absolute trace tick indices (``TickContext.index``) of the
    rows; ``*_power_sums`` are the per-row rack totals (bit-equal to
    ``np.sum`` over the corresponding context array).
    """

    indices: np.ndarray              # (ticks,) int64 absolute tick indices
    times: np.ndarray                # (ticks,) seconds
    observed_power: np.ndarray       # (ticks, servers) previous-tick rows
    observed_util: np.ndarray        # (ticks, servers)
    oracle_power: np.ndarray         # (ticks, servers) current-tick rows
    oracle_util: np.ndarray          # (ticks, servers)
    demand: np.ndarray               # (ticks, servers) int64
    observed_power_sums: np.ndarray  # (ticks,)
    oracle_power_sums: np.ndarray    # (ticks,)
    limit_watts: float
    warning_watts: float
    delta_full_watts: float

    @property
    def n_ticks(self) -> int:
        return len(self.indices)


@dataclass
class SegmentPlan:
    """Pre-computed decisions for ticks ``[start, stop)`` of a week view.

    Row ``k`` of ``granted`` must be bitwise what ``decide`` would return
    at tick ``start + k`` given the policy state at planning time, and
    ``enforcement`` row ``k`` what ``enforcement_budget_at`` would return
    (None → no local enforcement).  ``commit(n)`` replays the state
    mutations of the first ``n`` planned ticks once the engine has
    actually consumed them; the engine calls it with a non-decreasing
    prefix length, so it must be idempotent under re-application.
    Policies only plan ticks whose decisions cannot diverge from the
    scalar path; the engine independently re-routes every tick that
    crosses the warning threshold through the scalar fallback unless the
    policy is warning-inert — globally (``TracePolicy.warning_inert``)
    or for this plan's span (``warning_inert`` below: the policy asserts
    its ``on_warning`` hook would be a no-op at every planned tick).
    """

    start: int
    stop: int
    granted: np.ndarray                       # (stop - start, servers)
    enforcement: Optional[np.ndarray] = None  # (stop - start, servers)
    commit: Optional[Callable[[int], None]] = None
    warning_inert: bool = False
    #: Per-tick oversubscribed headroom (watts) active over the planned
    #: span; row ``k`` must equal ``osub_admitted_at`` at tick
    #: ``start + k``.  None → the policy admits nothing (all baselines).
    osub_admitted: Optional[np.ndarray] = None


class TracePolicy:
    """Base class; subclasses override :meth:`decide` and the hooks."""

    name = "base"
    capping_mode = "heterogeneous"  # or "fair"

    #: Declares that ``decide`` reads only the :class:`TickContext` plus
    #: per-week state installed by ``begin_week``, mutates nothing
    #: between ticks, and leaves the ``on_warning``/``on_cap`` hooks as
    #: the base no-ops.  The fast path may then serve a whole week from
    #: one plan.  Stateful policies keep the default ``False`` and plan
    #: bounded segments that stop before any possibly-diverging tick.
    tick_stateless: ClassVar[bool] = False

    #: Declares that ``on_warning`` is the base no-op, so a
    #: warning-threshold crossing changes nothing but the warning
    #: counter: the fast path may then keep warning ticks inside a
    #: vectorized segment (counting them in bulk) and only fall back to
    #: the scalar tick for capping events.  Any subclass overriding
    #: ``on_warning`` MUST set this back to False.
    warning_inert: ClassVar[bool] = True

    def __init__(self, n_servers: int) -> None:
        if n_servers < 1:
            raise ValueError(f"need at least one server: {n_servers}")
        self.n_servers = n_servers

    def begin_week(self, history_times: np.ndarray,
                   history_power: np.ndarray,
                   history_demand: np.ndarray,
                   limit_watts: float) -> None:
        """Install the prior week's telemetry (per-server rows)."""

    def begin_week_fast(self, view: RackWeekView) -> bool:
        """Prepare per-week pre-computation for the vectorized fast path.

        Called right after :meth:`begin_week` with the evaluation week's
        tick-major telemetry.  Returning False opts out: the engine then
        runs every tick of the week through the scalar fallback (always
        correct, just slower), so policies without a fast path keep
        working unchanged.
        """
        return False

    def plan_segment(self, view: RackWeekView, start: int,
                     end: int) -> Optional[SegmentPlan]:
        """Plan decisions for a prefix of ticks ``[start, end)``.

        Only called after :meth:`begin_week_fast` returned True.  None
        (or an empty plan) sends tick ``start`` to the scalar fallback.
        """
        return None

    def fast_decide(self, view: RackWeekView, rel: int,
                    ctx: TickContext) -> np.ndarray:
        """Single-tick decision inside the fast path's scalar fallback.

        Must equal ``decide(ctx)`` bitwise, including state mutations;
        subclasses override it to reuse ``begin_week_fast``
        pre-computation instead of re-deriving predictions per tick.
        """
        return self.decide(ctx)

    def decide(self, ctx: TickContext) -> np.ndarray:
        raise NotImplementedError

    def on_warning(self, ctx: TickContext) -> None:
        """Rack power crossed the warning threshold this tick."""

    def on_cap(self, ctx: TickContext) -> None:
        """Rack power exceeded the limit this tick."""

    def budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        """Per-server *assigned* budgets, if the policy maintains them
        (used for capping blame assignment); None → fair share."""
        return None

    def enforcement_budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        """Per-server budgets the local feedback loop enforces (assigned
        plus any exploration overlay).  None → no local enforcement: the
        policy's grants draw their full overclock power regardless of
        budget (Central trusts its oracle; NaiveOClock has no budgets)."""
        return None

    def osub_admitted_at(self, ctx: TickContext) -> float:
        """Oversubscribed planning headroom (watts) active this tick.

        Zero for every policy that plans against the physical limit; the
        engine uses it to attribute capping events to oversubscription
        and to account admitted watt-ticks."""
        return 0.0


class CentralOracle(TracePolicy):
    """Global view: pack overclocked cores under the rack limit.

    Reads the *current* tick's power (``oracle_power``): the paper's
    Central "can precisely decide if an overclocking request will result
    in capping".  Its residual capping events come only from ticks where
    the baseline alone exceeds the limit.
    """

    name = "Central"
    tick_stateless = True

    #: Fraction of the headroom the whole demanded delta must fit under
    #: for the planner to predict a grant-everything outcome.  The 0.1 %
    #: slack provably absorbs the rounding drift of the scalar loop's
    #: sequential headroom subtraction (error ~n·ε·headroom ≪ margin),
    #: so planned ticks cannot diverge from ``decide``.
    _FIT_MARGIN: ClassVar[float] = 0.999

    _fast_zero: np.ndarray
    _fast_covered: np.ndarray

    def begin_week_fast(self, view: RackWeekView) -> bool:
        expected = view.delta_full_watts * np.maximum(view.oracle_util, 0.01)
        headroom = view.limit_watts - view.oracle_power_sums
        demand_delta = np.sum(view.demand * expected, axis=1)
        zero = headroom <= 0.0
        # Round-robin grants everything iff the total demanded delta fits
        # the headroom: before any single grant the remaining headroom is
        # at least (1 - _FIT_MARGIN)·headroom plus that grant's own delta.
        grant_all = ~zero & (demand_delta <= self._FIT_MARGIN * headroom)
        self._fast_zero = zero
        self._fast_covered = zero | grant_all
        return True

    def plan_segment(self, view: RackWeekView, start: int,
                     end: int) -> Optional[SegmentPlan]:
        covered = self._fast_covered[start:end]
        miss = np.flatnonzero(~covered)
        stop = start + (int(miss[0]) if len(miss) else len(covered))
        if stop == start:
            return None  # tick needs the real round-robin packing
        granted = np.where(self._fast_zero[start:stop, None],
                           np.int64(0), view.demand[start:stop])
        return SegmentPlan(start, stop, granted)

    def decide(self, ctx: TickContext) -> np.ndarray:
        granted = np.zeros(self.n_servers, dtype=np.int64)
        expected_delta = ctx.delta_full_watts * np.maximum(
            ctx.oracle_util, 0.01)
        headroom = ctx.limit_watts - float(np.sum(ctx.oracle_power))
        if headroom <= 0:
            return granted
        demand = ctx.demand_cores.copy()
        # Round-robin core-by-core so no server starves.
        progress = True
        while progress and headroom > 0:
            progress = False
            for i in range(self.n_servers):
                if demand[i] > 0 and expected_delta[i] <= headroom:
                    granted[i] += 1
                    demand[i] -= 1
                    headroom -= expected_delta[i]
                    progress = True
        return granted


class NaiveOClock(TracePolicy):
    """Grant everything; even budget split during capping."""

    name = "NaiveOClock"
    capping_mode = "fair"
    tick_stateless = True

    def decide(self, ctx: TickContext) -> np.ndarray:
        return ctx.demand_cores.copy()

    def begin_week_fast(self, view: RackWeekView) -> bool:
        return True

    def plan_segment(self, view: RackWeekView, start: int,
                     end: int) -> Optional[SegmentPlan]:
        return SegmentPlan(start, end, view.demand[start:end])


@dataclass
class _BudgetPlanState:
    """Per-evaluation-week pre-computation of the budget-driven policies:
    tick-major template predictions, assigned slot budgets and expected
    per-core deltas, each row bit-equal to its per-tick counterpart."""

    predicted: np.ndarray  # (ticks, servers)
    budget: np.ndarray     # (ticks, servers)
    expected: np.ndarray   # (ticks, servers)


class NoFeedback(TracePolicy):
    """Heterogeneous per-server budgets, strictly enforced."""

    name = "NoFeedback"
    tick_stateless = True

    def __init__(self, n_servers: int,
                 template_kind: TemplateKind = TemplateKind.DAILY_MED,
                 slot_s: float = 300.0) -> None:
        super().__init__(n_servers)
        self.template_kind = template_kind
        self.slot_s = slot_s
        self._budgets: Optional[np.ndarray] = None   # (servers, slots)
        self._templates: list = []
        self._slots_per_week = int(round(7 * 86400.0 / slot_s))
        self._fast: Optional[_BudgetPlanState] = None

    def begin_week(self, history_times: np.ndarray,
                   history_power: np.ndarray,
                   history_demand: np.ndarray,
                   limit_watts: float) -> None:
        self._templates = [
            build_template(self.template_kind, history_times,
                           history_power[i])
            for i in range(self.n_servers)
        ]
        # Build slot-resolution profile reports and compute budgets.
        week_start = (history_times[-1] // (7 * 86400.0) + 1) * 7 * 86400.0
        slot_times = week_start + self.slot_s * np.arange(
            self._slots_per_week)
        regular_all = predict_series_batch(self._templates, slot_times)
        # Demand template: per-slot-of-week max over history, scattered
        # for every server in one call.
        slots = ((history_times % (7 * 86400.0))
                 // self.slot_s).astype(int) % self._slots_per_week
        demand_all = np.zeros((self.n_servers, self._slots_per_week))
        np.maximum.at(
            demand_all,
            (np.arange(self.n_servers)[:, None], slots[None, :]),
            history_demand)
        profiles: list[ServerProfileReport] = []
        for i in range(self.n_servers):
            profiles.append(ServerProfileReport(
                server_id=f"s{i:03d}", slot_s=self.slot_s,
                regular_power_watts=regular_all[:, i],
                oc_requested_cores=demand_all[i],
                oc_granted_cores=demand_all[i]))
        # The headroom split is proportional, so any positive per-core
        # delta yields the same budgets; 1.0 keeps the weights in "cores".
        planning_limit = self._planning_limit(
            limit_watts, slot_times, regular_all, history_times,
            history_power)
        assignment = compute_heterogeneous_budgets(
            planning_limit, profiles, oc_delta_watts_per_core=1.0)
        self._budgets = np.stack(
            [assignment.budgets[f"s{i:03d}"] for i in range(self.n_servers)])

    def _planning_limit(self, limit_watts: float, slot_times: np.ndarray,
                        regular_all: np.ndarray,
                        history_times: np.ndarray,
                        history_power: np.ndarray) -> "float | np.ndarray":
        """The limit the weekly budget split runs against.  The base
        policies plan against the physical rack limit; the
        oversubscribing variant returns a per-slot planning limit."""
        return limit_watts

    def _slot(self, t: float) -> int:
        return int((t % (7 * 86400.0)) // self.slot_s) % self._slots_per_week

    def _predicted_power(self, ctx: TickContext) -> np.ndarray:
        return np.array([tpl.predict(ctx.time) for tpl in self._templates])

    def _effective_budget(self, ctx: TickContext) -> np.ndarray:
        if self._budgets is None:
            raise RuntimeError("begin_week was not called")
        return self._budgets[:, self._slot(ctx.time)]

    def budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        if self._budgets is None:
            return None
        return self._budgets[:, self._slot(ctx.time)]

    def enforcement_budget_at(self, ctx: TickContext) -> Optional[np.ndarray]:
        if self._budgets is None:
            return None
        return self._effective_budget(ctx)

    def decide(self, ctx: TickContext) -> np.ndarray:
        return self._decide_with(ctx, self._predicted_power(ctx),
                                 self._effective_budget(ctx))

    def _decide_with(self, ctx: TickContext, predicted: np.ndarray,
                     budget: np.ndarray) -> np.ndarray:
        """The budget→grant kernel, with prediction and budget supplied
        by the caller (per-tick lookups or fast-path pre-computation)."""
        expected_delta = ctx.delta_full_watts * np.maximum(
            ctx.observed_util, 0.05)
        slack = budget - predicted
        max_cores = np.floor(slack / expected_delta).astype(np.int64)
        return np.clip(max_cores, 0, ctx.demand_cores)

    def begin_week_fast(self, view: RackWeekView) -> bool:
        if self._budgets is None:
            return False
        predicted = np.ascontiguousarray(
            predict_series_batch(self._templates, view.times))
        slots = ((view.times % (7 * 86400.0))
                 // self.slot_s).astype(np.int64) % self._slots_per_week
        budget = np.ascontiguousarray(self._budgets[:, slots].T)
        expected = view.delta_full_watts * np.maximum(
            view.observed_util, 0.05)
        self._fast = _BudgetPlanState(predicted, budget, expected)
        return True

    def plan_segment(self, view: RackWeekView, start: int,
                     end: int) -> Optional[SegmentPlan]:
        pre = self._fast
        if pre is None:
            return None
        sl = slice(start, end)
        slack = pre.budget[sl] - pre.predicted[sl]
        max_cores = np.floor(slack / pre.expected[sl]).astype(np.int64)
        granted = np.clip(max_cores, 0, view.demand[sl])
        return SegmentPlan(start, end, granted, enforcement=pre.budget[sl])

    def fast_decide(self, view: RackWeekView, rel: int,
                    ctx: TickContext) -> np.ndarray:
        pre = self._fast
        if pre is None:
            return self.decide(ctx)
        return self._decide_with(ctx, pre.predicted[rel], pre.budget[rel])


class NoWarning(NoFeedback):
    """Budgets + exploration; capping events are the only brake.

    A constrained server raises a local budget overlay (``extra``); the
    per-tick ramp is bounded by how many 30-second confirmation windows
    fit in one trace tick.  On a capping event every exploring server
    reverts to its assigned budget and backs off exponentially.
    """

    name = "NoWarning"
    tick_stateless = False  # ``extra``/back-off state carries across ticks

    def __init__(self, n_servers: int, *,
                 explore_step_watts: float = 20.0,
                 confirm_s: float = 30.0,
                 tick_s: float = 300.0,
                 backoff_ticks: int = 2,
                 template_kind: TemplateKind = TemplateKind.DAILY_MED,
                 slot_s: float = 300.0) -> None:
        super().__init__(n_servers, template_kind, slot_s)
        self.explore_step_watts = explore_step_watts
        self.backoff_ticks = backoff_ticks
        # Exploration steps that fit in one tick without hearing back.
        self.max_ramp_watts = explore_step_watts * max(
            1.0, tick_s / confirm_s)
        self.extra = np.zeros(n_servers)
        self._backoff_until = np.full(n_servers, -1)
        self._backoff_current = np.full(n_servers, backoff_ticks)

    def _effective_budget(self, ctx: TickContext) -> np.ndarray:
        return super()._effective_budget(ctx) + self.extra

    def _ramp(self, ctx: TickContext, granted: np.ndarray,
              allowed: np.ndarray) -> None:
        """Raise the overlay of constrained servers by up to the per-tick
        ramp, but no more than the unmet demand actually needs."""
        expected_delta = ctx.delta_full_watts * np.maximum(
            ctx.observed_util, 0.05)
        unmet = (ctx.demand_cores - granted).astype(float)
        need = unmet * expected_delta + self.explore_step_watts
        grow = allowed & (unmet > 0)
        self.extra[grow] += np.minimum(need[grow], self.max_ramp_watts)

    def decide(self, ctx: TickContext) -> np.ndarray:
        granted = super().decide(ctx)
        return self._after_decide(ctx, granted)

    def _after_decide(self, ctx: TickContext,
                      granted: np.ndarray) -> np.ndarray:
        """Exploration state updates run after the budget→grant kernel
        (shared by the per-tick and fast-fallback decision paths)."""
        allowed = ctx.index >= self._backoff_until
        self._ramp(ctx, granted, allowed)
        # A cap-free exploration that met its demand resets the back-off.
        satisfied = (ctx.demand_cores > 0) & (granted >= ctx.demand_cores)
        self._backoff_current[satisfied] = self.backoff_ticks
        return granted

    def fast_decide(self, view: RackWeekView, rel: int,
                    ctx: TickContext) -> np.ndarray:
        pre = self._fast
        if pre is None:
            return self.decide(ctx)
        granted = self._decide_with(ctx, pre.predicted[rel],
                                    pre.budget[rel] + self.extra)
        return self._after_decide(ctx, granted)

    #: During active exploration the inert prefix is typically a handful
    #: of ticks; probe that much first and escalate to the caller's full
    #: window only when the whole probe is inert (the prefix is a prefix
    #: property, so the escalated result is identical to planning the
    #: full window directly).
    _PROBE_TICKS: ClassVar[int] = 16

    def plan_segment(self, view: RackWeekView, start: int,
                     end: int) -> Optional[SegmentPlan]:
        pre = self._fast
        if pre is None:
            return None
        for window in (1, self._PROBE_TICKS, end - start):
            probe_end = min(end, start + window)
            sl = slice(start, probe_end)
            budget = pre.budget[sl] + self.extra
            slack = budget - pre.predicted[sl]
            max_cores = np.floor(slack / pre.expected[sl]).astype(np.int64)
            demand = view.demand[sl]
            granted = np.clip(max_cores, 0, demand)
            stop_rel = self._inert_prefix(view, sl, granted, demand)
            if stop_rel == 0:
                return None
            if stop_rel < probe_end - start or probe_end == end:
                break
        satisfied_rows = ((demand[:stop_rel] > 0)
                          & (granted[:stop_rel] >= demand[:stop_rel]))

        def commit(n: int) -> None:
            # Replay the only state write of the planned ticks: the
            # back-off reset of servers whose demand was fully met.  The
            # write is a constant, so re-applying a grown prefix is safe.
            hit = np.any(satisfied_rows[:n], axis=0)
            self._backoff_current[hit] = self.backoff_ticks

        return SegmentPlan(start, start + stop_rel, granted[:stop_rel],
                           enforcement=budget[:stop_rel], commit=commit)

    def _inert_prefix(self, view: RackWeekView, sl: slice,
                      granted: np.ndarray, demand: np.ndarray) -> int:
        """Leading planned ticks where ``decide`` would not ramp
        ``extra`` — i.e. no server is simultaneously unmet and allowed
        to explore — so its only mutation is the back-off reset that
        ``commit`` replays."""
        unmet = demand - granted > 0
        allowed = view.indices[sl, None] >= self._backoff_until[None, :]
        diverge = np.any(allowed & unmet, axis=1)
        hits = np.flatnonzero(diverge)
        return int(hits[0]) if len(hits) else len(diverge)

    def _backoff(self, ctx: TickContext, mask: np.ndarray) -> None:
        self._backoff_until[mask] = (ctx.index
                                     + self._backoff_current[mask])
        self._backoff_current[mask] = np.minimum(
            self._backoff_current[mask] * 2, 288)

    def on_cap(self, ctx: TickContext) -> None:
        exploring = self.extra > 0
        self.extra[:] = 0.0
        self._backoff(ctx, exploring)

    def begin_week(self, history_times: np.ndarray,
                   history_power: np.ndarray,
                   history_demand: np.ndarray,
                   limit_watts: float) -> None:
        super().begin_week(history_times, history_power, history_demand,
                           limit_watts)
        self._backoff_current[:] = self.backoff_ticks


class SmartOClockPolicy(NoWarning):
    """Full system: exploration heeds rack warnings, then *exploits*.

    On a warning, exploring servers give back one step and enter an
    exploitation phase: they keep granting against the discovered budget,
    ignore further warnings (per the paper, warnings only matter while
    exploring), and do not push higher until the exploitation window
    expires and their back-off allows a new exploration.
    """

    def __init__(self, n_servers: int, *, exploit_ticks: int = 2,
                 **kwargs: Any) -> None:
        super().__init__(n_servers, **kwargs)
        self.exploit_ticks = exploit_ticks
        self._exploit_until = np.full(n_servers, -1)

    name = "SmartOClock"
    warning_inert = False  # on_warning shifts explore → exploit state

    def _after_decide(self, ctx: TickContext,
                      granted: np.ndarray) -> np.ndarray:
        exploiting = ctx.index < self._exploit_until
        allowed = (ctx.index >= self._backoff_until) & ~exploiting
        # A 5-minute trace tick contains ten 30-second confirmation
        # windows: within a tick, warnings stop the ramp as soon as the
        # rack approaches the warning threshold.  Emulate that sub-tick
        # sequencing by bounding the rack-wide ramp to the distance
        # between the last broadcast rack power and the threshold.
        rack_room = ctx.warning_watts - float(
            np.sum(ctx.observed_power) + np.sum(self.extra))
        if rack_room <= 0:
            self.on_warning(ctx)
            return granted
        before = self.extra.copy()
        self._ramp(ctx, granted, allowed)
        added = self.extra - before
        total_added = float(np.sum(added))
        if total_added > rack_room:
            self.extra = before + added * (rack_room / total_added)
        # A warning-free exploration that met its demand resets the
        # back-off (the paper resets it after a successful exploration).
        satisfied = (ctx.demand_cores > 0) & (granted >= ctx.demand_cores)
        self._backoff_current[satisfied] = self.backoff_ticks
        return granted

    def plan_segment(self, view: RackWeekView, start: int,
                     end: int) -> Optional[SegmentPlan]:
        plan = super().plan_segment(view, start, end)
        if plan is None:
            return None
        # on_warning only acts on *exploring* servers (extra > 0 and not
        # exploiting).  While none exists the hook is a no-op, so
        # warning ticks may stay vectorized.  With extra fixed over the
        # planned span (inertness) and tick indices consecutive, that
        # holds exactly until the earliest exploitation window among
        # extra-carrying servers expires — a prefix property.
        carrying = self.extra > 0
        if not np.any(carrying):
            plan.warning_inert = True
            return plan
        horizon = int(np.min(self._exploit_until[carrying]))
        h_rel = horizon - int(view.indices[start])
        if h_rel <= 0:
            return plan  # a warning could act from the first tick on
        if start + h_rel >= plan.stop:
            plan.warning_inert = True
            return plan
        # Trim to the warning-inert prefix; the remainder is re-planned
        # (commit is prefix-idempotent, so reusing it on a shorter span
        # is safe).
        return SegmentPlan(start, start + h_rel, plan.granted[:h_rel],
                           enforcement=(None if plan.enforcement is None
                                        else plan.enforcement[:h_rel]),
                           commit=plan.commit, warning_inert=True)

    def _inert_prefix(self, view: RackWeekView, sl: slice,
                      granted: np.ndarray, demand: np.ndarray) -> int:
        """SmartOClock additionally stops a plan before any tick whose
        broadcast rack power leaves no room under the warning threshold
        (``decide`` would call ``on_warning`` there)."""
        idx = view.indices[sl, None]
        exploiting = idx < self._exploit_until[None, :]
        allowed = (idx >= self._backoff_until[None, :]) & ~exploiting
        unmet = demand - granted > 0
        rack_room = view.warning_watts - (
            view.observed_power_sums[sl] + np.sum(self.extra))
        diverge = np.any(allowed & unmet, axis=1) | (rack_room <= 0)
        hits = np.flatnonzero(diverge)
        return int(hits[0]) if len(hits) else len(diverge)

    def on_warning(self, ctx: TickContext) -> None:
        exploiting = ctx.index < self._exploit_until
        exploring = (self.extra > 0) & ~exploiting
        if not np.any(exploring):
            return
        self.extra[exploring] = np.maximum(
            0.0, self.extra[exploring] - self.explore_step_watts)
        self._exploit_until[exploring] = ctx.index + self.exploit_ticks
        self._backoff(ctx, exploring)

    def on_cap(self, ctx: TickContext) -> None:
        super().on_cap(ctx)
        self._exploit_until[:] = -1


class SmartOClockOSub(SmartOClockPolicy):
    """SmartOClock planning against an oversubscribed rack limit.

    The weekly budget split runs against a per-slot *planning* limit:
    per-server high-quantile power templates (the risk level's quantile
    of each server's history, floored at the median prediction) sum to
    an upper bound on predicted rack peak, and the admission controller
    turns the gap to the physical limit — less a confidence margin —
    into extra per-slot headroom.  Enforcement, warnings, and capping
    all still run against the *physical* limit, so a misprediction
    surfaces as (attributed) capping events, never as an uncapped
    excursion.
    """

    name = "SmartOClock+OSub"

    def __init__(self, n_servers: int, *,
                 risk_level: str = "conservative",
                 max_extra_fraction: "float | None" = None,
                 **kwargs: Any) -> None:
        super().__init__(n_servers, **kwargs)
        self.risk_level = risk_level
        self._osub = OversubscriptionController(
            risk_level, max_extra_fraction=max_extra_fraction)
        self.last_osub_decision: Optional[OversubscriptionDecision] = None
        self._admitted: Optional[np.ndarray] = None       # (slots,)
        self._admitted_ticks: Optional[np.ndarray] = None  # (week ticks,)

    def _planning_limit(self, limit_watts: float, slot_times: np.ndarray,
                        regular_all: np.ndarray,
                        history_times: np.ndarray,
                        history_power: np.ndarray) -> "float | np.ndarray":
        quantile = RISK_LEVELS[self.risk_level].quantile
        hi_all = np.empty_like(regular_all)
        for i in range(self.n_servers):
            regular = regular_all[:, i]
            try:
                template = DailyQuantileTemplate(
                    history_times, history_power[i], q=quantile)
            except ValueError:
                hi_all[:, i] = regular
                continue
            # Floor at the median prediction so per-server hi >= mid and
            # the rack-level margin can never go negative.
            hi_all[:, i] = np.maximum(
                template.predict_series(slot_times), regular)
        decision = self._osub.admit(limit_watts,
                                    np.sum(hi_all, axis=1),
                                    np.sum(regular_all, axis=1))
        self.last_osub_decision = decision
        self._admitted = decision.admitted_extra_watts
        return decision.planning_limit_watts

    def osub_admitted_at(self, ctx: TickContext) -> float:
        if self._admitted is None:
            return 0.0
        return float(self._admitted[self._slot(ctx.time)])

    def begin_week_fast(self, view: RackWeekView) -> bool:
        if not super().begin_week_fast(view):
            return False
        if self._admitted is None:
            self._admitted_ticks = None
        else:
            slots = ((view.times % (7 * 86400.0))
                     // self.slot_s).astype(np.int64) % self._slots_per_week
            self._admitted_ticks = self._admitted[slots]
        return True

    def plan_segment(self, view: RackWeekView, start: int,
                     end: int) -> Optional[SegmentPlan]:
        plan = super().plan_segment(view, start, end)
        if plan is None or self._admitted_ticks is None:
            return plan
        # Attach after super(): SmartOClockPolicy may have rebuilt the
        # plan trimmed to its warning-inert prefix.
        plan.osub_admitted = self._admitted_ticks[plan.start:plan.stop]
        return plan


POLICY_NAMES = ("Central", "NaiveOClock", "NoFeedback", "NoWarning",
                "SmartOClock", "SmartOClock+OSub")


def make_policy(name: str, n_servers: int) -> TracePolicy:
    """Factory by Table-I policy name.

    ``SmartOClock+OSub`` additionally accepts a risk-level suffix —
    ``"SmartOClock+OSub:aggressive"`` — which also becomes the
    instance's reported name, so ablation sweeps get distinct rows."""
    factories = {
        "Central": CentralOracle,
        "NaiveOClock": NaiveOClock,
        "NoFeedback": NoFeedback,
        "NoWarning": NoWarning,
        "SmartOClock": SmartOClockPolicy,
        "SmartOClock+OSub": SmartOClockOSub,
    }
    base, _, variant = name.partition(":")
    if base not in factories:
        raise KeyError(
            f"unknown policy {name!r}; choose from {sorted(factories)}")
    if base == "SmartOClock+OSub":
        policy = SmartOClockOSub(n_servers,
                                 risk_level=variant or "conservative")
        policy.name = name
        return policy
    if variant:
        raise KeyError(f"policy {base!r} takes no {variant!r} variant")
    return factories[base](n_servers)
