"""Explore/exploit beyond the assigned power budget (paper §IV-D).

Budget assignments come from predictions and can go stale.  A constrained
sOA (VMs held below their overclock targets) *explores*: it conditionally
raises its local budget by a step (20 W); if no rack-level warning arrives
within the confirmation window (30 s), it raises again, until either all
VMs reach their targets — then it *exploits* the discovered budget for a
bounded time — or a warning arrives, in which case it steps back and
schedules the next exploration with exponential back-off.  A capping event
resets everything to the assigned budget.

The controller only manages the *extra* watts above the assigned budget;
the assigned value itself comes from the gOA and may change underneath.
"""

from __future__ import annotations

import enum

__all__ = ["ExplorationPhase", "ExplorationController"]


class ExplorationPhase(str, enum.Enum):
    IDLE = "idle"
    EXPLORING = "exploring"
    EXPLOITING = "exploiting"


class ExplorationController:
    """State machine owning the extra-watts overlay on one server."""

    def __init__(self, *, step_watts: float = 20.0,
                 confirm_s: float = 30.0,
                 backoff_initial_s: float = 60.0,
                 backoff_factor: float = 2.0,
                 backoff_max_s: float = 3600.0,
                 exploit_duration_s: float = 600.0) -> None:
        if step_watts <= 0:
            raise ValueError(f"step_watts must be > 0: {step_watts}")
        if confirm_s <= 0:
            raise ValueError(f"confirm_s must be > 0: {confirm_s}")
        if backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {backoff_factor}")
        if exploit_duration_s <= 0:
            raise ValueError(
                f"exploit_duration_s must be > 0: {exploit_duration_s}")
        self.step_watts = step_watts
        self.confirm_s = confirm_s
        self.backoff_initial_s = backoff_initial_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.exploit_duration_s = exploit_duration_s

        self.phase = ExplorationPhase.IDLE
        self.extra_watts = 0.0
        self._confirm_deadline = 0.0
        self._exploit_deadline = 0.0
        self._backoff_until = -float("inf")
        self._backoff_current = backoff_initial_s
        # Telemetry
        self.explorations_started = 0
        self.warnings_heeded = 0
        self.caps_seen = 0

    # ------------------------------------------------------------------
    # Driving API (called by the sOA each control tick)
    # ------------------------------------------------------------------

    def tick(self, now: float, constrained: bool,
             all_at_target: bool) -> float:
        """Advance the state machine; returns current extra watts.

        ``constrained`` — some granted VM is held below target by power;
        ``all_at_target`` — every granted VM reached its target frequency.
        """
        if self.phase is ExplorationPhase.IDLE:
            if constrained and now >= self._backoff_until:
                self._start_exploration(now)
        elif self.phase is ExplorationPhase.EXPLORING:
            if all_at_target:
                self._enter_exploit(now)
            elif now >= self._confirm_deadline:
                # Quiet confirmation window: push further.
                self.extra_watts += self.step_watts
                self._confirm_deadline = now + self.confirm_s
        elif self.phase is ExplorationPhase.EXPLOITING:
            if now >= self._exploit_deadline:
                self.phase = ExplorationPhase.IDLE
                if not constrained:
                    # Budget no longer needed; release the overlay so the
                    # headroom returns to the rack.
                    self.extra_watts = 0.0
        return self.extra_watts

    def _start_exploration(self, now: float) -> None:
        self.phase = ExplorationPhase.EXPLORING
        self.extra_watts += self.step_watts
        self._confirm_deadline = now + self.confirm_s
        self.explorations_started += 1

    def _enter_exploit(self, now: float) -> None:
        self.phase = ExplorationPhase.EXPLOITING
        self._exploit_deadline = now + self.exploit_duration_s
        # A successful (warning-free) exploration resets the back-off.
        self._backoff_current = self.backoff_initial_s

    # ------------------------------------------------------------------
    # Rack events
    # ------------------------------------------------------------------

    def on_warning(self, now: float) -> None:
        """Rack warning: only meaningful while exploring (§IV-D)."""
        if self.phase is not ExplorationPhase.EXPLORING:
            return
        self.warnings_heeded += 1
        self.extra_watts = max(0.0, self.extra_watts - self.step_watts)
        self._backoff_until = now + self._backoff_current
        self._backoff_current = min(self.backoff_max_s,
                                    self._backoff_current
                                    * self.backoff_factor)
        # The budget discovered so far (minus the step) is safe: exploit it.
        self._enter_exploit(now)

    def on_cap(self, now: float) -> None:
        """Capping event: revert to the assigned budget entirely."""
        self.caps_seen += 1
        self.extra_watts = 0.0
        self.phase = ExplorationPhase.IDLE
        self._backoff_until = now + self._backoff_current
        self._backoff_current = min(self.backoff_max_s,
                                    self._backoff_current
                                    * self.backoff_factor)
