"""Global Overclocking Agent (paper §IV-C).

One gOA per rack.  It collects each sOA's weekly profile report (regular
power series + overclock demand series), computes heterogeneous per-server
power budgets for the next period, and pushes them back to the sOAs.  The
gOA failing is survivable: sOAs keep operating on their last assignment
(decentralization, §III Q5).

Both directions of gOA↔sOA traffic go through a
:class:`~repro.core.messaging.MessageChannel`: profile *pulls* are
synchronous requests that can fail for a cycle, budget *pushes* are
messages that can be dropped or delayed.  A healthy channel delivers
everything synchronously, so fault-free behaviour is unchanged.  Every
profile is stamped with its collection time; ``recompute_budgets``
re-pulls profiles that are missing or older than one update period
instead of silently budgeting a new week from week-old data.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.cluster.topology import Rack
from repro.core.budgets import BudgetAssignment, compute_heterogeneous_budgets
from repro.core.config import SmartOClockConfig
from repro.core.oversubscription import (
    OversubscriptionController,
    OversubscriptionDecision,
)
from repro.core.messaging import (
    BUDGET_PUSH,
    PROFILE_PULL,
    Envelope,
    MessageChannel,
)
from repro.core.soa import ServerOverclockingAgent
from repro.core.types import ServerProfileReport

__all__ = ["GlobalOverclockingAgent"]


class GlobalOverclockingAgent:
    """Collects profiles and assigns heterogeneous budgets."""

    def __init__(self, rack: Rack, config: SmartOClockConfig,
                 soas: list[ServerOverclockingAgent],
                 channel: Optional[MessageChannel] = None) -> None:
        if not soas:
            raise ValueError("a gOA needs at least one sOA")
        for soa in soas:
            if soa.server.rack is not rack:
                raise ValueError(
                    f"{soa.server.server_id} is not in rack {rack.rack_id}")
        self.rack = rack
        self.config = config
        self.channel = channel if channel is not None else MessageChannel()
        self.soas = {soa.server.server_id: soa for soa in soas}
        self._latest_profiles: dict[str, ServerProfileReport] = {}
        self._profile_collected_at: dict[str, float] = {}
        self._last_collect_attempt_at: Optional[float] = None
        self._assignment: Optional[BudgetAssignment] = None
        self.last_update_at: Optional[float] = None
        self.budget_updates = 0
        # Monotone fencing token: every recompute-and-push stamps the
        # next epoch.  A gOA standby promoted by the HA supervisor seeds
        # this past the old primary's last known epoch, so the deposed
        # primary's in-flight (or split-brain) pushes are rejected by
        # the sOAs' epoch fence.
        self.epoch = 0
        # Membership: consecutive missed profile reports per server; a
        # server past the configured threshold is declared dead and its
        # budget share redistributed to the survivors next cycle.
        self._missed_reports: dict[str, int] = {}
        self._dead: set[str] = set()
        self.servers_marked_dead = 0
        self.servers_revived = 0
        # Risk-aware oversubscription (ROADMAP item 2): when enabled,
        # budgets are split against an oversubscribed *planning* limit;
        # the physical limit (and its capping path) is untouched.
        self._osub: Optional[OversubscriptionController] = None
        if config.enable_oversubscription:
            self._osub = OversubscriptionController(
                config.osub_risk_level,
                max_extra_fraction=config.osub_max_extra_fraction)
        self.last_osub_decision: Optional[OversubscriptionDecision] = None

    @property
    def assignment(self) -> Optional[BudgetAssignment]:
        return self._assignment

    @property
    def dead_servers(self) -> list[str]:
        """Servers currently declared dead by missed-report detection."""
        return sorted(self._dead)

    def _note_missed_report(self, server_id: str) -> None:
        misses = self._missed_reports.get(server_id, 0) + 1
        self._missed_reports[server_id] = misses
        if misses >= self.config.dead_after_missed_reports \
                and server_id not in self._dead:
            self._dead.add(server_id)
            self.servers_marked_dead += 1

    def _note_report_received(self, server_id: str) -> None:
        self._missed_reports[server_id] = 0
        if server_id in self._dead:
            self._dead.discard(server_id)
            self.servers_revived += 1

    # ------------------------------------------------------------------
    # Profile collection & staleness
    # ------------------------------------------------------------------

    def collect_profiles(self, now: float) -> int:
        """Pull the weekly profile report from every sOA over the channel.

        A failed pull (channel fault) keeps the server's previous — now
        stale — profile; its collection stamp is *not* refreshed.
        Returns how many pulls succeeded.
        """
        self._last_collect_attempt_at = now
        collected = 0
        for server_id in sorted(self.soas):
            soa = self.soas[server_id]
            if not soa.alive:
                # A dead sOA cannot answer: no point sending the pull.
                self._note_missed_report(server_id)
                continue
            report = self.channel.request(
                Envelope(PROFILE_PULL, self.rack.rack_id, server_id, now),
                soa.build_profile_report)
            if report is None:
                self._note_missed_report(server_id)
                continue
            self._latest_profiles[server_id] = report
            self._profile_collected_at[server_id] = now
            self._note_report_received(server_id)
            soa.reset_profile_window()
            collected += 1
        return collected

    def profile_age(self, server_id: str, now: float) -> Optional[float]:
        """Seconds since ``server_id``'s profile was collected (None if
        the gOA has never received one)."""
        collected_at = self._profile_collected_at.get(server_id)
        if collected_at is None:
            return None
        return now - collected_at

    def stale_profiles(self, now: float) -> list[str]:
        """Live servers whose profile is missing or older than one update
        period — the data `recompute_budgets` refuses to silently reuse.
        Dead servers are excluded: their budget share is redistributed,
        so their (necessarily stale) profiles no longer matter."""
        period = self.config.budget_update_period_s
        stale: list[str] = []
        for server_id in sorted(self.soas):
            if server_id in self._dead:
                continue
            age = self.profile_age(server_id, now)
            if age is None or age >= period:
                stale.append(server_id)
        return stale

    # ------------------------------------------------------------------
    # Budget computation & push
    # ------------------------------------------------------------------

    def recompute_budgets(self, now: float) -> Optional[BudgetAssignment]:
        """Compute and push heterogeneous budgets from *fresh* profiles.

        Missing or stale profiles are re-pulled first (unless a pull was
        already attempted at this instant).  If some servers still have
        no profile at all — every pull to them failed — the gOA cannot
        split the rack limit and keeps the previous assignment in force.
        """
        if self.stale_profiles(now) and self._last_collect_attempt_at != now:
            self.collect_profiles(now)
        live = [sid for sid in sorted(self.soas) if sid not in self._dead]
        if not live or any(sid not in self._latest_profiles
                           for sid in live):
            return self._assignment
        first = next(iter(self.soas.values()))
        delta = first.server.power_model.overclock_core_delta(1.0)
        profiles = [self._latest_profiles[sid] for sid in live]
        # Budgets are computed over the *live* membership only: the full
        # rack limit is split among survivors, so a dead server's share
        # is redistributed the first cycle after it is declared dead.
        assignment = compute_heterogeneous_budgets(
            self._planning_limit(profiles),
            profiles,
            oc_delta_watts_per_core=delta)
        # Stamp the fencing epoch only when actually pushing: a cycle
        # that keeps the previous assignment in force must not burn an
        # epoch the sOAs never saw.
        self.epoch += 1
        assignment = replace(assignment, epoch=self.epoch)
        self._assignment = assignment
        for server_id in live:
            soa = self.soas[server_id]
            self.channel.send(
                Envelope(BUDGET_PUSH, self.rack.rack_id, server_id, now),
                lambda at, s=soa, a=assignment: s.receive_budget_push(
                    a, now=at))
        self.budget_updates += 1
        self.last_update_at = now
        return assignment

    def _planning_limit(self, profiles: "list[ServerProfileReport]"
                        ) -> "float | np.ndarray":
        """The limit budgets are split against.

        Without oversubscription this is the physical rack limit.  With
        it, the per-server hi-quantile series (each sOA's risk-level
        quantile of its own measured power; regular series stands in
        where a server couldn't build one yet) sum to an upper bound on
        predicted rack power, and the admission controller turns the gap
        to the physical limit — less a confidence margin — into extra
        per-slot planning headroom.
        """
        limit = self.rack.power_limit_watts
        if self._osub is None:
            return limit
        hi = np.sum([p.hi_quantile_power_watts
                     if p.hi_quantile_power_watts is not None
                     else p.regular_power_watts for p in profiles], axis=0)
        mid = np.sum([p.regular_power_watts for p in profiles], axis=0)
        decision = self._osub.admit(limit, hi, mid)
        self.last_osub_decision = decision
        return decision.planning_limit_watts

    def update(self, now: float) -> Optional[BudgetAssignment]:
        """One periodic gOA cycle: collect profiles, recompute, push."""
        self.collect_profiles(now)
        for soa in self.soas.values():
            if soa.alive and soa.power_store.samples >= 2:
                soa.recompute_template()
        return self.recompute_budgets(now)
