"""Global Overclocking Agent (paper §IV-C).

One gOA per rack.  It collects each sOA's weekly profile report (regular
power series + overclock demand series), computes heterogeneous per-server
power budgets for the next period, and pushes them back to the sOAs.  The
gOA failing is survivable: sOAs keep operating on their last assignment
(decentralization, §III Q5).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.topology import Rack
from repro.core.budgets import BudgetAssignment, compute_heterogeneous_budgets
from repro.core.config import SmartOClockConfig
from repro.core.soa import ServerOverclockingAgent
from repro.core.types import ServerProfileReport

__all__ = ["GlobalOverclockingAgent"]


class GlobalOverclockingAgent:
    """Collects profiles and assigns heterogeneous budgets."""

    def __init__(self, rack: Rack, config: SmartOClockConfig,
                 soas: list[ServerOverclockingAgent]) -> None:
        if not soas:
            raise ValueError("a gOA needs at least one sOA")
        for soa in soas:
            if soa.server.rack is not rack:
                raise ValueError(
                    f"{soa.server.server_id} is not in rack {rack.rack_id}")
        self.rack = rack
        self.config = config
        self.soas = {soa.server.server_id: soa for soa in soas}
        self._latest_profiles: dict[str, ServerProfileReport] = {}
        self._assignment: Optional[BudgetAssignment] = None
        self.budget_updates = 0

    @property
    def assignment(self) -> Optional[BudgetAssignment]:
        return self._assignment

    def collect_profiles(self) -> None:
        """Pull the weekly profile report from every sOA."""
        for server_id, soa in self.soas.items():
            self._latest_profiles[server_id] = soa.build_profile_report()
            soa.reset_profile_window()

    def recompute_budgets(self) -> BudgetAssignment:
        """Compute and push heterogeneous budgets from latest profiles."""
        if len(self._latest_profiles) < len(self.soas):
            self.collect_profiles()
        first = next(iter(self.soas.values()))
        delta = first.server.power_model.overclock_core_delta(1.0)
        assignment = compute_heterogeneous_budgets(
            self.rack.power_limit_watts,
            [self._latest_profiles[sid] for sid in sorted(self.soas)],
            oc_delta_watts_per_core=delta)
        self._assignment = assignment
        for soa in self.soas.values():
            soa.set_budget_assignment(assignment)
        self.budget_updates += 1
        return assignment

    def update(self, now: float) -> BudgetAssignment:
        """One periodic gOA cycle: collect profiles, recompute, push."""
        self.collect_profiles()
        for soa in self.soas.values():
            if soa.power_store.samples >= 2:
                soa.recompute_template()
        return self.recompute_budgets()
