"""Automatic overclocking-threshold inference (paper §IV-A).

"To ease adoption, SmartOClock can be extended to infer the overclocking
thresholds.  It can leverage workload historical data to determine
scale-up values.  The lifetime impact of overclocking can be factored in
this analysis.  For example, use P90 of historical value if overclocking
can be performed for 10 % of the time only...  The overclocking impact
needs to be estimated to determine the scale-down value.  An inaccurate
estimate can either cause dithering if it is too close to the scale-up
threshold or waste precious overclocking time if the estimate is too low."

:func:`infer_trigger_policy` implements exactly that recipe:

* **scale-up**: the (1 - budget_fraction) quantile of the historical
  metric, so the trigger fires for at most the lifetime-budgeted share of
  time;
* **scale-down**: the scale-up value divided by the *estimated
  overclocking impact* (the latency improvement factor), pushed further
  down by a dithering margin so the post-boost metric does not oscillate
  around the stop threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.workload_intelligence import MetricsTriggerPolicy
from repro.workloads.queueing import frequency_speedup

__all__ = ["InferredThresholds", "estimate_overclock_impact",
           "infer_trigger_policy"]


@dataclass(frozen=True)
class InferredThresholds:
    """Raw inferred metric values plus the derived policy."""

    scale_up_value: float
    scale_down_value: float
    policy: MetricsTriggerPolicy


def estimate_overclock_impact(*, turbo_ghz: float = 3.3,
                              overclock_ghz: float = 4.0,
                              freq_sensitivity: float = 0.9) -> float:
    """Estimated factor by which overclocking reduces the latency metric.

    A first-order performance model: latency scales inversely with the
    frequency speedup.  (The paper suggests "performance models using
    low-level architectural counters"; the sensitivity parameter stands
    in for what those counters would measure.)
    """
    return frequency_speedup(overclock_ghz, turbo_ghz, freq_sensitivity)


def infer_trigger_policy(metric_history: Sequence[float], slo: float, *,
                         budget_fraction: float = 0.10,
                         overclock_impact: float | None = None,
                         dithering_margin: float = 0.25,
                         consecutive: int = 2) -> InferredThresholds:
    """Derive a :class:`MetricsTriggerPolicy` from historical metrics.

    ``metric_history`` — observations of the trigger metric (e.g. P99
    latency samples); ``slo`` — the workload's SLO in the same unit;
    ``budget_fraction`` — the lifetime-budgeted share of time that may be
    overclocked; ``overclock_impact`` — latency-reduction factor of the
    boost (defaults to the first-order frequency model);
    ``dithering_margin`` — extra gap below the post-boost level so the
    stop threshold does not dither against it.
    """
    history = np.asarray(metric_history, dtype=float)
    if history.size == 0:
        raise ValueError("metric history is empty")
    if slo <= 0:
        raise ValueError(f"slo must be > 0: {slo}")
    if not 0.0 < budget_fraction < 1.0:
        raise ValueError(
            f"budget_fraction must be in (0, 1): {budget_fraction}")
    if not 0.0 <= dithering_margin < 1.0:
        raise ValueError(
            f"dithering_margin must be in [0, 1): {dithering_margin}")
    impact = (estimate_overclock_impact() if overclock_impact is None
              else overclock_impact)
    if impact <= 1.0:
        raise ValueError(
            f"overclock_impact must exceed 1 (a speedup): {impact}")

    # Scale-up: the metric level exceeded for budget_fraction of the time
    # (paper: "use P90 ... if overclocking can be performed for 10% of
    # the time"), never above the SLO itself.
    scale_up = float(np.quantile(history, 1.0 - budget_fraction))
    scale_up = min(scale_up, slo)
    # Scale-down: where the boosted metric is expected to sit, minus the
    # dithering margin.
    post_boost = scale_up / impact
    scale_down = post_boost * (1.0 - dithering_margin)

    start_fraction = scale_up / slo
    stop_fraction = scale_down / slo
    # MetricsTriggerPolicy requires 0 < stop < start; degenerate
    # histories (all zeros) get a floor.
    stop_fraction = max(1e-6, min(stop_fraction,
                                  0.95 * start_fraction))
    start_fraction = max(start_fraction, 2e-6)
    policy = MetricsTriggerPolicy(start_fraction=start_fraction,
                                  stop_fraction=stop_fraction,
                                  consecutive=consecutive)
    return InferredThresholds(scale_up_value=scale_up,
                              scale_down_value=scale_down,
                              policy=policy)
