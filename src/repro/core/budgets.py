"""Heterogeneous power-budget computation (paper §IV-C).

The gOA splits each rack's power limit across its servers in three phases:

1. separate each server's profile into *regular* and *overclock* power
   (done upstream: the :class:`~repro.core.types.ServerProfileReport`
   carries regular power and overclocked-core counts);
2. give every server an initial budget equal to its regular power;
3. split the remaining headroom proportionally to each server's overclock
   *need* in watts (granted cores × per-core overclock delta).

Worked example from the paper: limit 1.3 kW; Server-X regular 400 W,
needs 50 W; Server-Y regular 300 W, needs 100 W → budgets 600 W and 700 W.

Edge cases the paper leaves implicit, resolved here:

* nobody needs overclocking at a slot → headroom is split evenly (any
  server may later *explore* into it);
* predicted regular power already exceeds the limit (overcommitted rack /
  misprediction) → budgets are regular power scaled down proportionally so
  they sum to the limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ServerProfileReport

__all__ = ["BudgetAssignment", "compute_heterogeneous_budgets",
           "fair_share_budgets"]


#: Valid ``out_of_horizon`` policies for :meth:`BudgetAssignment.budget_at`.
OUT_OF_HORIZON_MODES = ("raise", "clamp", "wrap")


@dataclass(frozen=True)
class BudgetAssignment:
    """Per-server power budgets, one value per slot of the planning week.

    ``epoch`` is the gOA's monotone push counter (fencing token): every
    recompute-and-push stamps the next epoch, and sOAs reject pushes
    older than what they already installed, so a delayed or reordered
    delivery can never roll a server back to a superseded assignment.
    Hand-built assignments default to epoch 0 (always installable on a
    fresh sOA).
    """

    slot_s: float
    budgets: dict[str, np.ndarray]
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0: {self.epoch}")

    @property
    def plan_horizon(self) -> float:
        """Length in seconds covered by the budget series.

        Plans are no longer always exactly one week: the ceil-derived
        trailing partial week means the horizon is whatever the series
        actually covers.
        """
        first = next(iter(self.budgets.values()))
        return self.slot_s * len(first)

    def budget_at(self, server_id: str, t: float, *,
                  out_of_horizon: str = "raise") -> float:
        """Budget for ``server_id`` at time ``t`` (seconds from plan start).

        ``t`` outside ``[0, plan_horizon)`` is an explicit decision, not a
        silent modulo: ``t == plan_horizon`` is already the first instant
        *past* the plan (slot indices are half-open), and the old implicit
        wrap handed back the *week-start* budget there — one slot off even
        under periodic-replay semantics, and simply wrong for a partial
        trailing week.

        * ``"raise"`` (default) — out-of-horizon lookups are a
          :class:`LookupError`; callers must opt into a semantic.
        * ``"clamp"`` — hold the boundary slot (last slot for late ``t``,
          first for negative): the conservative stale-plan behaviour.
        * ``"wrap"`` — periodic time-of-horizon replay (the sOA's
          steady-state use, where budgets repeat until a new assignment
          arrives).
        """
        if out_of_horizon not in OUT_OF_HORIZON_MODES:
            raise ValueError(
                f"out_of_horizon must be one of {OUT_OF_HORIZON_MODES}: "
                f"{out_of_horizon!r}")
        series = self.budgets[server_id]
        n = len(series)
        slot = int(t // self.slot_s)
        if slot < 0 or slot >= n:
            if out_of_horizon == "raise":
                raise LookupError(
                    f"t={t} outside plan horizon [0, {self.plan_horizon}) "
                    f"for {server_id!r}; pass out_of_horizon='clamp' or "
                    f"'wrap' to extrapolate")
            if out_of_horizon == "clamp":
                slot = n - 1 if slot >= n else 0
            else:
                slot %= n
        return float(series[slot])

    def total_at(self, t: float, *, out_of_horizon: str = "raise") -> float:
        return sum(self.budget_at(sid, t, out_of_horizon=out_of_horizon)
                   for sid in self.budgets)


def compute_heterogeneous_budgets(
        rack_limit_watts: "float | np.ndarray",
        profiles: list[ServerProfileReport],
        oc_delta_watts_per_core: float,
        even_headroom_fraction: float = 0.3) -> BudgetAssignment:
    """Three-phase heterogeneous split of ``rack_limit_watts``.

    All profiles must share slot resolution and length.  Budgets at every
    slot sum to exactly the rack limit (the whole limit is distributed:
    unneeded headroom still belongs to someone so local decisions can use
    it).

    ``rack_limit_watts`` may be a scalar (the physical limit, the common
    case) or a per-slot array of the same length as the profiles — the
    oversubscription controller plans against ``limit + admitted(t)``
    series.  A scalar behaves bit-identically to the equivalent constant
    array.

    ``even_headroom_fraction`` of the headroom is always split evenly so
    that a server whose demand the templates missed entirely still holds a
    usable floor (its exploration then starts from there); the remainder
    follows the paper's proportional-to-need rule.
    """
    if not 0.0 <= even_headroom_fraction <= 1.0:
        raise ValueError("even_headroom_fraction must be in [0, 1]: "
                         f"{even_headroom_fraction}")
    if not profiles:
        raise ValueError("need at least one server profile")
    if oc_delta_watts_per_core <= 0:
        raise ValueError(
            f"per-core delta must be > 0: {oc_delta_watts_per_core}")
    slot_s = profiles[0].slot_s
    n_slots = len(profiles[0].regular_power_watts)
    for p in profiles:
        if p.slot_s != slot_s or len(p.regular_power_watts) != n_slots:
            raise ValueError("profiles must share slot resolution/length")
    limit = np.asarray(rack_limit_watts, dtype=float)
    if limit.ndim == 0:
        limit = np.full(n_slots, float(limit))
    elif limit.shape != (n_slots,):
        raise ValueError(
            f"per-slot limit must have shape ({n_slots},), got "
            f"{limit.shape}")
    if np.any(limit <= 0):
        raise ValueError(f"rack limit must be > 0: {rack_limit_watts}")

    regular = np.stack([p.regular_power_watts for p in profiles])
    # Need is driven by *requested* cores: a server whose requests were
    # rejected last week still signals demand (otherwise budgets can never
    # bootstrap out of a bad initial split).
    need = np.stack([p.oc_requested_cores for p in profiles]).astype(float)
    need *= oc_delta_watts_per_core

    total_regular = regular.sum(axis=0)
    headroom = limit - total_regular
    total_need = need.sum(axis=0)

    budgets = np.empty_like(regular)
    n = len(profiles)
    over = headroom <= 0
    needy = ~over & (total_need > 0)
    idle = ~over & ~needy
    if np.any(over):
        # Overcommitted: scale regular power down proportionally.
        budgets[:, over] = (regular[:, over] * limit[over]
                            / total_regular[over])
    if np.any(needy):
        even = even_headroom_fraction * headroom[needy]
        by_need = headroom[needy] - even
        budgets[:, needy] = (regular[:, needy] + even / n
                             + by_need * need[:, needy] / total_need[needy])
    if np.any(idle):
        budgets[:, idle] = regular[:, idle] + headroom[idle] / n

    return BudgetAssignment(
        slot_s=slot_s,
        budgets={p.server_id: budgets[i] for i, p in enumerate(profiles)})


def fair_share_budgets(rack_limit_watts: float,
                       profiles: list[ServerProfileReport]) -> BudgetAssignment:
    """The even split the paper's characterization argues against (§III Q4).

    Used as the NaiveOClock capping behaviour and in ablation benches.
    """
    if rack_limit_watts <= 0:
        raise ValueError(f"rack limit must be > 0: {rack_limit_watts}")
    if not profiles:
        raise ValueError("need at least one server profile")
    n_slots = len(profiles[0].regular_power_watts)
    share = rack_limit_watts / len(profiles)
    series = np.full(n_slots, share)
    return BudgetAssignment(
        slot_s=profiles[0].slot_s,
        budgets={p.server_id: series.copy() for p in profiles})
