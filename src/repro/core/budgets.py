"""Heterogeneous power-budget computation (paper §IV-C).

The gOA splits each rack's power limit across its servers in three phases:

1. separate each server's profile into *regular* and *overclock* power
   (done upstream: the :class:`~repro.core.types.ServerProfileReport`
   carries regular power and overclocked-core counts);
2. give every server an initial budget equal to its regular power;
3. split the remaining headroom proportionally to each server's overclock
   *need* in watts (granted cores × per-core overclock delta).

Worked example from the paper: limit 1.3 kW; Server-X regular 400 W,
needs 50 W; Server-Y regular 300 W, needs 100 W → budgets 600 W and 700 W.

Edge cases the paper leaves implicit, resolved here:

* nobody needs overclocking at a slot → headroom is split evenly (any
  server may later *explore* into it);
* predicted regular power already exceeds the limit (overcommitted rack /
  misprediction) → budgets are regular power scaled down proportionally so
  they sum to the limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ServerProfileReport

__all__ = ["BudgetAssignment", "compute_heterogeneous_budgets",
           "fair_share_budgets"]


@dataclass(frozen=True)
class BudgetAssignment:
    """Per-server power budgets, one value per slot of the planning week."""

    slot_s: float
    budgets: dict[str, np.ndarray]

    def budget_at(self, server_id: str, t: float) -> float:
        series = self.budgets[server_id]
        slot = int(t // self.slot_s) % len(series)
        return float(series[slot])

    def total_at(self, t: float) -> float:
        return sum(self.budget_at(sid, t) for sid in self.budgets)


def compute_heterogeneous_budgets(
        rack_limit_watts: float,
        profiles: list[ServerProfileReport],
        oc_delta_watts_per_core: float,
        even_headroom_fraction: float = 0.3) -> BudgetAssignment:
    """Three-phase heterogeneous split of ``rack_limit_watts``.

    All profiles must share slot resolution and length.  Budgets at every
    slot sum to exactly the rack limit (the whole limit is distributed:
    unneeded headroom still belongs to someone so local decisions can use
    it).

    ``even_headroom_fraction`` of the headroom is always split evenly so
    that a server whose demand the templates missed entirely still holds a
    usable floor (its exploration then starts from there); the remainder
    follows the paper's proportional-to-need rule.
    """
    if not 0.0 <= even_headroom_fraction <= 1.0:
        raise ValueError("even_headroom_fraction must be in [0, 1]: "
                         f"{even_headroom_fraction}")
    if rack_limit_watts <= 0:
        raise ValueError(f"rack limit must be > 0: {rack_limit_watts}")
    if not profiles:
        raise ValueError("need at least one server profile")
    if oc_delta_watts_per_core <= 0:
        raise ValueError(
            f"per-core delta must be > 0: {oc_delta_watts_per_core}")
    slot_s = profiles[0].slot_s
    n_slots = len(profiles[0].regular_power_watts)
    for p in profiles:
        if p.slot_s != slot_s or len(p.regular_power_watts) != n_slots:
            raise ValueError("profiles must share slot resolution/length")

    regular = np.stack([p.regular_power_watts for p in profiles])
    # Need is driven by *requested* cores: a server whose requests were
    # rejected last week still signals demand (otherwise budgets can never
    # bootstrap out of a bad initial split).
    need = np.stack([p.oc_requested_cores for p in profiles]).astype(float)
    need *= oc_delta_watts_per_core

    total_regular = regular.sum(axis=0)
    headroom = rack_limit_watts - total_regular
    total_need = need.sum(axis=0)

    budgets = np.empty_like(regular)
    n = len(profiles)
    over = headroom <= 0
    needy = ~over & (total_need > 0)
    idle = ~over & ~needy
    if np.any(over):
        # Overcommitted: scale regular power down proportionally.
        budgets[:, over] = (regular[:, over] * rack_limit_watts
                            / total_regular[over])
    if np.any(needy):
        even = even_headroom_fraction * headroom[needy]
        by_need = headroom[needy] - even
        budgets[:, needy] = (regular[:, needy] + even / n
                             + by_need * need[:, needy] / total_need[needy])
    if np.any(idle):
        budgets[:, idle] = regular[:, idle] + headroom[idle] / n

    return BudgetAssignment(
        slot_s=slot_s,
        budgets={p.server_id: budgets[i] for i, p in enumerate(profiles)})


def fair_share_budgets(rack_limit_watts: float,
                       profiles: list[ServerProfileReport]) -> BudgetAssignment:
    """The even split the paper's characterization argues against (§III Q4).

    Used as the NaiveOClock capping behaviour and in ablation benches.
    """
    if rack_limit_watts <= 0:
        raise ValueError(f"rack limit must be > 0: {rack_limit_watts}")
    if not profiles:
        raise ValueError("need at least one server profile")
    n_slots = len(profiles[0].regular_power_watts)
    share = rack_limit_watts / len(profiles)
    series = np.full(n_slots, share)
    return BudgetAssignment(
        slot_s=profiles[0].slot_s,
        budgets={p.server_id: series.copy() for p in profiles})
