"""SmartOClock: the paper's contribution.

A distributed overclocking-management platform (paper §IV) built from:

* Workload Intelligence agents (:mod:`repro.core.workload_intelligence`) —
  metric- and schedule-based overclocking triggers with deployment-level
  aggregation and corrective actions;
* prediction-based admission control (:mod:`repro.core.admission`);
* heterogeneous rack-power budgeting (:mod:`repro.core.budgets`);
* decentralized enforcement: per-server prioritized feedback loop
  (:mod:`repro.core.enforcement`) plus explore/exploit beyond stale budgets
  (:mod:`repro.core.exploration`);
* the Server and Global Overclocking Agents (:mod:`repro.core.soa`,
  :mod:`repro.core.goa`) and the composed platform
  (:mod:`repro.core.platform`);
* the §V-B comparison policies (:mod:`repro.core.policies`).
"""

from repro.core.config import SmartOClockConfig
from repro.core.types import (
    AdmissionDecision,
    ExhaustionKind,
    ExhaustionSignal,
    OverclockRequest,
    RejectionReason,
    RequestKind,
    ServerProfileReport,
)
from repro.core.budgets import compute_heterogeneous_budgets, BudgetAssignment
from repro.core.enforcement import FeedbackLoop
from repro.core.exploration import ExplorationController, ExplorationPhase
from repro.core.soa import ServerOverclockingAgent
from repro.core.goa import GlobalOverclockingAgent
from repro.core.workload_intelligence import (
    GlobalWIAgent,
    LocalWIAgent,
    MetricsTriggerPolicy,
    OverclockSchedule,
)
from repro.core.platform import SmartOClockPlatform
from repro.core.threshold_inference import (
    InferredThresholds,
    estimate_overclock_impact,
    infer_trigger_policy,
)

__all__ = [
    "SmartOClockConfig",
    "RequestKind",
    "OverclockRequest",
    "AdmissionDecision",
    "RejectionReason",
    "ExhaustionKind",
    "ExhaustionSignal",
    "ServerProfileReport",
    "compute_heterogeneous_budgets",
    "BudgetAssignment",
    "FeedbackLoop",
    "ExplorationController",
    "ExplorationPhase",
    "ServerOverclockingAgent",
    "GlobalOverclockingAgent",
    "MetricsTriggerPolicy",
    "OverclockSchedule",
    "LocalWIAgent",
    "GlobalWIAgent",
    "SmartOClockPlatform",
    "InferredThresholds",
    "estimate_overclock_impact",
    "infer_trigger_policy",
]
