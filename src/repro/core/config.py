"""All SmartOClock tunables in one place.

Defaults follow the values the paper states explicitly: 100 MHz frequency
steps, 20 W exploration step, 30 s exploration confirmation window, 95 %
warning threshold, 15-minute exhaustion window, week-long lifetime epochs
with a 10 % overclocking budget, weekly DailyMed template recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.oversubscription import RISK_LEVELS
from repro.prediction.templates import TemplateKind

__all__ = ["SmartOClockConfig"]

SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


@dataclass(frozen=True)
class SmartOClockConfig:
    """Knobs for the whole platform (one instance shared by all agents)."""

    # --- telemetry & control cadence -------------------------------------
    control_interval_s: float = 10.0       # sOA feedback-loop tick
    telemetry_interval_s: float = 300.0    # samples into template stores
    budget_update_period_s: float = SECONDS_PER_WEEK  # gOA recompute

    # --- prediction -------------------------------------------------------
    template_kind: TemplateKind = TemplateKind.DAILY_MED
    template_history_weeks: int = 2
    budget_slot_s: float = 300.0           # resolution of per-server budgets

    # --- power enforcement (sOA feedback loop, §IV-D) ----------------------
    power_buffer_watts: float = 20.0       # threshold = limit - buffer

    # --- exploration beyond assigned budgets (§IV-D) -----------------------
    explore_step_watts: float = 20.0
    explore_confirm_s: float = 30.0
    explore_backoff_initial_s: float = 60.0
    explore_backoff_factor: float = 2.0
    explore_backoff_max_s: float = 3600.0
    exploit_duration_s: float = 600.0

    # --- rack power safety --------------------------------------------------
    warning_fraction: float = 0.95         # rack warning threshold

    # --- stale-budget safety margin (decentralization, §III Q5) -------------
    # When the gOA (or its communication path) fails, sOAs keep enforcing
    # their last-known assignment.  The assignment was computed for the
    # week it was pushed; as it ages past ``grace`` update periods the sOA
    # shaves ``margin_per_period`` off its budget per additional missed
    # period (capped), trading overclock headroom for safety against
    # drifted rack conditions.
    stale_budget_grace_periods: float = 1.5
    stale_budget_margin_per_period: float = 0.05
    stale_budget_margin_max: float = 0.25

    # --- lifetime management (§IV-B) ----------------------------------------
    # "epoch": offline vendor analysis, fixed time share per epoch (§IV-B).
    # "online": per-core wear counters budget against live lifetime
    # credits (the §VI "wear-out counters" extension).
    lifetime_mode: str = "epoch"
    online_wear_safety_margin: float = 0.2
    online_wear_warmup_s: float = 3600.0
    oc_budget_fraction: float = 0.10       # vendor-agreed time share
    epoch_seconds: float = SECONDS_PER_WEEK
    weekday_only_budget: bool = True
    carryover_cap_epochs: float = 1.0

    # --- exhaustion prediction / proactive scale-out (§IV-D) ----------------
    exhaustion_window_s: float = 900.0     # signal if exhaustion within 15min
    min_grant_s: float = 60.0              # shortest useful overclock grant

    # --- crash / recovery lifecycle -----------------------------------------
    # sOA durable state (wear counters, template store, grant ledger,
    # last budget assignment) checkpoints to the in-sim durable store
    # every ``checkpoint_interval_s``; a restarted sOA restores the
    # latest checkpoint and loses at most one interval of accounting.
    checkpoint_interval_s: float = 300.0
    server_restart_delay_s: float = 120.0  # crash → power-on
    soa_restart_delay_s: float = 30.0      # sOA process death → restore
    vm_restart_delay_s: float = 60.0       # evacuated VM boot time
    # gOA membership: consecutive missed profile reports before a server
    # is declared dead and its budget share redistributed.
    dead_after_missed_reports: int = 2
    # Risk controller: quarantine a server (no OC grants) after
    # ``quarantine_crash_threshold`` crashes inside
    # ``quarantine_window_s``, for ``quarantine_cooldown_s``; a
    # positive ``quarantine_wear_floor_s`` also quarantines servers
    # whose remaining epoch OC budget falls below the floor.
    enable_quarantine: bool = True
    quarantine_crash_threshold: int = 2
    quarantine_window_s: float = 3600.0
    quarantine_cooldown_s: float = 1800.0
    quarantine_wear_floor_s: float = 0.0
    # gOA high availability: a standby replica per rack watches the
    # primary's heartbeats and takes over — at the next fencing epoch —
    # after ``goa_lease_s`` without one.  The lease must cover at least
    # one heartbeat interval or a healthy primary could be deposed.
    enable_goa_ha: bool = False
    goa_heartbeat_interval_s: float = 60.0
    goa_lease_s: float = 180.0

    # --- prediction-based oversubscription (ROADMAP item 2) -----------------
    # When enabled, sOA profile reports carry a high-quantile power
    # series alongside the regular (median) one, and the gOA admits
    # extra planning headroom whenever predicted rack peak at the risk
    # level's quantile plus a confidence margin stays under the limit.
    # Enforcement still runs against the physical limit; mistakes show
    # up as (attributed) cap events, never uncapped excursions.
    enable_oversubscription: bool = False
    osub_risk_level: str = "conservative"  # key into RISK_LEVELS
    # Cap on admitted/limit per slot; None → the risk level's own cap.
    osub_max_extra_fraction: "float | None" = None

    # --- feature flags for ablated variants (§V-B baselines) ----------------
    enable_admission_control: bool = True  # False → NaiveOClock
    enable_exploration: bool = True        # False → NoFeedback
    enable_warnings: bool = True           # False → NoWarning
    enable_proactive_scaleout: bool = True

    # --- accounting mode ----------------------------------------------------
    # True → per-tick (eager) wear/busy accrual and unconditional control
    # ticks: the reference arithmetic the lazy fast path must match
    # bit-for-bit (equivalence-oracle tests and benchmarks only).
    eager_accounting: bool = False

    def __post_init__(self) -> None:
        if self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be > 0")
        if self.telemetry_interval_s <= 0:
            raise ValueError("telemetry_interval_s must be > 0")
        if not 0.0 < self.warning_fraction <= 1.0:
            raise ValueError(
                f"warning_fraction must be in (0, 1]: {self.warning_fraction}")
        if self.power_buffer_watts < 0:
            raise ValueError("power_buffer_watts must be >= 0")
        if self.explore_step_watts <= 0:
            raise ValueError("explore_step_watts must be > 0")
        if self.explore_backoff_factor < 1.0:
            raise ValueError("explore_backoff_factor must be >= 1")
        if not 0.0 <= self.oc_budget_fraction <= 1.0:
            raise ValueError("oc_budget_fraction must be in [0, 1]")
        if self.exhaustion_window_s < 0:
            raise ValueError("exhaustion_window_s must be >= 0")
        if self.stale_budget_grace_periods < 0:
            raise ValueError("stale_budget_grace_periods must be >= 0")
        if self.stale_budget_margin_per_period < 0:
            raise ValueError("stale_budget_margin_per_period must be >= 0")
        if not 0.0 <= self.stale_budget_margin_max < 1.0:
            raise ValueError(
                "stale_budget_margin_max must be in [0, 1): "
                f"{self.stale_budget_margin_max}")
        if self.lifetime_mode not in ("epoch", "online"):
            raise ValueError(
                f"lifetime_mode must be 'epoch' or 'online', got "
                f"{self.lifetime_mode!r}")
        if self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be > 0")
        if self.server_restart_delay_s < 0:
            raise ValueError("server_restart_delay_s must be >= 0")
        if self.soa_restart_delay_s < 0:
            raise ValueError("soa_restart_delay_s must be >= 0")
        if self.vm_restart_delay_s < 0:
            raise ValueError("vm_restart_delay_s must be >= 0")
        if self.dead_after_missed_reports < 1:
            raise ValueError("dead_after_missed_reports must be >= 1")
        if self.quarantine_crash_threshold < 1:
            raise ValueError("quarantine_crash_threshold must be >= 1")
        if self.quarantine_window_s <= 0:
            raise ValueError("quarantine_window_s must be > 0")
        if self.quarantine_cooldown_s < 0:
            raise ValueError("quarantine_cooldown_s must be >= 0")
        if self.quarantine_wear_floor_s < 0:
            raise ValueError("quarantine_wear_floor_s must be >= 0")
        if self.goa_heartbeat_interval_s <= 0:
            raise ValueError("goa_heartbeat_interval_s must be > 0")
        if self.goa_lease_s < self.goa_heartbeat_interval_s:
            raise ValueError(
                "goa_lease_s must be >= goa_heartbeat_interval_s: "
                f"{self.goa_lease_s}/{self.goa_heartbeat_interval_s}")
        if self.osub_risk_level not in RISK_LEVELS:
            raise ValueError(
                f"osub_risk_level must be one of {sorted(RISK_LEVELS)}: "
                f"{self.osub_risk_level!r}")
        if self.osub_max_extra_fraction is not None \
                and not 0.0 <= self.osub_max_extra_fraction <= 1.0:
            raise ValueError(
                "osub_max_extra_fraction must be in [0, 1]: "
                f"{self.osub_max_extra_fraction}")

    # Named variants used throughout the evaluation -------------------------

    def as_naive(self) -> "SmartOClockConfig":
        """NaiveOClock: grant everything, no exploration machinery."""
        return _replace(self, enable_admission_control=False,
                        enable_exploration=False, enable_warnings=False)

    def as_no_feedback(self) -> "SmartOClockConfig":
        """NoFeedback: budgets respected strictly, no exploration beyond."""
        return _replace(self, enable_exploration=False)

    def as_no_warning(self) -> "SmartOClockConfig":
        """NoWarning: explores, but only capping events rein it in."""
        return _replace(self, enable_warnings=False)

    def with_oversubscription(self, risk_level: str = "conservative"
                              ) -> "SmartOClockConfig":
        """SmartOClock+OSub: risk-aware oversubscribed planning limits."""
        return _replace(self, enable_oversubscription=True,
                        osub_risk_level=risk_level)


def _replace(config: SmartOClockConfig, **changes: object) -> SmartOClockConfig:
    import dataclasses
    return dataclasses.replace(config, **changes)
