"""Workload Intelligence agents (paper §IV-A).

SmartOClock extends the autoscaling interface with overclocking: a
workload declares *when* it needs to be overclocked, either through
metrics thresholds (tail latency, utilization) or through a schedule of
known peak windows, or both.  Each VM runs a Local WI agent that collects
metrics and executes start/stop signals; a per-service Global WI agent
aggregates deployment-level state, makes the decision, and performs
corrective actions (scale-out) when overclocking is rejected or about to
run out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cluster.topology import VirtualMachine
from repro.core.soa import ServerOverclockingAgent
from repro.core.types import (
    AdmissionDecision,
    ExhaustionSignal,
    OverclockRequest,
    RequestKind,
)

__all__ = [
    "MetricsTriggerPolicy",
    "OverclockSchedule",
    "LocalWIAgent",
    "GlobalWIAgent",
]

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class MetricsTriggerPolicy:
    """Threshold trigger on tail latency relative to the SLO.

    Start overclocking when p99 > ``start_fraction``·SLO for
    ``consecutive`` observations; stop when p99 < ``stop_fraction``·SLO
    for the same count.  The gap between the fractions is the hysteresis
    band that prevents dithering (§IV-A "an inaccurate estimate can cause
    dithering").
    """

    start_fraction: float = 0.7
    stop_fraction: float = 0.35
    consecutive: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.stop_fraction < self.start_fraction:
            raise ValueError(
                f"need 0 < stop < start, got {self.stop_fraction}"
                f"/{self.start_fraction}")
        if self.consecutive < 1:
            raise ValueError(f"consecutive must be >= 1: {self.consecutive}")


@dataclass(frozen=True)
class OverclockSchedule:
    """Schedule-based trigger: weekly windows of known peaks.

    ``windows`` — (day_indices, start_hour, end_hour) triples; day index
    0 = Monday.  E.g. business peak: ``((0,1,2,3,4), 10.0, 12.0)``.
    """

    windows: Sequence[tuple[Sequence[int], float, float]]

    def __post_init__(self) -> None:
        for days, start, end in self.windows:
            if not days:
                raise ValueError("a window needs at least one day")
            if not 0 <= start < end <= 24:
                raise ValueError(
                    f"need 0 <= start < end <= 24: {start}/{end}")
            for d in days:
                if not 0 <= d <= 6:
                    raise ValueError(f"day index out of range: {d}")

    def active(self, t: float) -> bool:
        day = int(t // SECONDS_PER_DAY) % 7
        hour = (t % SECONDS_PER_DAY) / 3600.0
        return any(day in days and start <= hour < end
                   for days, start, end in self.windows)

    def next_window_duration_s(self, t: float) -> Optional[float]:
        """Remaining duration of the active window at ``t``, if any."""
        day = int(t // SECONDS_PER_DAY) % 7
        hour = (t % SECONDS_PER_DAY) / 3600.0
        for days, start, end in self.windows:
            if day in days and start <= hour < end:
                return (end - hour) * 3600.0
        return None


class LocalWIAgent:
    """Per-VM agent: executes overclock start/stop against the local sOA."""

    def __init__(self, vm: VirtualMachine, soa: ServerOverclockingAgent, *,
                 target_freq_ghz: float = 4.0, priority: int = 0) -> None:
        self.vm = vm
        self.soa = soa
        self.target_freq_ghz = target_freq_ghz
        self.priority = priority
        self.last_decision: Optional[AdmissionDecision] = None
        self.rejections = 0
        self.grants = 0

    @property
    def overclocking(self) -> bool:
        return self.soa.is_overclocking(self.vm.vm_id)

    def start(self, now: float, kind: RequestKind = RequestKind.METRICS,
              duration_s: Optional[float] = None) -> AdmissionDecision:
        """Submit an overclocking request to the sOA."""
        request = OverclockRequest(
            vm_id=self.vm.vm_id, kind=kind,
            target_freq_ghz=self.target_freq_ghz,
            n_cores=self.vm.n_cores, time=now,
            priority=self.priority, duration_s=duration_s)
        decision = self.soa.handle_request(request, now)
        self.last_decision = decision
        if decision.granted:
            self.grants += 1
        else:
            self.rejections += 1
        return decision

    def stop(self, now: float) -> None:
        self.soa.stop_overclock(self.vm.vm_id, now)


class GlobalWIAgent:
    """Per-service agent: deployment-level decisions + corrective actions.

    ``scale_out_handler(now, count)`` is the corrective action (creating
    new VM instances); the operator policy "create ``scale_out_per`` new
    VMs for every ``rejections_per_scale_out`` VMs that cannot be
    overclocked" is applied to both admission rejections and exhaustion
    signals (§IV-D "Managing resource exhaustion").
    """

    def __init__(self, service_name: str, *,
                 metrics_policy: Optional[MetricsTriggerPolicy] = None,
                 schedule: Optional[OverclockSchedule] = None,
                 scale_out_handler: Optional[
                     Callable[[float, int], None]] = None,
                 rejections_per_scale_out: int = 2,
                 scale_out_per: int = 1) -> None:
        if metrics_policy is None and schedule is None:
            raise ValueError(
                "need at least one trigger (metrics policy or schedule)")
        if rejections_per_scale_out < 1:
            raise ValueError("rejections_per_scale_out must be >= 1: "
                             f"{rejections_per_scale_out}")
        self.service_name = service_name
        self.metrics_policy = metrics_policy
        self.schedule = schedule
        self.scale_out_handler = scale_out_handler or (lambda now, n: None)
        self.rejections_per_scale_out = rejections_per_scale_out
        self.scale_out_per = scale_out_per
        self.locals: list[LocalWIAgent] = []
        self._high_streak = 0
        self._low_streak = 0
        self._want_metrics_oc = False
        self._pending_rejections = 0
        self.scale_outs_requested = 0
        self.exhaustion_signals = 0

    def attach(self, local: LocalWIAgent) -> None:
        self.locals.append(local)

    def detach(self, local: LocalWIAgent) -> None:
        self.locals.remove(local)

    # ------------------------------------------------------------------
    # Decision making
    # ------------------------------------------------------------------

    def wants_overclock(self, now: float) -> bool:
        scheduled = self.schedule.active(now) if self.schedule else False
        return scheduled or self._want_metrics_oc

    def observe(self, now: float, p99_ms: float, slo_ms: float) -> bool:
        """Feed a deployment-level latency observation; apply start/stop.

        Returns whether the service currently wants overclocking.
        """
        if self.metrics_policy is not None:
            policy = self.metrics_policy
            if p99_ms > policy.start_fraction * slo_ms:
                self._high_streak += 1
                self._low_streak = 0
            elif p99_ms < policy.stop_fraction * slo_ms:
                self._low_streak += 1
                self._high_streak = 0
            else:
                self._high_streak = 0
                self._low_streak = 0
            if self._high_streak >= policy.consecutive:
                self._want_metrics_oc = True
            elif self._low_streak >= policy.consecutive:
                self._want_metrics_oc = False
        self.apply(now)
        return self.wants_overclock(now)

    def apply(self, now: float) -> None:
        """Reconcile every local agent with the current decision."""
        want = self.wants_overclock(now)
        scheduled_now = self.schedule.active(now) if self.schedule else False
        for local in self.locals:
            if want and not local.overclocking:
                if scheduled_now and self.schedule is not None:
                    duration = self.schedule.next_window_duration_s(now)
                    decision = local.start(now, RequestKind.SCHEDULED,
                                           duration_s=duration)
                else:
                    decision = local.start(now, RequestKind.METRICS)
                if not decision.granted:
                    self.on_rejection(now)
            elif not want and local.overclocking:
                local.stop(now)

    # ------------------------------------------------------------------
    # Corrective actions (§IV-D)
    # ------------------------------------------------------------------

    def on_rejection(self, now: float) -> None:
        self._pending_rejections += 1
        if self._pending_rejections >= self.rejections_per_scale_out:
            self._pending_rejections = 0
            self._scale_out(now)

    def on_exhaustion(self, signal: ExhaustionSignal) -> None:
        """Proactive scale-out: overclocking is about to run out — create
        capacity *before* it does, so the SLO survives the boot delay."""
        self.exhaustion_signals += 1
        self._scale_out(signal.time)

    def _scale_out(self, now: float) -> None:
        self.scale_outs_requested += self.scale_out_per
        self.scale_out_handler(now, self.scale_out_per)
