"""Online per-part wear budgeting (paper §VI "Hardware support").

The shipped SmartOClock uses a conservative *offline* vendor analysis: a
fixed share of time (e.g. 10 %) may be overclocked, regardless of what the
part actually experienced.  The paper's stated next step is *wear-out
counters*: read the accumulated ageing of each core and budget
overclocking against its real remaining lifetime credits.

:class:`OnlineWearBudget` implements that calculation on top of
:class:`~repro.reliability.wearout.CoreWearoutCounter`:

* a core that ran cooler/idler than the vendor's reference accumulates
  *credits* (reference-seconds of unspent lifetime);
* overclocking burns credits at ``wear_rate - 1`` reference-seconds per
  second (the wear beyond the reference rate);
* the budget admits overclocking for as long as the (safety-discounted)
  credits cover the predicted burn.

Compared to the offline epoch budget this is both more permissive on
lightly-loaded parts and *stricter* on hot parts — exactly the §VI
argument for the counters.
"""

from __future__ import annotations

import math

from repro.reliability.aging import DEFAULT_AGING_MODEL, AgingModel
from repro.reliability.wearout import CoreWearoutCounter

__all__ = ["OnlineWearBudget"]


class OnlineWearBudget:
    """Budgets overclocking against a core's live lifetime credits."""

    def __init__(self, counter: CoreWearoutCounter, *,
                 model: AgingModel = DEFAULT_AGING_MODEL,
                 safety_margin: float = 0.2,
                 warmup_seconds: float = 3600.0) -> None:
        """``safety_margin`` holds back a fraction of the credits (counter
        noise, model error); ``warmup_seconds`` refuses overclocking until
        the counter has observed enough history to trust."""
        if not 0.0 <= safety_margin < 1.0:
            raise ValueError(
                f"safety_margin must be in [0, 1): {safety_margin}")
        if warmup_seconds < 0:
            raise ValueError(
                f"warmup_seconds must be >= 0: {warmup_seconds}")
        self.counter = counter
        self.model = model
        self.safety_margin = safety_margin
        self.warmup_seconds = warmup_seconds

    def usable_credit_seconds(self) -> float:
        """Credits available for overclocking after the safety discount."""
        if self.counter.elapsed_seconds < self.warmup_seconds:
            return 0.0
        credits = self.counter.lifetime_credit_seconds
        return max(0.0, credits * (1.0 - self.safety_margin))

    def burn_rate(self, utilization: float, volts: float) -> float:
        """Credits burned per second of overclocking at this point.

        The part is allowed to age at the reference rate (1 ref-second per
        second); only the excess consumes credits.
        """
        return max(0.0, self.model.wear_rate(utilization, volts) - 1.0)

    def available_seconds(self, utilization: float, volts: float) -> float:
        """How long overclocking at this point can be sustained now."""
        rate = self.burn_rate(utilization, volts)
        if rate <= 0.0:
            return math.inf  # ages no faster than the reference: free
        return self.usable_credit_seconds() / rate

    def can_overclock(self, utilization: float, volts: float,
                      duration_s: float) -> bool:
        """Would ``duration_s`` of overclocking stay within the credits?"""
        if duration_s < 0:
            raise ValueError(f"duration must be >= 0: {duration_s}")
        return self.available_seconds(utilization, volts) >= duration_s

    def sustainable_fraction(self, utilization: float,
                             volts: float) -> float:
        """Steady-state share of time that can be overclocked forever.

        Solves ``x·r_oc + (1-x)·r_base = 1`` with the *observed* baseline
        wear rate — the online analogue of the offline vendor analysis.
        Returns 1.0 when overclocking never exceeds the reference rate.
        """
        if self.counter.elapsed_seconds <= 0:
            raise ValueError("no history observed yet")
        r_base = self.counter.wear_ratio
        r_oc = self.model.wear_rate(utilization, volts)
        if r_oc <= 1.0:
            return 1.0
        if r_base >= 1.0:
            return 0.0
        return min(1.0, (1.0 - r_base) / (r_oc - r_base))
