"""Gate-oxide ageing model.

The paper uses a proprietary TSMC 7nm composite model relating voltage,
utilization (time at voltage), temperature and wear.  We implement the
published physics — exponential voltage acceleration (E-model of
time-dependent dielectric breakdown) times an Arrhenius temperature term —
and calibrate the constants against the paper's stated anchors:

* a conservative fleet usage (≈50 % utilization at rated voltage) ages a
  CPU 2.5 years over a 5-year period → ageing is proportional to
  utilization at the reference voltage;
* "naively overclocking for 50 % of the time ages the CPU by 5 years in
  less than a year" → the voltage acceleration factor at the overclocked
  point must be ≈20×.

Ageing accounting
-----------------
``aging_years(wall_years, utilization, voltage, temp)`` returns equivalent
*reference years* of wear: the vendor's lifetime target assumes wear
accrues at 1 reference-year per calendar year under near-100 % usage at
rated voltage.  Under-utilization therefore *accumulates credits* (wear
< elapsed time) that overclocking can spend (§III Q2, Fig. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AgingModel", "DEFAULT_AGING_MODEL"]

BOLTZMANN_EV = 8.617333262e-5  # eV / K


@dataclass(frozen=True)
class AgingModel:
    """Exponential V/T wear-acceleration model.

    ``reference_volts`` — rated (turbo) voltage; wear at this voltage and
    100 % utilization defines 1× the reference rate.
    ``beta_per_volt`` — exponential voltage-acceleration slope (the
    E-model's γ); the default 4.3 /V gives ≈20× acceleration at the +0.7 V
    overclocked point, matching the paper's anchors.
    ``activation_energy_ev`` / ``reference_temp_k`` — Arrhenius temperature
    acceleration; equal temperatures give a 1× factor, advanced cooling
    (lower temperature) reduces wear (§III: "advanced cooling can be used
    to enhance the capability").
    """

    reference_volts: float = 1.05
    beta_per_volt: float = 4.3
    activation_energy_ev: float = 0.7
    reference_temp_k: float = 338.0  # 65 C, a typical loaded server CPU

    def __post_init__(self) -> None:
        if self.reference_volts <= 0:
            raise ValueError(
                f"reference_volts must be > 0: {self.reference_volts}")
        if self.beta_per_volt < 0:
            raise ValueError(
                f"beta_per_volt must be >= 0: {self.beta_per_volt}")
        if self.reference_temp_k <= 0:
            raise ValueError(
                f"reference_temp_k must be > 0: {self.reference_temp_k}")

    def voltage_acceleration(self, volts: float) -> float:
        """Wear-rate multiplier at ``volts`` relative to the rated point."""
        if volts <= 0:
            raise ValueError(f"volts must be > 0: {volts}")
        return math.exp(self.beta_per_volt * (volts - self.reference_volts))

    def temperature_acceleration(self, temp_k: float) -> float:
        """Arrhenius multiplier at ``temp_k`` relative to the reference."""
        if temp_k <= 0:
            raise ValueError(f"temp_k must be > 0: {temp_k}")
        return math.exp((self.activation_energy_ev / BOLTZMANN_EV)
                        * (1.0 / self.reference_temp_k - 1.0 / temp_k))

    def wear_rate(self, utilization: float, volts: float,
                  temp_k: float | None = None) -> float:
        """Instantaneous wear rate in reference-years per year.

        The vendor reference is 100 % utilization at rated voltage and
        reference temperature → rate 1.0.  Idle silicon does not stress
        the oxide, so wear scales with utilization (time spent switching
        at the given voltage).
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1]: {utilization}")
        temp = self.reference_temp_k if temp_k is None else temp_k
        return (utilization
                * self.voltage_acceleration(volts)
                * self.temperature_acceleration(temp))

    def aging(self, duration: float, utilization: float, volts: float,
              temp_k: float | None = None) -> float:
        """Wear accrued over ``duration`` (same unit returned)."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0: {duration}")
        return duration * self.wear_rate(utilization, volts, temp_k)

    def overclock_time_fraction(self, baseline_utilization: float,
                                oc_utilization: float, oc_volts: float,
                                temp_k: float | None = None) -> float:
        """Max fraction of time that can be overclocked without exceeding
        the reference wear rate.

        This is the "offline analysis with the vendors" of §IV-B: solve
        ``(1 - x)·r_base + x·r_oc = 1`` for x, where r_base is the wear
        rate at rated voltage with the observed baseline utilization and
        r_oc the rate at the overclocked point.  Clamped to [0, 1].
        """
        r_base = self.wear_rate(baseline_utilization, self.reference_volts,
                                temp_k)
        r_oc = self.wear_rate(oc_utilization, oc_volts, temp_k)
        if r_oc <= r_base:
            return 1.0  # overclocking is no worse; budget unconstrained
        x = (1.0 - r_base) / (r_oc - r_base)
        return min(1.0, max(0.0, x))


DEFAULT_AGING_MODEL = AgingModel()
