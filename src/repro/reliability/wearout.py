"""Wear counters and epoch-based overclocking time budgets.

Two pieces (paper §IV-B "Managing lifetime impact from overclocking"):

* :class:`CoreWearoutCounter` — per-core time-in-state accounting, the
  simulated stand-in for Intel PMT / AMD HSMP counters plus the "wear-out
  counters" the paper is pursuing with vendors (§VI).
* :class:`EpochBudget` — the overall overclocking allowance (e.g. 10 % of
  time over the component's life) divided into epochs.  A week-long epoch
  lets unused weekend budget flow to weekdays; unused budget carries over
  to the next epoch (bounded), and scheduled requests can *reserve* budget
  for a predictable experience.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Optional

from repro.reliability.aging import DEFAULT_AGING_MODEL, AgingModel

__all__ = ["CoreWearoutCounter", "EpochBudget", "OverclockBudgetPlanner"]

SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class CoreWearoutCounter:
    """Accumulates wear and time-in-state for one core.

    The accumulators are private backing fields behind read-only
    properties: they are part of the sOA's *durable* (checkpointed)
    state, and the ``durable-state-write`` lint rule guarantees nothing
    outside the owner and the checkpoint/restore API mutates them.
    """

    def __init__(self, model: AgingModel = DEFAULT_AGING_MODEL) -> None:
        self.model = model
        self._elapsed_seconds = 0.0
        self._busy_seconds = 0.0
        self._overclock_seconds = 0.0
        self._wear_seconds = 0.0  # wear in reference-seconds
        # Owners running lazy accrual install a hook that folds any
        # pending time into the accumulators before they are read; the
        # properties and state_dict() call it so deferred accounting is
        # invisible to every reader (including checkpoints).
        self._flush_hook: Optional[Callable[[], None]] = None

    @property
    def elapsed_seconds(self) -> float:
        if self._flush_hook is not None:
            self._flush_hook()
        return self._elapsed_seconds

    @property
    def busy_seconds(self) -> float:
        if self._flush_hook is not None:
            self._flush_hook()
        return self._busy_seconds

    @property
    def overclock_seconds(self) -> float:
        if self._flush_hook is not None:
            self._flush_hook()
        return self._overclock_seconds

    @property
    def wear_seconds(self) -> float:
        if self._flush_hook is not None:
            self._flush_hook()
        return self._wear_seconds

    def accumulate(self, dt: float, utilization: float, volts: float,
                   temp_k: float | None = None) -> None:
        """Account ``dt`` seconds at the given operating point."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0: {dt}")
        self._elapsed_seconds += dt
        self._busy_seconds += utilization * dt
        if volts > self.model.reference_volts + 1e-12:
            self._overclock_seconds += dt
        self._wear_seconds += self.model.aging(dt, utilization, volts,
                                               temp_k)

    def accumulate_run(self, dt: float, utilization: float, volts: float,
                       count: int, temp_k: float | None = None) -> None:
        """Account ``count`` consecutive ticks of ``dt`` seconds each.

        Bit-identical to calling :meth:`accumulate` ``count`` times with
        the same arguments: the per-tick increments are hoisted out of
        the loop (they depend only on the operating point, which is
        constant across the run) and then folded in one at a time —
        float addition does not reassociate, so the left fold must be
        replayed, but each fold step is now just one add.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0: {dt}")
        if count <= 0:
            if count == 0:
                return
            raise ValueError(f"count must be >= 0: {count}")
        busy_inc = utilization * dt
        wear_inc = self.model.aging(dt, utilization, volts, temp_k)
        overclocked = volts > self.model.reference_volts + 1e-12
        elapsed = self._elapsed_seconds
        busy = self._busy_seconds
        oc = self._overclock_seconds
        wear = self._wear_seconds
        for _ in repeat(None, count):
            elapsed += dt
            busy += busy_inc
            if overclocked:
                oc += dt
            wear += wear_inc
        self._elapsed_seconds = elapsed
        self._busy_seconds = busy
        self._overclock_seconds = oc
        self._wear_seconds = wear

    def state_dict(self) -> dict[str, float]:
        """Serializable accumulator snapshot (checkpoint payload)."""
        if self._flush_hook is not None:
            self._flush_hook()
        return {
            "elapsed_seconds": self._elapsed_seconds,
            "busy_seconds": self._busy_seconds,
            "overclock_seconds": self._overclock_seconds,
            "wear_seconds": self._wear_seconds,
        }

    def load_state_dict(self, state: dict[str, float]) -> None:
        """Restore the accumulators from a :meth:`state_dict` snapshot."""
        self._elapsed_seconds = float(state["elapsed_seconds"])
        self._busy_seconds = float(state["busy_seconds"])
        self._overclock_seconds = float(state["overclock_seconds"])
        self._wear_seconds = float(state["wear_seconds"])

    @property
    def wear_ratio(self) -> float:
        """Wear relative to elapsed time: 1.0 = ageing at the vendor
        reference rate; < 1 accumulates credits; > 1 burns lifetime."""
        if self.elapsed_seconds == 0:
            return 0.0
        return self.wear_seconds / self.elapsed_seconds

    @property
    def lifetime_credit_seconds(self) -> float:
        """Accumulated headroom: elapsed time minus wear (can be < 0)."""
        return self.elapsed_seconds - self.wear_seconds


@dataclass
class EpochBudget:
    """Overclocking time budget for one core, split into epochs.

    ``budget_fraction`` — share of total time allowed overclocked (the
    vendor-agreed figure, e.g. 0.10);
    ``epoch_seconds`` — epoch length (default: one week);
    ``weekday_only`` — when True, the epoch's budget is divided across the
    five weekdays (per-weekday max) instead of all seven days, modelling
    "assigning unused budgets from the weekend to the weekdays";
    ``carryover_cap_epochs`` — at most this many epochs' worth of unused
    budget may be carried forward.
    """

    budget_fraction: float = 0.10
    epoch_seconds: float = SECONDS_PER_WEEK
    weekday_only: bool = True
    carryover_cap_epochs: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must be in [0, 1]: {self.budget_fraction}")
        if self.epoch_seconds <= 0:
            raise ValueError(
                f"epoch_seconds must be > 0: {self.epoch_seconds}")
        if self.carryover_cap_epochs < 0:
            raise ValueError("carryover_cap_epochs must be >= 0: "
                             f"{self.carryover_cap_epochs}")
        self._epoch_index = 0
        self._carryover = 0.0
        self._consumed = 0.0
        self._reserved = 0.0

    @property
    def epoch_allowance_seconds(self) -> float:
        """Fresh budget granted at the start of every epoch."""
        return self.budget_fraction * self.epoch_seconds

    def per_weekday_seconds(self) -> float:
        """Max overclocking time per weekday under the weekly epoch."""
        if self.epoch_seconds != SECONDS_PER_WEEK:
            raise ValueError(
                "per-weekday split is defined for week-long epochs")
        days = 5.0 if self.weekday_only else 7.0
        return self.epoch_allowance_seconds / days

    def _sync_epoch(self, now: float) -> None:
        epoch = int(now // self.epoch_seconds)
        while self._epoch_index < epoch:
            unused = max(0.0, self._available_no_sync())
            cap = self.carryover_cap_epochs * self.epoch_allowance_seconds
            self._carryover = min(unused, cap)
            self._consumed = 0.0
            self._reserved = 0.0
            self._epoch_index += 1
        if epoch < self._epoch_index:
            raise ValueError(
                f"time went backwards: epoch {epoch} < {self._epoch_index}")

    def _available_no_sync(self) -> float:
        return (self.epoch_allowance_seconds + self._carryover
                - self._consumed - self._reserved)

    def available_seconds(self, now: float) -> float:
        """Unreserved budget remaining in the current epoch."""
        self._sync_epoch(now)
        return max(0.0, self._available_no_sync())

    def reserve(self, now: float, seconds: float) -> bool:
        """Soft-reserve budget for a scheduled request.  Returns success."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0: {seconds}")
        self._sync_epoch(now)
        if self._available_no_sync() < seconds:
            return False
        self._reserved += seconds
        return True

    def release_reservation(self, now: float, seconds: float) -> None:
        """Return unused reserved budget to the pool."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0: {seconds}")
        self._sync_epoch(now)
        self._reserved = max(0.0, self._reserved - seconds)

    def consume(self, now: float, seconds: float, *,
                from_reservation: bool = False) -> bool:
        """Burn budget for actual overclocked time.  Returns success.

        With ``from_reservation`` the time is drawn from previously
        reserved budget; otherwise from the unreserved pool.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0: {seconds}")
        self._sync_epoch(now)
        if from_reservation:
            if self._reserved + 1e-9 < seconds:
                return False
            # The epsilon above absorbs float error; never let the
            # accounting dip below zero because of it.
            self._reserved = max(0.0, self._reserved - seconds)
            self._consumed += seconds
            return True
        if self._available_no_sync() + 1e-9 < seconds:
            return False
        self._consumed += seconds
        return True

    @property
    def consumed_seconds(self) -> float:
        return self._consumed

    @property
    def reserved_seconds(self) -> float:
        return self._reserved

    def state_dict(self) -> dict[str, float]:
        """Serializable epoch-accounting snapshot (checkpoint payload)."""
        return {
            "epoch_index": float(self._epoch_index),
            "carryover": self._carryover,
            "consumed": self._consumed,
            "reserved": self._reserved,
        }

    def load_state_dict(self, state: dict[str, float]) -> None:
        """Restore epoch accounting from a :meth:`state_dict` snapshot."""
        self._epoch_index = int(state["epoch_index"])
        self._carryover = float(state["carryover"])
        self._consumed = float(state["consumed"])
        self._reserved = float(state["reserved"])


class OverclockBudgetPlanner:
    """Derives the budget fraction from the ageing model.

    The paper obtains the max-overclocking-time figure from an offline
    vendor analysis; this planner reproduces that analysis with the
    parametric :class:`AgingModel`, so experiments can either take the
    derived figure or override it with the paper's 10 %.
    """

    def __init__(self, model: AgingModel = DEFAULT_AGING_MODEL) -> None:
        self.model = model

    def budget_fraction(self, *, baseline_utilization: float = 0.5,
                        oc_volts: float = 1.75,
                        oc_utilization: float | None = None,
                        temp_k: float | None = None) -> float:
        """Allowed overclocked-time fraction for lifetime-neutral wear.

        ``oc_utilization`` defaults to the worst case: the same utilization
        as the baseline (the paper's offline modelling assumption).
        """
        oc_util = (baseline_utilization if oc_utilization is None
                   else oc_utilization)
        return self.model.overclock_time_fraction(
            baseline_utilization, oc_util, oc_volts, temp_k)

    def make_budget(self, **kwargs: float) -> EpochBudget:
        """Construct an :class:`EpochBudget` from the derived fraction."""
        fraction = self.budget_fraction(**kwargs)
        return EpochBudget(budget_fraction=fraction)
