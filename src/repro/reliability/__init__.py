"""Component-lifetime modeling.

Overclocking accelerates wear-out (gate-oxide breakdown, electromigration,
thermal cycling); the paper reports an exponential relationship between
voltage/temperature and component lifetime, anchored by a TSMC 7nm
composite model (§II–III).  :mod:`repro.reliability.aging` implements a
parametric equivalent calibrated to the paper's published anchors, and
:mod:`repro.reliability.wearout` implements the per-core wear counters and
the epoch-based overclocking time budgets that SmartOClock enforces
(§IV-B).
"""

from repro.reliability.aging import AgingModel, DEFAULT_AGING_MODEL
from repro.reliability.hazard import DEFAULT_HAZARD_MODEL, HazardModel
from repro.reliability.online_wear import OnlineWearBudget
from repro.reliability.wearout import (
    CoreWearoutCounter,
    EpochBudget,
    OverclockBudgetPlanner,
)

__all__ = [
    "AgingModel",
    "DEFAULT_AGING_MODEL",
    "DEFAULT_HAZARD_MODEL",
    "CoreWearoutCounter",
    "EpochBudget",
    "HazardModel",
    "OnlineWearBudget",
    "OverclockBudgetPlanner",
]
