"""Wear-coupled server failure hazard.

The ageing model (:mod:`repro.reliability.aging`) accrues *wear*; this
module converts wear plus the current operating voltage into a per-tick
failure probability, closing the loop the paper leaves implicit: pushing
cores past turbo does not merely burn lifetime budget, it raises the
chance the part dies *now* (§II "overclocking reduces component
lifetime", §VI).  Related oversubscription work (Kumbhare et al.,
Wang et al.) treats this failure risk as the central control signal.

The hazard is a standard proportional-hazards composition::

    rate(wear_ratio, volts) = base_rate
                              * voltage_acceleration(volts) ** voltage_weight
                              * (1 + wear_coupling * max(0, wear_ratio - 1))

* ``base_rate`` — failures per second for a healthy part at rated
  voltage (configured in failures/year for readability).  Simulations
  run minutes, not years, so experiment configs deliberately inflate
  this figure — a compressed-timescale calibration, like the ageing
  anchors.
* the **voltage term** reuses the ageing model's exponential E-model
  acceleration: the same physics that wears the oxide 20× faster at the
  overclocked point also makes immediate breakdown 20× more likely
  (``voltage_weight`` softens or sharpens the coupling);
* the **wear term** makes *accrued* damage matter: a part whose wear
  ratio exceeds 1 (ageing faster than the vendor reference) sees its
  hazard grow linearly with the excess, so a server that has been
  overclocked hard for a long time keeps failing more often even after
  it returns to rated voltage.

Per-tick failure probability follows from the exponential survival
function, ``1 - exp(-rate * dt)``, which keeps probabilities well-formed
for any tick length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.reliability.aging import DEFAULT_AGING_MODEL, AgingModel

__all__ = ["HazardModel", "DEFAULT_HAZARD_MODEL", "SECONDS_PER_YEAR"]

SECONDS_PER_YEAR = 365.0 * 86400.0


@dataclass(frozen=True)
class HazardModel:
    """Converts wear state + operating voltage into a failure rate."""

    aging: AgingModel = DEFAULT_AGING_MODEL
    base_failures_per_year: float = 0.05
    voltage_weight: float = 1.0
    wear_coupling: float = 2.0

    def __post_init__(self) -> None:
        if self.base_failures_per_year < 0:
            raise ValueError("base_failures_per_year must be >= 0: "
                             f"{self.base_failures_per_year}")
        if self.voltage_weight < 0:
            raise ValueError(
                f"voltage_weight must be >= 0: {self.voltage_weight}")
        if self.wear_coupling < 0:
            raise ValueError(
                f"wear_coupling must be >= 0: {self.wear_coupling}")

    def failure_rate_per_s(self, wear_ratio: float, volts: float) -> float:
        """Instantaneous failure rate (per second) at this operating point."""
        if wear_ratio < 0:
            raise ValueError(f"wear_ratio must be >= 0: {wear_ratio}")
        base = self.base_failures_per_year / SECONDS_PER_YEAR
        voltage_term = (self.aging.voltage_acceleration(volts)
                        ** self.voltage_weight)
        wear_term = 1.0 + self.wear_coupling * max(0.0, wear_ratio - 1.0)
        return base * voltage_term * wear_term

    def tick_failure_probability(self, wear_ratio: float, volts: float,
                                 dt: float) -> float:
        """Probability the server fails during a ``dt``-second tick."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0: {dt}")
        rate = self.failure_rate_per_s(wear_ratio, volts)
        return 1.0 - math.exp(-rate * dt)


DEFAULT_HAZARD_MODEL = HazardModel()
