"""Runtime fault injection: a :class:`FaultPlan` plus a seed.

Determinism contract: every probabilistic decision (message drop,
telemetry dropout) is drawn from a generator seeded by ``(plan seed,
event identity)`` — the event's kind, endpoint ids and timestamp — not
from one shared stream.  Two runs with the same plan and seed therefore
make identical decisions even if unrelated code changes how many other
random draws happen in between, which is what lets the faulted smoke
scenario assert bit-identical metrics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.messaging import Envelope, MessageFate
from repro.faults.spec import FaultPlan

__all__ = ["FaultCounters", "FaultInjector", "event_entropy"]


@dataclass
class FaultCounters:
    """What the injector actually did during a run (telemetry for
    experiments and tests)."""

    goa_cycles_missed: int = 0
    messages_dropped: int = 0
    messages_delayed: int = 0
    telemetry_dropped: int = 0
    predictions_skewed: int = 0
    checkpoints_corrupted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "goa_cycles_missed": self.goa_cycles_missed,
            "messages_dropped": self.messages_dropped,
            "messages_delayed": self.messages_delayed,
            "telemetry_dropped": self.telemetry_dropped,
            "predictions_skewed": self.predictions_skewed,
            "checkpoints_corrupted": self.checkpoints_corrupted,
        }


def event_entropy(seed: int, *parts: object) -> list[int]:
    """SeedSequence entropy for one named event.

    The shared determinism scheme: hash the event's identity (kind,
    endpoint ids, timestamp) into the entropy pool so every decision is
    tied to *what happened*, not to how many draws preceded it.  The
    recovery subsystem reuses this for hazard-driven server crashes, so
    matched naive/SmartOClock runs flip the same coin for the same
    server at the same instant.
    """
    return [seed] + [zlib.crc32(str(p).encode("utf-8")) for p in parts]


# Backwards-compatible private alias (pre-recovery internal name).
_entropy = event_entropy


@dataclass
class FaultInjector:
    """Answers the platform's "does this fail right now?" questions."""

    plan: FaultPlan
    seed: int = 0
    counters: FaultCounters = field(default_factory=FaultCounters)

    def _bernoulli(self, prob: float, *identity: object) -> bool:
        """One reproducible coin flip tied to the event's identity."""
        if prob >= 1.0:
            return True
        if prob <= 0.0:
            return False
        rng = np.random.default_rng(
            np.random.SeedSequence(_entropy(self.seed, *identity)))
        return bool(rng.random() < prob)

    # ------------------------------------------------------------------
    # gOA outages
    # ------------------------------------------------------------------

    def goa_down(self, rack_id: str, now: float) -> bool:
        """True when the rack's gOA misses this update cycle."""
        if self.plan.goa_down(rack_id, now):
            self.counters.goa_cycles_missed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Message channel
    # ------------------------------------------------------------------

    def message_fate(self, rack_id: str, envelope: Envelope) -> MessageFate:
        dropped = False
        delay = 0.0
        for fault in self.plan.message_faults:
            if not fault.matches(rack_id, envelope.kind, envelope.sent_at):
                continue
            if fault.drop_prob > 0.0 and self._bernoulli(
                    fault.drop_prob, "msg", envelope.kind, envelope.src,
                    envelope.dst, envelope.sent_at):
                dropped = True
                break
            delay = max(delay, fault.delay_s)
        if dropped:
            self.counters.messages_dropped += 1
            return MessageFate(dropped=True)
        if delay > 0.0:
            self.counters.messages_delayed += 1
        return MessageFate(delay_s=delay)

    def channel_hook(self, rack_id: str) -> Callable[[Envelope], MessageFate]:
        """The fate hook to install on one rack's message channel."""
        def hook(envelope: Envelope) -> MessageFate:
            return self.message_fate(rack_id, envelope)
        return hook

    # ------------------------------------------------------------------
    # Telemetry dropouts
    # ------------------------------------------------------------------

    def telemetry_drop(self, server_id: str, now: float) -> bool:
        """True when this server's telemetry sample is lost."""
        for fault in self.plan.telemetry_dropouts:
            if fault.matches(server_id, now) and self._bernoulli(
                    fault.drop_prob, "telemetry", server_id, now):
                self.counters.telemetry_dropped += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Checkpoint corruption
    # ------------------------------------------------------------------

    def checkpoint_corruption(self, key: str, taken_at: float) -> bool:
        """True when this checkpoint write rots on the durable medium."""
        for fault in self.plan.checkpoint_corruptions:
            if fault.matches(key, taken_at) and self._bernoulli(
                    fault.corrupt_prob, "ckpt", key, taken_at):
                self.counters.checkpoints_corrupted += 1
                return True
        return False

    def corruption_hook(self) -> Callable[[str, float], bool]:
        """The corruption hook to install on the platform's durable store."""
        def hook(key: str, taken_at: float) -> bool:
            return self.checkpoint_corruption(key, taken_at)
        return hook

    # ------------------------------------------------------------------
    # Misprediction skew
    # ------------------------------------------------------------------

    def prediction_scale(self, server_id: str, now: float) -> float:
        scale = self.plan.prediction_scale(server_id, now)
        if scale != 1.0:
            self.counters.predictions_skewed += 1
        return scale

    def prediction_hook(self, server_id: str) -> Callable[[float], float]:
        """The prediction-scale hook to install on one server's sOA."""
        def hook(now: float) -> float:
            return self.prediction_scale(server_id, now)
        return hook
