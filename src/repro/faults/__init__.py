"""Deterministic fault injection for the SmartOClock control plane.

The paper's robustness claim (§III Q5, §IV-C) is that the platform is
*decentralized*: a dead gOA or a lossy control network degrades
overclocking quality, never rack safety.  This package makes that claim
testable: :class:`FaultPlan` declares *what* fails and *when*;
:class:`FaultInjector` turns the plan plus a seed into reproducible
per-event decisions that the platform consults at its interposition
points (gOA update cycles, the gOA↔sOA message channel, sOA telemetry
sampling, template predictions).
"""

from repro.faults.injector import FaultCounters, FaultInjector, event_entropy
from repro.faults.spec import (
    CheckpointCorruptionFault,
    FaultPlan,
    GoaOutage,
    MessageFault,
    MispredictionFault,
    ServerCrashFault,
    SoaRestart,
    TelemetryDropout,
)

__all__ = [
    "FaultPlan",
    "GoaOutage",
    "MessageFault",
    "MispredictionFault",
    "ServerCrashFault",
    "SoaRestart",
    "TelemetryDropout",
    "CheckpointCorruptionFault",
    "FaultInjector",
    "FaultCounters",
    "event_entropy",
]
