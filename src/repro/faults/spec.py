"""Declarative fault specifications.

A :class:`FaultPlan` is plain data: windows of simulated time during
which a component misbehaves.  Plans say nothing about randomness — the
probabilistic faults (message loss, telemetry dropouts) are resolved by
the :class:`~repro.faults.injector.FaultInjector`, which owns the seeded
generator, so one plan replayed under one seed is one exact fault
schedule.

Selectors (``rack_id`` / ``server_id``) of ``None`` match every rack or
server: a plan can take down one rack's gOA while another rack's
telemetry flakes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FaultWindow",
    "GoaOutage",
    "MessageFault",
    "TelemetryDropout",
    "MispredictionFault",
    "ServerCrashFault",
    "SoaRestart",
    "CheckpointCorruptionFault",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultWindow:
    """Half-open window ``[start_s, end_s)`` of simulated seconds."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0: {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"need start_s < end_s: {self.start_s}/{self.end_s}")

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class GoaOutage:
    """The gOA is down: periodic ``update()`` cycles in the window are
    skipped entirely (no profile collection, no budget recompute, no
    pushes).  sOAs keep their last assignment — the §III Q5 scenario."""

    window: FaultWindow
    rack_id: Optional[str] = None

    def matches(self, rack_id: str, now: float) -> bool:
        return (self.rack_id is None or self.rack_id == rack_id) \
            and self.window.active(now)


@dataclass(frozen=True)
class MessageFault:
    """The gOA↔sOA channel degrades: each message in the window is
    dropped with ``drop_prob``; surviving budget pushes are delayed by
    ``delay_s`` (profile pulls are synchronous, so a nonzero delay fails
    the pull for that cycle)."""

    window: FaultWindow
    drop_prob: float = 0.0
    delay_s: float = 0.0
    rack_id: Optional[str] = None
    kinds: Optional[tuple[str, ...]] = None   # None → all message kinds

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError(
                f"drop_prob must be in [0, 1]: {self.drop_prob}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0: {self.delay_s}")
        if self.drop_prob == 0.0 and self.delay_s == 0.0:
            raise ValueError(
                "a MessageFault needs a drop probability or a delay")

    def matches(self, rack_id: str, kind: str, now: float) -> bool:
        if self.rack_id is not None and self.rack_id != rack_id:
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        return self.window.active(now)


@dataclass(frozen=True)
class TelemetryDropout:
    """The sOA's power sensor path flakes: each ``telemetry_tick`` sample
    in the window is skipped with ``drop_prob`` (1.0 → dead sensor)."""

    window: FaultWindow
    drop_prob: float = 1.0
    server_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.drop_prob <= 1.0:
            raise ValueError(
                f"drop_prob must be in (0, 1]: {self.drop_prob}")

    def matches(self, server_id: str, now: float) -> bool:
        return (self.server_id is None or self.server_id == server_id) \
            and self.window.active(now)


@dataclass(frozen=True)
class MispredictionFault:
    """Template outputs are skewed by ``scale`` in the window: < 1 makes
    the sOA underpredict (optimistic admission → capping pressure),
    > 1 overpredict (needless rejections).  Models the misprediction
    regime Kumbhare et al. judge oversubscription systems by."""

    window: FaultWindow
    scale: float
    server_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0: {self.scale}")

    def matches(self, server_id: str, now: float) -> bool:
        return (self.server_id is None or self.server_id == server_id) \
            and self.window.active(now)


@dataclass(frozen=True)
class ServerCrashFault:
    """Forced whole-server crashes: during the window the matched
    server(s) are crashed outright (power off, VMs evacuated, sOA state
    lost up to its last checkpoint).  Unlike the hazard-driven crashes —
    which are probabilistic in wear and voltage — this is deterministic
    scenario scaffolding: "kill s3 at t=600 no matter what"."""

    window: FaultWindow
    server_id: Optional[str] = None

    def matches(self, server_id: str, now: float) -> bool:
        return (self.server_id is None or self.server_id == server_id) \
            and self.window.active(now)


@dataclass(frozen=True)
class CheckpointCorruptionFault:
    """Durable checkpoint writes rot on the medium: each save in the
    window is corrupted (one byte of the stored body flipped) with
    ``corrupt_prob``.  Detected at restore time by the store's
    fingerprint verification — the restore falls back to a cold start
    rather than trusting corrupted state.  ``key`` selectors match the
    durable-store key: a server id, or ``goa:<rack_id>`` for gOA
    checkpoints (``server_id=None`` matches every key, gOA included)."""

    window: FaultWindow
    corrupt_prob: float = 1.0
    server_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.corrupt_prob <= 1.0:
            raise ValueError(
                f"corrupt_prob must be in (0, 1]: {self.corrupt_prob}")

    def matches(self, key: str, now: float) -> bool:
        return (self.server_id is None or self.server_id == key) \
            and self.window.active(now)


@dataclass(frozen=True)
class SoaRestart:
    """The sOA *process* dies at ``at_s`` and restarts from its durable
    checkpoint; the server itself (and its VMs) keep running.  Models a
    control-plane agent crash — the scenario the checkpoint/restore path
    exists for."""

    at_s: float
    server_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0: {self.at_s}")

    def matches(self, server_id: str) -> bool:
        return self.server_id is None or self.server_id == server_id


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, as declarative data."""

    goa_outages: tuple[GoaOutage, ...] = ()
    message_faults: tuple[MessageFault, ...] = ()
    telemetry_dropouts: tuple[TelemetryDropout, ...] = ()
    mispredictions: tuple[MispredictionFault, ...] = ()
    server_crashes: tuple[ServerCrashFault, ...] = ()
    soa_restarts: tuple[SoaRestart, ...] = ()
    checkpoint_corruptions: tuple[CheckpointCorruptionFault, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists in hand-written specs; store canonical tuples so
        # plans stay hashable/frozen.
        for name in ("goa_outages", "message_faults",
                     "telemetry_dropouts", "mispredictions",
                     "server_crashes", "soa_restarts",
                     "checkpoint_corruptions"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def empty(self) -> bool:
        return not (self.goa_outages or self.message_faults
                    or self.telemetry_dropouts or self.mispredictions
                    or self.server_crashes or self.soa_restarts
                    or self.checkpoint_corruptions)

    def server_crash_forced(self, server_id: str, now: float) -> bool:
        return any(c.matches(server_id, now) for c in self.server_crashes)

    def goa_down(self, rack_id: str, now: float) -> bool:
        return any(o.matches(rack_id, now) for o in self.goa_outages)

    def prediction_scale(self, server_id: str, now: float) -> float:
        scale = 1.0
        for fault in self.mispredictions:
            if fault.matches(server_id, now):
                scale *= fault.scale
        return scale


def window(start_s: float, end_s: float) -> FaultWindow:
    """Shorthand constructor used by scenario code and tests."""
    return FaultWindow(start_s, end_s)


__all__.append("window")
