"""Seeded random fault-plan generation for the chaos harness.

:func:`generate_plan` turns ``(seed, topology, duration)`` into a
:class:`~repro.faults.spec.FaultPlan` composing every fault type the
injector knows — gOA outages, lossy/slow channels, telemetry dropouts,
misprediction skew, forced server crashes, sOA process restarts and
checkpoint corruption.  The draw is a pure function of the seed (one
:class:`numpy.random.Generator` from the shared per-event entropy
scheme), so ``repro chaos --trials 1 --seed <s>`` replays exactly the
plan that trial ``<s>`` ran — the one-command deterministic repro the
chaos sweep prints when an invariant trips.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.injector import event_entropy
from repro.faults.spec import (
    CheckpointCorruptionFault,
    FaultPlan,
    FaultWindow,
    GoaOutage,
    MessageFault,
    MispredictionFault,
    ServerCrashFault,
    SoaRestart,
    TelemetryDropout,
)

__all__ = ["generate_plan"]

# How many instances of each fault type one plan may carry.  Low maxima
# keep single trials readable; breadth comes from running many seeds.
_MAX_PER_TYPE = 2


def _window(rng: np.random.Generator, duration_s: float,
            min_len_s: float) -> FaultWindow:
    """A random half-open window inside the run, at least one tick long."""
    start = float(rng.uniform(0.0, duration_s - min_len_s))
    length = float(rng.uniform(min_len_s, duration_s - start))
    return FaultWindow(start, start + length)


def _pick_server(rng: np.random.Generator,
                 server_ids: tuple[str, ...]) -> Optional[str]:
    """A concrete server, or None (match all) one time in four."""
    if rng.random() < 0.25:
        return None
    return str(rng.choice(np.asarray(server_ids, dtype=object)))


def generate_plan(seed: int, *, duration_s: float,
                  server_ids: tuple[str, ...],
                  tick_s: float = 10.0) -> FaultPlan:
    """One seeded random composite fault plan over ``[0, duration_s)``.

    Every fault type appears with probability ~2/3 (so most plans
    compose several and occasionally one is absent — absence is a
    scenario too).  Crash windows always name a concrete server: a
    whole-rack forced crash leaves no evacuation target and models a
    power failure, not a control-plane fault.
    """
    if duration_s <= 4 * tick_s:
        raise ValueError(f"duration too short for chaos: {duration_s}")
    if not server_ids:
        raise ValueError("need at least one server id")
    rng = np.random.default_rng(
        np.random.SeedSequence(event_entropy(seed, "chaos-plan")))

    def count() -> int:
        # 0 with p≈1/3, else 1.._MAX_PER_TYPE.
        return int(rng.integers(0, _MAX_PER_TYPE + 1))

    goa_outages = tuple(
        GoaOutage(_window(rng, duration_s, 6 * tick_s))
        for _ in range(count()))
    message_faults = tuple(
        MessageFault(
            _window(rng, duration_s, 6 * tick_s),
            drop_prob=float(rng.uniform(0.1, 0.9)),
            delay_s=float(rng.uniform(0.0, 6.0)) * tick_s)
        for _ in range(count()))
    telemetry_dropouts = tuple(
        TelemetryDropout(
            _window(rng, duration_s, 6 * tick_s),
            drop_prob=float(rng.uniform(0.2, 1.0)),
            server_id=_pick_server(rng, server_ids))
        for _ in range(count()))
    mispredictions = tuple(
        MispredictionFault(
            _window(rng, duration_s, 6 * tick_s),
            scale=float(rng.uniform(0.6, 1.5)),
            server_id=_pick_server(rng, server_ids))
        for _ in range(count()))
    server_crashes = tuple(
        ServerCrashFault(
            # Short windows: a forced-crash window holds the server down
            # until it ends, so long ones just measure downtime.
            _window(rng, duration_s * 0.8, 2 * tick_s),
            server_id=str(rng.choice(np.asarray(server_ids, dtype=object))))
        for _ in range(count()))
    soa_restarts = tuple(
        SoaRestart(
            at_s=float(rng.uniform(0.0, duration_s * 0.8)),
            server_id=_pick_server(rng, server_ids))
        for _ in range(count()))
    checkpoint_corruptions = tuple(
        CheckpointCorruptionFault(
            _window(rng, duration_s, 6 * tick_s),
            corrupt_prob=float(rng.uniform(0.3, 1.0)),
            server_id=_pick_server(rng, server_ids))
        for _ in range(count()))

    return FaultPlan(
        goa_outages=goa_outages,
        message_faults=message_faults,
        telemetry_dropouts=telemetry_dropouts,
        mispredictions=mispredictions,
        server_crashes=server_crashes,
        soa_restarts=soa_restarts,
        checkpoint_corruptions=checkpoint_corruptions,
    )
