"""Template-creation strategies for power prediction.

A template is built from one or more weeks of regularly-sampled history
and answers ``predict(t)`` for any future time.  Time convention matches
the traces: seconds since Monday 00:00 of the reference week.

Strategies (paper §V-B, Fig. 15):

* ``FlatMed`` — one number: the median of all history.  Opportunistic;
  underpredicts peaks.
* ``FlatMax`` — one number: the max of all history.  Conservative;
  overpredicts almost always.
* ``Weekly`` — replay last week's series by time-of-week.  Sensitive to
  outlier days (a holiday last Tuesday pollutes next Tuesday).
* ``DailyMed`` — per slot-of-day **median across the week's weekdays**
  (separate weekend template).  SmartOClock's choice: fine-grained yet
  robust to outliers.
* ``DailyMax`` — per slot-of-day max across weekdays; conservative variant.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

__all__ = [
    "TemplateKind",
    "PowerTemplate",
    "FlatMedTemplate",
    "FlatMaxTemplate",
    "WeeklyTemplate",
    "DailyMedTemplate",
    "DailyMaxTemplate",
    "build_template",
    "predict_series_batch",
]

SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class TemplateKind(str, enum.Enum):
    FLAT_MED = "FlatMed"
    FLAT_MAX = "FlatMax"
    WEEKLY = "Weekly"
    DAILY_MED = "DailyMed"
    DAILY_MAX = "DailyMax"


def _base_interval(intervals: np.ndarray) -> float:
    """The sampling grid underlying the observed gaps (float Euclid GCD).

    ``min(intervals)`` is not it: telemetry drops can eat *every*
    adjacent pair at the base cadence, leaving e.g. gaps of 120 s and
    180 s on a 60 s grid.  For a gapless history the GCD equals the
    common gap, so regular inputs see no change."""
    scale = float(np.max(intervals))
    g = 0.0
    for value in np.unique(intervals):
        a, b = g, float(value)
        while b > 1e-9 * scale:
            a, b = b, a % b
        g = a
    return g


def _validate_history(times: np.ndarray, values: np.ndarray) -> float:
    if len(times) != len(values):
        raise ValueError(
            f"times ({len(times)}) and values ({len(values)}) differ")
    if len(times) < 2:
        raise ValueError("need at least 2 history samples")
    intervals = np.diff(times)
    if float(np.min(intervals)) <= 0:
        raise ValueError("history must be regularly sampled")
    # Histories may have *gaps* — dropped telemetry, server downtime —
    # but every sample must still sit on the base sampling grid (each
    # gap a whole multiple of the interval).  Slot-aggregation handles
    # the unseen slots; a genuinely irregular cadence is still an error.
    interval = _base_interval(intervals)
    # A base far finer than every observed gap means the gaps share no
    # credible grid (e.g. 300 s and 433 s "agree" only on a 1 s base):
    # that is irregular sampling, not a gapped history.
    if interval <= 0 or float(np.min(intervals)) > 64 * interval:
        raise ValueError("history must be regularly sampled")
    ratios = intervals / interval
    if not np.allclose(ratios, np.round(ratios)):
        raise ValueError("history must be regularly sampled")
    return interval


class PowerTemplate:
    """Base class: a built template that predicts by time."""

    kind: TemplateKind

    def predict(self, t: float) -> float:
        raise NotImplementedError

    def predict_series(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized prediction; must equal ``[predict(t) for t in times]``
        bitwise (the fast simulation path depends on that identity — see
        DESIGN.md "Performance architecture").  Subclasses override with a
        NumPy gather; this base fallback is the per-element definition."""
        return np.array([self.predict(float(t)) for t in times])


class _FlatTemplate(PowerTemplate):
    """Shared constant-prediction behaviour of the Flat* strategies."""

    value: float

    def predict(self, t: float) -> float:
        return self.value

    def predict_series(self, times: Sequence[float]) -> np.ndarray:
        return np.full(len(times), self.value)


class FlatMedTemplate(_FlatTemplate):
    kind = TemplateKind.FLAT_MED

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        _validate_history(np.asarray(times), np.asarray(values))
        self.value = float(np.median(values))


class FlatMaxTemplate(_FlatTemplate):
    kind = TemplateKind.FLAT_MAX

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        _validate_history(np.asarray(times), np.asarray(values))
        self.value = float(np.max(values))


class WeeklyTemplate(PowerTemplate):
    """Replay the most recent full week by time-of-week."""

    kind = TemplateKind.WEEKLY

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        self.interval = _validate_history(times, values)
        slots_per_week = int(round(SECONDS_PER_WEEK / self.interval))
        if len(values) < slots_per_week:
            raise ValueError(
                f"Weekly template needs a full week of history "
                f"({slots_per_week} samples), got {len(values)}")
        last_week_values = values[-slots_per_week:]
        last_week_times = times[-slots_per_week:]
        # Map each sample to its slot-of-week; slots unseen in a gapped
        # history fall back to the window's median.
        self._series = np.full(slots_per_week, float(np.median(values)))
        slots = (np.round((last_week_times % SECONDS_PER_WEEK)
                          / self.interval).astype(int)) % slots_per_week
        self._series[slots] = last_week_values
        self._slots_per_week = slots_per_week

    def predict(self, t: float) -> float:
        slot = int(round((t % SECONDS_PER_WEEK) / self.interval))
        return float(self._series[slot % self._slots_per_week])

    def predict_series(self, times: Sequence[float]) -> np.ndarray:
        # Same slot arithmetic as predict(): np.round and Python round()
        # both round half to even, and % / division match IEEE-wise on
        # non-negative times, so the gather is bitwise identical.
        t = np.asarray(times, dtype=float)
        slots = np.round((t % SECONDS_PER_WEEK) / self.interval).astype(
            np.int64) % self._slots_per_week
        return self._series[slots]


class _DailyAggregateTemplate(PowerTemplate):
    """Per-slot-of-day aggregation across weekdays (+ weekend template)."""

    def __init__(self, times: np.ndarray, values: np.ndarray,
                 aggregate: str) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        self.interval = _validate_history(times, values)
        self._slots_per_day = int(round(SECONDS_PER_DAY / self.interval))
        if self._slots_per_day < 1:
            raise ValueError("interval longer than a day")
        slot = (np.round((times % SECONDS_PER_DAY)
                         / self.interval).astype(int)) % self._slots_per_day
        weekday = ((times // SECONDS_PER_DAY).astype(int) % 7) < 5
        self._weekday = self._aggregate_slots(
            slot[weekday], values[weekday], aggregate)
        if np.any(~weekday):
            self._weekend = self._aggregate_slots(
                slot[~weekday], values[~weekday], aggregate)
        else:
            # No weekend history: fall back to the weekday template.
            self._weekend = self._weekday

    def _aggregate_slots(self, slots: np.ndarray, values: np.ndarray,
                         aggregate: str) -> np.ndarray:
        if aggregate not in ("median", "max"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        series = np.empty(self._slots_per_day)
        counts = np.bincount(slots, minlength=self._slots_per_day) \
            if len(slots) else np.zeros(self._slots_per_day, dtype=np.int64)
        # Group samples by slot once (stable sort) instead of scanning a
        # boolean mask per slot.  Median/max depend only on each slot's
        # multiset of samples, so the grouped reductions are bitwise
        # identical to the per-slot ``values[slots == s]`` form.
        order = np.argsort(slots, kind="stable")
        grouped = values[order]
        if len(values) and np.all(counts == counts[0]):
            # Complete history: every slot has the same number of
            # samples — one axis-reduction for the whole series.
            table = grouped.reshape(self._slots_per_day, counts[0])
            if aggregate == "median":
                return np.median(table, axis=1)
            return np.max(table, axis=1)
        overall = float(np.median(values)) if len(values) else 0.0
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for s in range(self._slots_per_day):
            group = grouped[bounds[s]:bounds[s + 1]]
            if len(group) == 0:
                series[s] = overall  # slot unseen in history
            elif aggregate == "median":
                series[s] = float(np.median(group))
            else:
                series[s] = float(np.max(group))
        return series

    def predict(self, t: float) -> float:
        slot = int(round((t % SECONDS_PER_DAY)
                         / self.interval)) % self._slots_per_day
        is_weekday = (int(t // SECONDS_PER_DAY) % 7) < 5
        series = self._weekday if is_weekday else self._weekend
        return float(series[slot])

    def predict_series(self, times: Sequence[float]) -> np.ndarray:
        t = np.asarray(times, dtype=float)
        slots = np.round((t % SECONDS_PER_DAY) / self.interval).astype(
            np.int64) % self._slots_per_day
        weekday = ((t // SECONDS_PER_DAY).astype(np.int64) % 7) < 5
        return np.where(weekday, self._weekday[slots], self._weekend[slots])


class DailyMedTemplate(_DailyAggregateTemplate):
    """SmartOClock's default (§IV-B): per-slot median across weekdays."""

    kind = TemplateKind.DAILY_MED

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        super().__init__(times, values, aggregate="median")


class DailyMaxTemplate(_DailyAggregateTemplate):
    kind = TemplateKind.DAILY_MAX

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        super().__init__(times, values, aggregate="max")


_BUILDERS = {
    TemplateKind.FLAT_MED: FlatMedTemplate,
    TemplateKind.FLAT_MAX: FlatMaxTemplate,
    TemplateKind.WEEKLY: WeeklyTemplate,
    TemplateKind.DAILY_MED: DailyMedTemplate,
    TemplateKind.DAILY_MAX: DailyMaxTemplate,
}


def build_template(kind: TemplateKind | str, times: np.ndarray,
                   values: np.ndarray) -> PowerTemplate:
    """Build a template of ``kind`` from one-or-more weeks of history."""
    kind = TemplateKind(kind)
    return _BUILDERS[kind](times, values)


def predict_series_batch(templates: Sequence[PowerTemplate],
                         times: Sequence[float]) -> np.ndarray:
    """``(len(times), len(templates))`` matrix of per-template series.

    Bitwise equal to stacking ``tpl.predict_series(times)`` per column;
    when every template is the same daily-aggregate type at one interval
    (the per-server-fleet common case), the slot/weekday index arithmetic
    is computed once and shared across all columns instead of once per
    template."""
    t = np.asarray(times, dtype=float)
    first = templates[0]
    if (isinstance(first, _DailyAggregateTemplate)
            and all(type(tpl) is type(first)
                    and tpl.interval == first.interval
                    for tpl in templates)):
        slots = np.round((t % SECONDS_PER_DAY) / first.interval).astype(
            np.int64) % first._slots_per_day
        weekday = ((t // SECONDS_PER_DAY).astype(np.int64) % 7) < 5
        return np.stack(
            [np.where(weekday, tpl._weekday[slots], tpl._weekend[slots])
             for tpl in templates], axis=1)
    return np.stack([tpl.predict_series(t) for tpl in templates], axis=1)
