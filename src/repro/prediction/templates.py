"""Template-creation strategies for power prediction.

A template is built from one or more weeks of regularly-sampled history
and answers ``predict(t)`` for any future time.  Time convention matches
the traces: seconds since Monday 00:00 of the reference week.

Strategies (paper §V-B, Fig. 15):

* ``FlatMed`` — one number: the median of all history.  Opportunistic;
  underpredicts peaks.
* ``FlatMax`` — one number: the max of all history.  Conservative;
  overpredicts almost always.
* ``Weekly`` — replay last week's series by time-of-week.  Sensitive to
  outlier days (a holiday last Tuesday pollutes next Tuesday).
* ``DailyMed`` — per slot-of-day **median across the week's weekdays**
  (separate weekend template).  SmartOClock's choice: fine-grained yet
  robust to outliers.
* ``DailyMax`` — per slot-of-day max across weekdays; conservative variant.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

__all__ = [
    "TemplateKind",
    "PowerTemplate",
    "FlatMedTemplate",
    "FlatMaxTemplate",
    "WeeklyTemplate",
    "DailyMedTemplate",
    "DailyMaxTemplate",
    "build_template",
]

SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class TemplateKind(str, enum.Enum):
    FLAT_MED = "FlatMed"
    FLAT_MAX = "FlatMax"
    WEEKLY = "Weekly"
    DAILY_MED = "DailyMed"
    DAILY_MAX = "DailyMax"


def _validate_history(times: np.ndarray, values: np.ndarray) -> float:
    if len(times) != len(values):
        raise ValueError(
            f"times ({len(times)}) and values ({len(values)}) differ")
    if len(times) < 2:
        raise ValueError("need at least 2 history samples")
    intervals = np.diff(times)
    interval = float(np.min(intervals))
    if interval <= 0:
        raise ValueError("history must be regularly sampled")
    # Histories may have *gaps* — dropped telemetry, server downtime —
    # but every sample must still sit on the base sampling grid (each
    # gap a whole multiple of the interval).  Slot-aggregation handles
    # the unseen slots; a genuinely irregular cadence is still an error.
    ratios = intervals / interval
    if not np.allclose(ratios, np.round(ratios)):
        raise ValueError("history must be regularly sampled")
    return interval


class PowerTemplate:
    """Base class: a built template that predicts by time."""

    kind: TemplateKind

    def predict(self, t: float) -> float:
        raise NotImplementedError

    def predict_series(self, times: Sequence[float]) -> np.ndarray:
        return np.array([self.predict(float(t)) for t in times])


class FlatMedTemplate(PowerTemplate):
    kind = TemplateKind.FLAT_MED

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        _validate_history(np.asarray(times), np.asarray(values))
        self.value = float(np.median(values))

    def predict(self, t: float) -> float:
        return self.value


class FlatMaxTemplate(PowerTemplate):
    kind = TemplateKind.FLAT_MAX

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        _validate_history(np.asarray(times), np.asarray(values))
        self.value = float(np.max(values))

    def predict(self, t: float) -> float:
        return self.value


class WeeklyTemplate(PowerTemplate):
    """Replay the most recent full week by time-of-week."""

    kind = TemplateKind.WEEKLY

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        self.interval = _validate_history(times, values)
        slots_per_week = int(round(SECONDS_PER_WEEK / self.interval))
        if len(values) < slots_per_week:
            raise ValueError(
                f"Weekly template needs a full week of history "
                f"({slots_per_week} samples), got {len(values)}")
        last_week_values = values[-slots_per_week:]
        last_week_times = times[-slots_per_week:]
        # Map each sample to its slot-of-week; slots unseen in a gapped
        # history fall back to the window's median.
        self._series = np.full(slots_per_week, float(np.median(values)))
        slots = (np.round((last_week_times % SECONDS_PER_WEEK)
                          / self.interval).astype(int)) % slots_per_week
        self._series[slots] = last_week_values
        self._slots_per_week = slots_per_week

    def predict(self, t: float) -> float:
        slot = int(round((t % SECONDS_PER_WEEK) / self.interval))
        return float(self._series[slot % self._slots_per_week])


class _DailyAggregateTemplate(PowerTemplate):
    """Per-slot-of-day aggregation across weekdays (+ weekend template)."""

    def __init__(self, times: np.ndarray, values: np.ndarray,
                 aggregate: str) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        self.interval = _validate_history(times, values)
        self._slots_per_day = int(round(SECONDS_PER_DAY / self.interval))
        if self._slots_per_day < 1:
            raise ValueError("interval longer than a day")
        slot = (np.round((times % SECONDS_PER_DAY)
                         / self.interval).astype(int)) % self._slots_per_day
        weekday = ((times // SECONDS_PER_DAY).astype(int) % 7) < 5
        self._weekday = self._aggregate_slots(
            slot[weekday], values[weekday], aggregate)
        if np.any(~weekday):
            self._weekend = self._aggregate_slots(
                slot[~weekday], values[~weekday], aggregate)
        else:
            # No weekend history: fall back to the weekday template.
            self._weekend = self._weekday

    def _aggregate_slots(self, slots: np.ndarray, values: np.ndarray,
                         aggregate: str) -> np.ndarray:
        series = np.empty(self._slots_per_day)
        overall = float(np.median(values)) if len(values) else 0.0
        for s in range(self._slots_per_day):
            mask = slots == s
            if not np.any(mask):
                series[s] = overall  # slot unseen in history
            elif aggregate == "median":
                series[s] = float(np.median(values[mask]))
            elif aggregate == "max":
                series[s] = float(np.max(values[mask]))
            else:
                raise ValueError(f"unknown aggregate {aggregate!r}")
        return series

    def predict(self, t: float) -> float:
        slot = int(round((t % SECONDS_PER_DAY)
                         / self.interval)) % self._slots_per_day
        is_weekday = (int(t // SECONDS_PER_DAY) % 7) < 5
        series = self._weekday if is_weekday else self._weekend
        return float(series[slot])


class DailyMedTemplate(_DailyAggregateTemplate):
    """SmartOClock's default (§IV-B): per-slot median across weekdays."""

    kind = TemplateKind.DAILY_MED

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        super().__init__(times, values, aggregate="median")


class DailyMaxTemplate(_DailyAggregateTemplate):
    kind = TemplateKind.DAILY_MAX

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        super().__init__(times, values, aggregate="max")


_BUILDERS = {
    TemplateKind.FLAT_MED: FlatMedTemplate,
    TemplateKind.FLAT_MAX: FlatMaxTemplate,
    TemplateKind.WEEKLY: WeeklyTemplate,
    TemplateKind.DAILY_MED: DailyMedTemplate,
    TemplateKind.DAILY_MAX: DailyMaxTemplate,
}


def build_template(kind: TemplateKind | str, times: np.ndarray,
                   values: np.ndarray) -> PowerTemplate:
    """Build a template of ``kind`` from one-or-more weeks of history."""
    kind = TemplateKind(kind)
    return _BUILDERS[kind](times, values)
