"""Template stores and prediction evaluation.

:class:`TemplateStore` is the online component: agents feed it telemetry
(``record``), it periodically rebuilds templates from the trailing history
(``recompute``), and consumers call ``predict``.  The gOA holds one store
per rack and per server; each sOA holds one for its own server.

:func:`evaluate_template` is the offline harness behind Fig. 8 and
Fig. 15: build a template from week *k* and score it against week *k+1*.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.prediction.templates import (
    PowerTemplate,
    TemplateKind,
    build_template,
)
from repro.sim.metrics import rmse

__all__ = ["TemplateStore", "PredictionEvaluation", "evaluate_template"]

SECONDS_PER_WEEK = 7 * 86400.0


class TemplateStore:
    """Online telemetry buffer + periodic template recomputation.

    ``history_weeks`` bounds how much telemetry is retained (older samples
    are dropped); ``recompute`` uses everything retained.
    """

    def __init__(self, kind: TemplateKind | str = TemplateKind.DAILY_MED,
                 history_weeks: int = 2) -> None:
        if history_weeks < 1:
            raise ValueError(f"history_weeks must be >= 1: {history_weeks}")
        self.kind = TemplateKind(kind)
        self.history_weeks = history_weeks
        self._times: list[float] = []
        self._values: list[float] = []
        self._template: PowerTemplate | None = None

    @property
    def samples(self) -> int:
        return len(self._times)

    @property
    def has_template(self) -> bool:
        return self._template is not None

    def record(self, t: float, value: float) -> None:
        """Append one telemetry sample (times must be non-decreasing)."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"telemetry time went backwards: {t} < {self._times[-1]}")
        self._times.append(float(t))
        self._values.append(float(value))
        self._trim()

    def record_series(self, times: np.ndarray, values: np.ndarray) -> None:
        """Bulk-append a telemetry series (equivalent to repeated
        :meth:`record`, but validates monotonicity once, extends once and
        trims once — linear instead of quadratic on multi-week traces)."""
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.shape != values.shape:
            raise ValueError(
                f"times/values shape mismatch: {times.shape} vs "
                f"{values.shape}")
        if times.size == 0:
            return
        if times.ndim != 1:
            raise ValueError(f"series must be 1-D, got shape {times.shape}")
        if self._times and times[0] < self._times[-1]:
            raise ValueError(
                f"telemetry time went backwards: {times[0]} < "
                f"{self._times[-1]}")
        if times.size > 1 and bool(np.any(np.diff(times) < 0)):
            raise ValueError("telemetry times must be non-decreasing")
        self._times.extend(times.tolist())
        self._values.extend(values.tolist())
        self._trim()

    def _trim(self) -> None:
        horizon = self._times[-1] - self.history_weeks * SECONDS_PER_WEEK
        # Times are non-decreasing, so the cut point is a bisection.
        drop = bisect.bisect_left(self._times, horizon)
        if drop:
            self._times = self._times[drop:]
            self._values = self._values[drop:]

    def recompute(self) -> PowerTemplate:
        """Rebuild the template from the retained history."""
        if len(self._times) < 2:
            raise ValueError("not enough history to build a template")
        self._template = build_template(
            self.kind, np.array(self._times), np.array(self._values))
        return self._template

    def predict(self, t: float) -> float:
        if self._template is None:
            raise RuntimeError(
                "no template yet: call recompute() after recording history")
        return self._template.predict(t)

    def history(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the retained ``(times, values)`` telemetry arrays.

        This is the raw material for auxiliary predictors built over the
        same trailing window (e.g.
        :class:`repro.prediction.quantiles.IntervalPredictor`)."""
        return np.array(self._times), np.array(self._values)

    def predict_or(self, t: float, default: float) -> float:
        """Predict, or return ``default`` when no usable prediction exists.

        "No usable prediction" covers both *no template yet* (before the
        first recompute) and a template slot holding a non-finite value:
        gap-tolerant histories can leave NaN slots in a template before
        median prefill, and a NaN must not masquerade as a prediction —
        callers use this exactly where they have a safe fallback.
        """
        if self._template is None:
            return default
        value = self._template.predict(t)
        if not math.isfinite(value):
            return default
        return value

    def state_dict(self) -> dict[str, Any]:
        """Serializable history snapshot (checkpoint payload).

        The template itself is *not* serialized: it is a pure function
        of the retained history, so :meth:`load_state_dict` rebuilds it
        when the snapshot says one existed.
        """
        return {
            "times": list(self._times),
            "values": list(self._values),
            "has_template": self._template is not None,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore history from a :meth:`state_dict` snapshot."""
        times = [float(t) for t in state["times"]]
        values = [float(v) for v in state["values"]]
        if len(times) != len(values):
            raise ValueError(
                f"times/values length mismatch: {len(times)} vs "
                f"{len(values)}")
        self._times = times
        self._values = values
        if state["has_template"] and len(self._times) >= 2:
            self.recompute()
        else:
            self._template = None


@dataclass(frozen=True)
class PredictionEvaluation:
    """Error statistics of a template scored against held-out actuals."""

    kind: TemplateKind
    rmse: float
    mean_error: float          # signed: >0 → overprediction
    p99_abs_error: float
    max_underprediction: float  # worst actual-above-prediction excursion

    def summary(self) -> str:
        return (f"{self.kind.value}: RMSE={self.rmse:.2f}W "
                f"mean_err={self.mean_error:+.2f}W "
                f"p99|err|={self.p99_abs_error:.2f}W "
                f"max_under={self.max_underprediction:.2f}W")


def evaluate_template(kind: TemplateKind | str,
                      history_times: np.ndarray,
                      history_values: np.ndarray,
                      eval_times: np.ndarray,
                      eval_values: np.ndarray) -> PredictionEvaluation:
    """Build a template from history and score it on held-out actuals."""
    kind = TemplateKind(kind)
    template = build_template(kind, np.asarray(history_times),
                              np.asarray(history_values))
    predictions = template.predict_series(np.asarray(eval_times))
    actuals = np.asarray(eval_values, dtype=float)
    errors = predictions - actuals
    under = actuals - predictions
    return PredictionEvaluation(
        kind=kind,
        rmse=rmse(predictions, actuals),
        mean_error=float(np.mean(errors)),
        p99_abs_error=float(np.percentile(np.abs(errors), 99)),
        max_underprediction=float(np.max(under)),
    )
