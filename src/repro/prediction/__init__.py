"""Power/utilization prediction via historical templates.

SmartOClock predicts rack and server power by building *templates* from
the prior week's telemetry (§IV-B): the default is per-day aggregation
("DailyMed": the template value at 9 AM is the median of the prior week's
weekday 9 AM samples), with separate weekday/weekend templates.  The other
strategies of Fig. 15 (FlatMed, FlatMax, Weekly, DailyMax) are implemented
for comparison.
"""

from repro.prediction.templates import (
    DailyMaxTemplate,
    DailyMedTemplate,
    FlatMaxTemplate,
    FlatMedTemplate,
    PowerTemplate,
    TemplateKind,
    WeeklyTemplate,
    build_template,
)
from repro.prediction.predictor import (
    PredictionEvaluation,
    TemplateStore,
    evaluate_template,
)

__all__ = [
    "PowerTemplate",
    "TemplateKind",
    "FlatMedTemplate",
    "FlatMaxTemplate",
    "WeeklyTemplate",
    "DailyMedTemplate",
    "DailyMaxTemplate",
    "build_template",
    "TemplateStore",
    "PredictionEvaluation",
    "evaluate_template",
]
