"""Quantile templates and prediction intervals (oversubscription layer).

The DailyMed/DailyMax templates answer "what will power *typically* be";
oversubscription (ROADMAP item 2, after Kumbhare et al.'s
prediction-based oversubscription) needs the *distribution*: admit extra
load only when a high quantile of predicted rack peak plus a confidence
margin still clears the limit.

Two pieces:

* :class:`DailyQuantileTemplate` — the per-slot-of-day aggregation of
  the Daily* templates, but aggregating each slot's history samples to
  an arbitrary empirical quantile instead of median/max.  ``q=0.5``
  reproduces DailyMed's weekday series exactly when slots hold an odd
  number of samples (both conventions then select the middle sample);
  the project-wide interpolation convention is
  :func:`repro.sim.metrics.empirical_quantile` (numpy's inclusive
  linear method).
* :class:`IntervalPredictor` — a prediction-interval wrapper over a
  :class:`~repro.prediction.predictor.TemplateStore`'s retained
  history: one mid-quantile template and one high-quantile template
  built from the same samples, answering ``interval(t)`` with
  ``lo <= mid <= hi`` (quantile monotonicity) for margin math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.prediction.predictor import TemplateStore
from repro.prediction.templates import _DailyAggregateTemplate

__all__ = [
    "DailyQuantileTemplate",
    "PredictionInterval",
    "IntervalPredictor",
]


def _validate_q(q: float) -> float:
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    return float(q)


class DailyQuantileTemplate(_DailyAggregateTemplate):
    """Per-slot-of-day empirical ``q``-quantile across weekdays (separate
    weekend series), sharing the Daily* slot arithmetic bit-for-bit."""

    def __init__(self, times: np.ndarray, values: np.ndarray, *,
                 q: float = 0.95) -> None:
        self.q = _validate_q(q)
        super().__init__(times, values, aggregate="quantile")

    def _aggregate_slots(self, slots: np.ndarray, values: np.ndarray,
                         aggregate: str) -> np.ndarray:
        # ``aggregate`` is fixed to "quantile" by the constructor; the
        # parameter only exists to match the parent hook's signature.
        series = np.empty(self._slots_per_day)
        counts = np.bincount(slots, minlength=self._slots_per_day) \
            if len(slots) else np.zeros(self._slots_per_day, dtype=np.int64)
        order = np.argsort(slots, kind="stable")
        grouped = values[order]
        if len(values) and np.all(counts == counts[0]):
            table = grouped.reshape(self._slots_per_day, counts[0])
            return np.quantile(table, self.q, axis=1)
        # Slots unseen in a gapped history fall back to the overall
        # quantile (the Daily* templates use the overall median; here
        # the fallback must sit at the same risk level as the series).
        overall = float(np.quantile(values, self.q)) if len(values) else 0.0
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for s in range(self._slots_per_day):
            group = grouped[bounds[s]:bounds[s + 1]]
            if len(group) == 0:
                series[s] = overall
            else:
                series[s] = float(np.quantile(group, self.q))
        return series


@dataclass(frozen=True)
class PredictionInterval:
    """A (lo, mid, hi) quantile triple for one prediction time."""

    lo: float
    mid: float
    hi: float

    def __post_init__(self) -> None:
        if not (self.lo <= self.mid <= self.hi):
            raise ValueError(
                f"interval must be ordered: lo={self.lo} mid={self.mid} "
                f"hi={self.hi}")

    @property
    def spread(self) -> float:
        """Upper half-width ``hi - mid``: the margin-math ingredient."""
        return self.hi - self.mid


class IntervalPredictor:
    """Quantile prediction intervals over a template store's history.

    Builds three :class:`DailyQuantileTemplate` series — ``q_lo``,
    ``q_mid`` and ``q_hi`` — from the store's *retained* telemetry, so
    the interval tightens/widens as history accumulates exactly like
    the store's own template does.  Call :meth:`recompute` whenever the
    underlying store recomputes (weekly gOA cadence).
    """

    def __init__(self, store: TemplateStore, *, q_lo: float = 0.05,
                 q_mid: float = 0.5, q_hi: float = 0.95) -> None:
        q_lo, q_mid, q_hi = (_validate_q(q_lo), _validate_q(q_mid),
                             _validate_q(q_hi))
        if not q_lo <= q_mid <= q_hi:
            raise ValueError(
                f"quantiles must be ordered: {q_lo} <= {q_mid} <= {q_hi}")
        self.store = store
        self.q_lo = q_lo
        self.q_mid = q_mid
        self.q_hi = q_hi
        self._templates: tuple[DailyQuantileTemplate, ...] | None = None

    @property
    def has_templates(self) -> bool:
        return self._templates is not None

    def recompute(self) -> None:
        """Rebuild the three quantile templates from retained history."""
        times, values = self.store.history()
        if len(times) < 2:
            raise ValueError("not enough history to build interval templates")
        self._templates = tuple(
            DailyQuantileTemplate(times, values, q=q)
            for q in (self.q_lo, self.q_mid, self.q_hi))

    def _require(self) -> tuple[DailyQuantileTemplate, ...]:
        if self._templates is None:
            raise RuntimeError(
                "no interval templates yet: call recompute() after "
                "recording history")
        return self._templates

    def interval(self, t: float) -> PredictionInterval:
        lo_t, mid_t, hi_t = self._require()
        return PredictionInterval(lo=lo_t.predict(t), mid=mid_t.predict(t),
                                  hi=hi_t.predict(t))

    def interval_series(self, times: Sequence[float]
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized ``(lo, mid, hi)`` series; each array is bitwise the
        per-element :meth:`interval` values."""
        lo_t, mid_t, hi_t = self._require()
        return (lo_t.predict_series(times), mid_t.predict_series(times),
                hi_t.predict_series(times))
