"""Characterization experiments (paper §II–III, Figs. 1–9).

Each function regenerates the data behind one figure and returns plain
dataclasses/dicts of series; the corresponding bench target prints them
and asserts the paper's qualitative claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN
from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.prediction.predictor import evaluate_template
from repro.prediction.templates import TemplateKind
from repro.reliability.aging import DEFAULT_AGING_MODEL, AgingModel
from repro.sim.metrics import Cdf
from repro.traces.schema import RackTrace
from repro.traces.synthetic import FleetConfig, SyntheticFleet, generate_fleet
from repro.workloads.loadgen import (
    BusinessHoursPattern,
    TopOfHourPattern,
    WeekendScaledPattern,
)
from repro.workloads.microservices import (
    SOCIALNET_SERVICES,
    MicroserviceInstance,
)
from repro.workloads.webconf import WebConfDeployment, WebConfVM

__all__ = [
    "fig1_load_patterns",
    "MicroserviceSweepPoint",
    "fig2_fig3_microservice_sweep",
    "fig4_webconf",
    "fig5_rack_power_cdf",
    "fig6_rack_week",
    "fig7_aging_policies",
    "fig8_prediction_rmse_by_region",
    "fig9_server_heterogeneity",
]

SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
TURBO_GHZ = DEFAULT_FREQUENCY_PLAN.turbo_ghz
OVERCLOCK_GHZ = DEFAULT_FREQUENCY_PLAN.overclock_max_ghz


# ---------------------------------------------------------------------------
# Fig. 1: load pattern of three first-party services over a weekday
# ---------------------------------------------------------------------------

def fig1_load_patterns(step_s: float = 300.0
                       ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Normalized weekday load of Services A/B/C (paper Fig. 1).

    Service A peaks 10 am–noon; Services B and C spike at the top (and
    bottom) of the hour for ~5 minutes.
    """
    services = {
        "Service A": BusinessHoursPattern(start_hour=10.0, end_hour=12.0,
                                          floor=0.25),
        "Service B": TopOfHourPattern(spike_minutes=5.0,
                                      include_half_hour=False,
                                      base_scale=0.45),
        "Service C": TopOfHourPattern(spike_minutes=5.0,
                                      include_half_hour=True,
                                      base_scale=0.35),
    }
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, pattern in services.items():
        times, levels = WeekendScaledPattern(pattern).sample_levels(
            0.0, SECONDS_PER_DAY, step_s)
        out[name] = (times / 3600.0, levels)
    return out


# ---------------------------------------------------------------------------
# Figs. 2-3: SocialNet microservices under Baseline / Overclock / ScaleOut
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MicroserviceSweepPoint:
    """One bar of Figs. 2-3."""

    service: str
    load: str              # low / medium / high
    environment: str       # Baseline / Overclock / ScaleOut
    p99_ms: float
    mean_ms: float
    utilization: float
    slo_ms: float

    @property
    def meets_slo(self) -> bool:
        return self.p99_ms <= self.slo_ms


#: Offered load per class, as a fraction of one VM's turbo capacity.
LOAD_LEVELS = {"low": 0.35, "medium": 0.60, "high": 0.85}


def fig2_fig3_microservice_sweep() -> list[MicroserviceSweepPoint]:
    """Tail latency and CPU utilization for all 8 SocialNet services."""
    points: list[MicroserviceSweepPoint] = []
    for spec in SOCIALNET_SERVICES:
        for load_name, fraction in LOAD_LEVELS.items():
            total_rate = fraction * spec.capacity(TURBO_GHZ)
            for env in ("Baseline", "Overclock", "ScaleOut"):
                if env == "Baseline":
                    instance = MicroserviceInstance(spec, TURBO_GHZ)
                    instance.set_load(total_rate)
                elif env == "Overclock":
                    instance = MicroserviceInstance(spec, OVERCLOCK_GHZ)
                    instance.set_load(total_rate)
                else:  # ScaleOut: two VMs at turbo, load split evenly
                    instance = MicroserviceInstance(spec, TURBO_GHZ)
                    instance.set_load(total_rate / 2.0)
                points.append(MicroserviceSweepPoint(
                    service=spec.name, load=load_name, environment=env,
                    p99_ms=instance.p99_latency_ms(),
                    mean_ms=instance.mean_latency_ms(),
                    utilization=instance.utilization,
                    slo_ms=spec.slo_ms))
    return points


# ---------------------------------------------------------------------------
# Fig. 4: WebConf instance- vs deployment-level utilization
# ---------------------------------------------------------------------------

def fig4_webconf() -> dict[str, dict[str, float]]:
    """Two WebConf VMs at 10 % and 80 % utilization, ± overclocking VM2."""
    results: dict[str, dict[str, float]] = {}
    for env, freq in (("Baseline", TURBO_GHZ), ("Overclock", OVERCLOCK_GHZ)):
        vm1 = WebConfVM("VM1", base_utilization=0.10)
        vm2 = WebConfVM("VM2", base_utilization=0.80)
        if env == "Overclock":
            vm2.set_frequency(freq)
        deployment = WebConfDeployment([vm1, vm2], target_utilization=0.5)
        results[env] = {
            "vm1_util": vm1.utilization,
            "vm2_util": vm2.utilization,
            "deployment_util": deployment.deployment_utilization(),
            "meets_target": deployment.meets_target(),
            "overclock_needed": deployment.overclock_is_needed(),
        }
    return results


# ---------------------------------------------------------------------------
# Fig. 5: CDF of rack power utilization across the fleet
# ---------------------------------------------------------------------------

def fig5_rack_power_cdf(fleet: Optional[SyntheticFleet] = None, *,
                        n_racks: int = 60, weeks: int = 2,
                        seed: int = 11) -> dict[str, Cdf]:
    """Average / P50 / P99 rack power utilization CDFs (paper Fig. 5)."""
    if fleet is None:
        fleet = generate_fleet(FleetConfig(n_racks=n_racks, weeks=weeks,
                                           seed=seed))
    stats = fleet.rack_utilization_stats()
    return {name: Cdf(values) for name, values in stats.items()}


# ---------------------------------------------------------------------------
# Fig. 6: one rack's power over 5 weekdays, with and without overclocking
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RackWeekSeries:
    """Fig. 6 data: baseline vs naive-overclocked rack power."""

    hours: np.ndarray
    baseline_watts: np.ndarray
    overclocked_watts: np.ndarray
    limit_watts: float

    @property
    def baseline_cap_fraction(self) -> float:
        return float(np.mean(self.baseline_watts > self.limit_watts))

    @property
    def overclocked_cap_fraction(self) -> float:
        return float(np.mean(self.overclocked_watts > self.limit_watts))

    @property
    def no_cap_fraction(self) -> float:
        """Fraction of time naive overclocking stays under the limit."""
        return 1.0 - self.overclocked_cap_fraction


def fig6_rack_week(rack: Optional[RackTrace] = None, *,
                   seed: int = 23) -> RackWeekSeries:
    """Baseline and naively-overclocked power of one busy rack."""
    if rack is None:
        config = FleetConfig(n_racks=6, weeks=1, seed=seed,
                             p99_util_beta=(2.0, 2.0),
                             p99_util_range=(0.88, 0.96))
        fleet = generate_fleet(config)
        # Pick the rack that actually exceeds its limit when naively
        # overclocked (the paper's example rack is such a rack).
        rack = max(fleet.racks,
                   key=lambda r: float(np.max(
                       (r.total_power()
                        + _naive_oc_power(r)) / r.power_limit_watts)))
    weekdays = rack.window(0.0, 5 * SECONDS_PER_DAY)
    baseline = weekdays.total_power()
    overclocked = baseline + _naive_oc_power(weekdays)
    return RackWeekSeries(
        hours=weekdays.times / 3600.0,
        baseline_watts=baseline,
        overclocked_watts=overclocked,
        limit_watts=weekdays.power_limit_watts)


def _naive_oc_power(rack: RackTrace) -> np.ndarray:
    """Extra watts if every overclock demand were granted."""
    delta = DEFAULT_POWER_MODEL.overclock_core_delta(1.0)
    extra = np.zeros(rack.n_samples)
    for server in rack.servers:
        extra += server.oc_cores * delta * server.utilization
    return extra


# ---------------------------------------------------------------------------
# Fig. 7: CPU ageing under different overclocking policies
# ---------------------------------------------------------------------------

def fig7_aging_policies(days: int = 5, *,
                        model: AgingModel = DEFAULT_AGING_MODEL,
                        step_s: float = 300.0) -> dict[str, np.ndarray]:
    """Cumulative ageing (in days) for the four policies of Fig. 7.

    Utilization follows the paper's diurnal production workload: midday
    peaks above 50 %, valleys below 20 % at night.
    """
    times = np.arange(0.0, days * SECONDS_PER_DAY, step_s)
    hours = (times % SECONDS_PER_DAY) / 3600.0
    util = 0.15 + 0.45 * 0.5 * (1.0 + np.cos(
        2 * np.pi * (hours - 13.0) / 24.0))

    v_ref = model.reference_volts
    v_oc = DEFAULT_FREQUENCY_PLAN.voltage(OVERCLOCK_GHZ)

    # Overclock-aware: spend the accumulated credits at the daily peaks
    # only, sized by the lifetime-neutral fraction the model allows.
    # Size the budget with the paper's worst-case assumption: while
    # overclocked, utilization is taken at its observed peak.
    mean_util = float(np.mean(util))
    peak_util = float(np.max(util))
    allowed = model.overclock_time_fraction(mean_util, peak_util, v_oc)
    # Overclock exactly the top-k highest-utilization intervals; a plain
    # quantile threshold would overshoot the time budget on the flat top
    # of the diurnal curve.
    k = int(allowed * len(util))
    aware_oc = np.zeros(len(util), dtype=bool)
    aware_oc[np.argsort(util)[::-1][:k]] = True

    dt_days = step_s / SECONDS_PER_DAY
    series = {
        "Expected ageing": np.cumsum(np.ones_like(times) * dt_days),
        "Non-overclocked": np.cumsum(
            [model.wear_rate(u, v_ref) * dt_days for u in util]),
        "Always overclock": np.cumsum(
            [model.wear_rate(u, v_oc) * dt_days for u in util]),
        "Overclock-aware": np.cumsum(
            [model.wear_rate(u, v_oc if oc else v_ref) * dt_days
             for u, oc in zip(util, aware_oc)]),
    }
    return series


# ---------------------------------------------------------------------------
# Fig. 8: prediction RMSE across regions
# ---------------------------------------------------------------------------

def fig8_prediction_rmse_by_region(*, n_racks: int = 25, seed: int = 31
                                   ) -> dict[str, Cdf]:
    """CDF of DailyMed rack-power-prediction RMSE in four regions.

    Regions differ in telemetry noise and outlier frequency, giving the
    spread of Fig. 8.  RMSE is normalized per server to stay comparable
    across rack sizes (the paper's racks are 24-32 servers too).
    """
    regions = {
        "Region 1": dict(noise_sigma=0.01, outlier_day_prob=0.02),
        "Region 2": dict(noise_sigma=0.03, outlier_day_prob=0.05),
        "Region 3": dict(noise_sigma=0.06, outlier_day_prob=0.07),
        "Region 4": dict(noise_sigma=0.10, outlier_day_prob=0.10),
    }
    out: dict[str, Cdf] = {}
    for i, (name, knobs) in enumerate(regions.items()):
        config = FleetConfig(n_racks=n_racks, weeks=2, seed=seed + i,
                             region=name, **knobs)
        fleet = generate_fleet(config)
        errors: list[float] = []
        for rack in fleet.racks:
            power = rack.total_power()
            t = rack.times
            history = t < SECONDS_PER_WEEK
            evaluation = evaluate_template(
                TemplateKind.DAILY_MED, t[history], power[history],
                t[~history], power[~history])
            errors.append(evaluation.rmse / len(rack.servers))
        out[name] = Cdf(errors)
    return out


# ---------------------------------------------------------------------------
# Fig. 9: per-server power heterogeneity within one rack
# ---------------------------------------------------------------------------

def fig9_server_heterogeneity(rack: Optional[RackTrace] = None, *,
                              n_servers: int = 6, seed: int = 37
                              ) -> dict[str, np.ndarray]:
    """Normalized power of ``n_servers`` random servers over a week.

    Returns the series plus diagnostics: the paper observes (a) >=30 %
    spread between servers and (b) the power-dominant server changing
    over time.
    """
    if rack is None:
        fleet = generate_fleet(FleetConfig(n_racks=1, weeks=1, seed=seed))
        rack = fleet.racks[0]
    rng = np.random.default_rng(seed)
    # Pick among servers with time-varying power (the constant-load ML
    # servers would trivially dominate and hide the effect).
    varying = [i for i, s in enumerate(rack.servers)
               if float(np.std(s.power_watts)) > 1.0]
    if len(varying) < n_servers:
        raise ValueError(
            f"rack has only {len(varying)} varying servers")
    chosen = rng.choice(varying, size=n_servers, replace=False)
    series: dict[str, np.ndarray] = {}
    peak = max(float(np.max(rack.servers[i].power_watts)) for i in chosen)
    for i in sorted(chosen):
        server = rack.servers[i]
        series[server.server_id] = server.power_watts / peak
    return series


def dominant_server_changes(series: dict[str, np.ndarray]) -> int:
    """How many times the identity of the most power-hungry server flips."""
    matrix = np.stack(list(series.values()))
    dominant = np.argmax(matrix, axis=0)
    return int(np.sum(dominant[1:] != dominant[:-1]))
