"""Crash/recovery scenario: risk-aware overclocking pays for uptime.

The paper's premise (§II, §VI) is that overclocking trades silicon
lifetime and failure risk for performance, and that SmartOClock's
admission control, lifetime budgeting and risk management keep that
trade survivable.  This scenario makes the trade concrete: a
wear/voltage-driven :class:`~repro.reliability.hazard.HazardModel`
kills servers, crashed sOAs restore from durable checkpoints, gOAs
redistribute dead servers' budget share, crash-prone servers are
quarantined, and VMs evacuate to surviving same-rack servers.

Three matched runs share one cluster, load trace and crash seed:

* **NaiveOClock** — always-overclock, no admission control, no
  quarantine.  Maximum voltage exposure: the hazard bites hardest.
* **SmartOClock** — the full platform with quarantine.  Budgeted
  overclocking means far less voltage exposure; quarantine keeps a
  crashed server from immediately re-earning its next crash.
* **SmartOClock/restored** — the same run plus a mid-run sOA process
  crash on every server (:class:`~repro.faults.spec.SoaRestart`),
  exercising checkpoint restore under load.

Because per-(server, tick) crash draws use the fault subsystem's
per-event SeedSequence scheme, all three runs flip the *same coin* for
the same server at the same instant: naive's higher voltage can only
add crashes, never trade them.  The whole scenario is deterministic,
so CI asserts bit-identical JSON across repeats.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.core.config import SmartOClockConfig
from repro.experiments.cluster import (
    ClusterConfig,
    EnvironmentResult,
    run_environment,
)
from repro.experiments.parallel import run_jobs
from repro.faults.spec import FaultPlan, SoaRestart
from repro.reliability.hazard import HazardModel

__all__ = [
    "RecoveryScenarioConfig",
    "RecoveryExperimentResult",
    "recovery_experiment",
    "format_recovery_report",
]


@dataclass(frozen=True)
class RecoveryScenarioConfig:
    """Knobs for the naive-vs-SmartOClock crash comparison."""

    duration_s: float = 3600.0
    tick_s: float = 10.0
    seed: int = 0
    # Mildly constrained rack so capping is a live envelope, matching
    # the fault-injection scenario.
    rack_limit_factor: float = 1.05
    # Hazard calibration.  Real base rates (a few failures per hundred
    # server-years) would never fire inside a minutes-long simulation;
    # the compressed-timescale rate is inflated so the *relative* risk
    # of naive always-overclocking shows up within one run.
    base_failures_per_year: float = 25.0
    voltage_weight: float = 2.0
    wear_coupling: float = 6.0
    # When (as a fraction of the run) the restored variant crashes and
    # restores every sOA process.
    soa_restart_at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.duration_s < 6 * self.tick_s:
            raise ValueError("scenario too short to contain its phases")
        if self.base_failures_per_year <= 0:
            raise ValueError(
                f"base_failures_per_year must be > 0: "
                f"{self.base_failures_per_year}")
        if not 0.0 < self.soa_restart_at_fraction < 1.0:
            raise ValueError(
                f"soa_restart_at_fraction must be in (0, 1): "
                f"{self.soa_restart_at_fraction}")

    def cluster_config(self) -> ClusterConfig:
        """The matched cluster all three runs share (peak in the middle
        third, where overclocking — and therefore hazard — concentrates)."""
        return ClusterConfig(
            duration_s=self.duration_s,
            tick_s=self.tick_s,
            peak_start_s=self.duration_s / 3.0,
            peak_duration_s=self.duration_s / 3.0,
            rack_limit_factor=self.rack_limit_factor,
            seed=self.seed)

    def hazard_model(self) -> HazardModel:
        return HazardModel(
            base_failures_per_year=self.base_failures_per_year,
            voltage_weight=self.voltage_weight,
            wear_coupling=self.wear_coupling)

    @property
    def soa_restart_at_s(self) -> float:
        return self.duration_s * self.soa_restart_at_fraction


@dataclass(frozen=True)
class RecoveryExperimentResult:
    """Matched naive / SmartOClock / restored-SmartOClock runs."""

    naive: EnvironmentResult
    smart: EnvironmentResult
    smart_restored: EnvironmentResult

    @property
    def runs(self) -> tuple[tuple[str, EnvironmentResult], ...]:
        return (("naive", self.naive), ("smart", self.smart),
                ("smart_restored", self.smart_restored))

    @property
    def safe(self) -> bool:
        """The run's two hard safety claims: capping held every rack
        inside its envelope, and no restored sOA re-derived a budget
        beyond its checkpointed assignment."""
        return all(
            r.peak_rack_power_fraction <= 1.0 + 1e-9
            and r.restored_overgrants == 0
            for _, r in self.runs)

    def metrics(self) -> dict[str, dict[str, float]]:
        """Flat numeric summary (also the determinism fingerprint: two
        runs with the same config and seed must produce this exactly)."""
        out: dict[str, dict[str, float]] = {}
        for name, result in self.runs:
            row: dict[str, float] = {
                "server_crashes": float(result.server_crashes),
                "server_downtime_s": result.server_downtime_s,
                "server_uptime_fraction": result.server_uptime_fraction,
                "vm_downtime_s": result.vm_downtime_s,
                "wear_accrued_s": result.wear_accrued_s,
                "restored_overgrants": float(result.restored_overgrants),
                "cap_events": float(result.cap_events),
                "grants": float(result.overclock_grants),
                "rejections": float(result.overclock_rejections),
                "missed_slo_ticks_fraction":
                    result.missed_slo_ticks_fraction,
                "peak_rack_power_fraction":
                    result.peak_rack_power_fraction,
                "total_energy_mj": result.total_energy_j / 1e6,
            }
            if result.faults is not None:
                for key, value in result.faults.items():
                    row[key] = float(value)
            out[name] = row
        return out


def _recovery_job(
        payload: "tuple[str, RecoveryScenarioConfig]") -> EnvironmentResult:
    """Spawn-safe variant worker: one matched run per payload.

    The cluster config and hazard model are frozen, stateless recipes,
    so rebuilding them per worker is byte-identical to sharing one
    instance across the three runs.
    """
    variant, config = payload
    cluster = config.cluster_config()
    hazard = config.hazard_model()
    if variant == "naive":
        naive_config = SmartOClockConfig(
            control_interval_s=cluster.tick_s,
            oc_budget_fraction=cluster.oc_budget_fraction,
            enable_proactive_scaleout=False).as_naive()
        return run_environment(
            "SmartOClock", cluster, soc_config=naive_config,
            hazard_model=hazard, fault_seed=config.seed,
            label="NaiveOClock")
    if variant == "smart":
        return run_environment(
            "SmartOClock", cluster, hazard_model=hazard,
            fault_seed=config.seed)
    restart_plan = FaultPlan(
        soa_restarts=(SoaRestart(at_s=config.soa_restart_at_s),))
    return run_environment(
        "SmartOClock", cluster, hazard_model=hazard,
        fault_plan=restart_plan, fault_seed=config.seed,
        label="SmartOClock/restored")


def recovery_experiment(
        config: Optional[RecoveryScenarioConfig] = None, *,
        workers: Optional[int] = 1
) -> RecoveryExperimentResult:
    """Run the matched triple under one crash seed.

    The three variants share nothing mutable, so they shard over a
    spawn pool (``workers``) with a deterministic merge.
    """
    config = config or RecoveryScenarioConfig()
    naive, smart, smart_restored = run_jobs(
        _recovery_job,
        [("naive", config), ("smart", config), ("smart_restored", config)],
        workers=workers)
    return RecoveryExperimentResult(
        naive=naive, smart=smart, smart_restored=smart_restored)


def format_recovery_report(result: RecoveryExperimentResult,
                           as_json: bool = False) -> str:
    """Fixed-precision report (stable across repeated runs).  With
    ``as_json`` the metrics dict is emitted as canonical JSON, which CI
    diffs across repeats to assert determinism."""
    metrics = result.metrics()
    if as_json:
        return json.dumps(metrics, sort_keys=True, indent=2)
    names = [name for name, _ in result.runs]
    keys = sorted(set().union(*(metrics[n] for n in names)))
    header = f"{'metric':<28}" + "".join(f"{n:>16}" for n in names)
    lines = [header]
    for key in keys:
        cells = []
        for name in names:
            value = metrics[name].get(key)
            cells.append("-" if value is None else f"{value:.6g}")
        lines.append(f"{key:<28}" + "".join(f"{c:>16}" for c in cells))
    lines.append(
        "safety: "
        + ("ok (racks inside the capping envelope, no restored sOA "
           "over-granted)" if result.safe
           else "VIOLATED (rack escaped its envelope or a restored sOA "
           "granted beyond its checkpointed budget)"))
    return "\n".join(lines)
