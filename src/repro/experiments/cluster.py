"""Cluster experiments (paper §V-A: Figs. 12–14 and the constrained
studies).

Reproduces the 36-server testbed: one 28-server rack (14 servers running
latency-critical SocialNet deployments, 14 running power-hungry MLTrain)
plus 8 servers in a second rack used for scale-out.  Four environments run
the identical load trace:

* **Baseline** — fixed one instance per service, max turbo;
* **ScaleOut** — horizontal autoscaling on tail latency (VM boot delay);
* **ScaleUp**  — naive vertical scaling (overclock on high latency, no
  admission control);
* **SmartOClock** — the full platform: workload-aware overclocking with
  admission control plus proactive scale-out as the fallback.

Latency is aggregated exactly: each tick contributes its closed-form
response-time tail to a per-class mixture, whose quantiles and SLO-miss
mass are computed by bisection — no per-request sampling noise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.autoscale.scaler import (
    HorizontalAutoscaler,
    ScalerConfig,
    VerticalScaler,
)
from repro.cluster.capping import RackPowerManager
from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import (
    MetricsTriggerPolicy,
    OverclockSchedule,
)
from repro.faults import FaultInjector, FaultPlan
from repro.reliability.hazard import HazardModel
from repro.workloads.loadgen import ConstantPattern, NoisyPattern, SpikePattern
from repro.workloads.microservices import (
    SOCIALNET_SERVICES,
    MicroserviceDeployment,
    MicroserviceSpec,
)
from repro.workloads.mltrain import MLTrainJob
from repro.workloads.queueing import MMcQueue

__all__ = [
    "ClusterConfig",
    "ClassMetrics",
    "EnvironmentResult",
    "run_environment",
    "cluster_experiment",
    "power_constrained_experiment",
    "overclock_constrained_experiment",
    "ENVIRONMENTS",
]

TURBO_GHZ = DEFAULT_POWER_MODEL.plan.turbo_ghz
OVERCLOCK_GHZ = DEFAULT_POWER_MODEL.plan.overclock_max_ghz
ENVIRONMENTS = ("Baseline", "ScaleOut", "ScaleUp", "SmartOClock")

_RHO_CLAMP = 0.98
_OVERLOAD_SLOPE = 40.0


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for the §V-A experiments."""

    n_lc_servers: int = 14
    n_ml_servers: int = 14
    n_scaleout_servers: int = 8
    duration_s: float = 7200.0
    tick_s: float = 10.0
    peak_start_s: float = 2400.0
    peak_duration_s: float = 2400.0
    base_level: float = 0.35
    # Peak load per class as a multiple of each service's *SLO-critical
    # load* (the ρ at which its P99 hits the SLO at turbo): low is
    # comfortable, medium marginal, high needs corrective action.
    load_fractions: tuple[tuple[str, float], ...] = (
        ("low", 0.60), ("medium", 1.00), ("high", 1.60))
    # Services within a class span this multiplicative range around the
    # class fraction (real deployments are not uniform; the spread is what
    # makes overclocking bridge an instance boundary for some services and
    # not others).
    class_spread: tuple[float, float] = (0.72, 1.28)
    class_counts: tuple[tuple[str, int], ...] = (
        ("low", 5), ("medium", 5), ("high", 4))
    load_noise_sigma: float = 0.04
    ml_cores: int = 56
    ml_utilization: float = 0.95
    max_instances: int = 6
    boot_delay_s: float = 240.0
    # None → generous limit (never capping); otherwise a multiple of the
    # rack's estimated baseline peak power.
    rack_limit_factor: Optional[float] = None
    oc_budget_fraction: float = 0.10
    proactive_scaleout: bool = True
    # Workload-intelligence trigger: "metrics" (reactive, default),
    # "schedule" (the known peak window is declared ahead of time), or
    # "both" (the paper notes workloads can combine them).
    wi_trigger: str = "metrics"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_lc_servers < 1 or self.n_ml_servers < 0:
            raise ValueError("need at least one LC server")
        if sum(n for _, n in self.class_counts) != self.n_lc_servers:
            raise ValueError("class_counts must sum to n_lc_servers")
        if self.tick_s <= 0 or self.duration_s <= self.tick_s:
            raise ValueError("bad tick/duration")
        if self.wi_trigger not in ("metrics", "schedule", "both"):
            raise ValueError(
                f"wi_trigger must be 'metrics', 'schedule' or 'both', "
                f"got {self.wi_trigger!r}")


# ---------------------------------------------------------------------------
# Exact latency aggregation: mixtures of per-tick closed-form tails
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _TickEntry:
    weight: float           # requests contributed (rate * dt)
    lam: float              # per-instance arrival rate (possibly clamped)
    mu: float               # per-worker service rate at the tick's freq
    servers: int
    overload_scale: float   # latency multiplier when rho exceeded clamp
    slo_ms: float


class LatencyAggregator:
    """Request-weighted mixture of per-tick response-time distributions."""

    def __init__(self) -> None:
        self._entries: list[_TickEntry] = []
        self._total_weight = 0.0

    def add_tick(self, *, weight: float, offered_rho: float, mu: float,
                 servers: int, slo_ms: float) -> None:
        if weight <= 0:
            return
        rho = min(offered_rho, _RHO_CLAMP)
        scale = 1.0
        if offered_rho > _RHO_CLAMP:
            scale = 1.0 + _OVERLOAD_SLOPE * (offered_rho - _RHO_CLAMP)
        lam = rho * servers * mu
        self._entries.append(_TickEntry(weight, lam, mu, servers, scale,
                                        slo_ms))
        self._total_weight += weight

    @property
    def total_requests(self) -> float:
        return self._total_weight

    def _tail_at(self, entry: _TickEntry, t_ms: float) -> float:
        queue = MMcQueue(entry.lam, entry.mu, entry.servers)
        t = (t_ms / 1000.0) / entry.overload_scale
        return queue.response_tail(t)

    def tail(self, t_ms: float) -> float:
        """P(latency > t) over the whole mixture."""
        if self._total_weight == 0:
            raise ValueError("no requests recorded")
        mass = sum(e.weight * self._tail_at(e, t_ms) for e in self._entries)
        return mass / self._total_weight

    def quantile_ms(self, q: float) -> float:
        """Analytic q-quantile of the latency mixture, by bisecting the
        closed-form tail until ``P(latency <= t) >= q``.

        This is a *distribution* quantile, not a sample quantile — the
        analytic counterpart of the project's exact-sample convention
        (:func:`repro.sim.metrics.empirical_quantile`); on samples drawn
        from the same mixture the two converge as n grows.  ``q`` is
        open-interval (0, 1): the mixture's support is unbounded, so
        q=1 has no finite answer.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1): {q}")
        if self._total_weight == 0:
            raise ValueError("no requests recorded")
        target = 1.0 - q
        lo, hi = 0.0, 1.0
        while self.tail(hi) > target:
            hi *= 2.0
            if hi > 1e7:
                raise RuntimeError("quantile search diverged")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.tail(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def p99_ms(self) -> float:
        return self.quantile_ms(0.99)

    def mean_ms(self) -> float:
        if self._total_weight == 0:
            raise ValueError("no requests recorded")
        total = 0.0
        for e in self._entries:
            queue = MMcQueue(e.lam, e.mu, e.servers)
            total += e.weight * queue.mean_response() * 1000.0 \
                * e.overload_scale
        return total / self._total_weight

    def missed_slo_fraction(self) -> float:
        """Fraction of requests above their service's SLO."""
        if self._total_weight == 0:
            raise ValueError("no requests recorded")
        mass = sum(e.weight * self._tail_at(e, e.slo_ms)
                   for e in self._entries)
        return mass / self._total_weight


# ---------------------------------------------------------------------------
# Experiment state
# ---------------------------------------------------------------------------

@dataclass
class _Service:
    name: str
    spec: MicroserviceSpec
    load_class: str
    pattern: NoisyPattern
    deployment: MicroserviceDeployment
    home_server: Server
    vms: list[VirtualMachine]
    floor_ms: float = 0.0  # unavoidable unloaded P99 at turbo
    scaler: Optional[HorizontalAutoscaler] = None
    vscaler: Optional[VerticalScaler] = None
    wi_locals: dict[int, object] = field(default_factory=dict)

    def headroom_latency(self, p99_ms: float) -> float:
        """Map a P99 onto the floor→SLO band, rescaled to SLO units.

        Scaling thresholds are fractions of the SLO, but a service's P99
        can never drop below its unloaded floor (≈ ln(100)× the mean
        service time) — thresholds must measure *consumed headroom*, not
        raw latency, or fragile services trigger scaling forever.
        """
        band = self.spec.slo_ms - self.floor_ms
        normalized = max(0.0, (p99_ms - self.floor_ms) / band)
        return normalized * self.spec.slo_ms


@dataclass(frozen=True)
class ClassMetrics:
    """One bar group of Figs. 12-14."""

    p99_ms: float
    mean_ms: float
    missed_slo_fraction: float
    avg_instances: float
    home_server_energy_j: float


@dataclass(frozen=True)
class EnvironmentResult:
    """Everything one environment run produces."""

    environment: str
    per_class: dict[str, ClassMetrics]
    total_energy_j: float
    ml_throughput: float          # samples/s averaged across ML servers
    cap_events: int
    overclock_grants: int
    overclock_rejections: int
    scale_outs: int
    missed_slo_ticks_fraction: float  # fraction of (service,tick) over SLO
    # Worst post-enforcement rack draw as a fraction of its limit (> 1
    # would mean an uncontrolled limit violation survived capping).
    peak_rack_power_fraction: float = 0.0
    # Merged fault/recovery counters (None when the run had neither an
    # injector nor a crash/recovery lifecycle).
    faults: Optional[dict[str, int]] = None
    # Crash/recovery availability metrics (defaults describe a run with
    # no lifecycle engaged: nothing crashed, everything stayed up).
    server_crashes: int = 0
    server_downtime_s: float = 0.0
    server_uptime_fraction: float = 1.0
    vm_downtime_s: float = 0.0
    # Overclock-attributable wear across the fleet: reference-seconds of
    # wear in excess of the baseline busy wear (zero for a run that
    # never leaves rated voltage).
    wear_accrued_s: float = 0.0
    # Restores whose re-derived budget exceeded the checkpointed one —
    # must stay 0 (a restored sOA may never grant beyond what its last
    # assignment provably allowed).
    restored_overgrants: int = 0

    def avg_instances_overall(self) -> float:
        return float(np.mean([m.avg_instances
                              for m in self.per_class.values()]))


def _build_services(config: ClusterConfig, lc_servers: list[Server],
                    rng: np.random.Generator) -> list[_Service]:
    classes: list[tuple[str, float]] = []
    lo, hi = config.class_spread
    for name, count in config.class_counts:
        spreads = (np.linspace(lo, hi, count) if count > 1
                   else np.array([1.0]))
        classes.extend((name, float(s)) for s in spreads)
    services: list[_Service] = []
    for i, (load_class, spread) in enumerate(classes):
        spec = SOCIALNET_SERVICES[i % len(SOCIALNET_SERVICES)]
        fraction = dict(config.load_fractions)[load_class] * spread
        peak_rate = (fraction * spec.rho_for_slo(TURBO_GHZ)
                     * spec.capacity(TURBO_GHZ))
        base = SpikePattern(
            [(config.peak_start_s, config.peak_duration_s, 1.0)],
            base=ConstantPattern(config.base_level),
            peak_rate=peak_rate)
        pattern = NoisyPattern(base, np.random.default_rng(rng.integers(2**31)),
                               sigma=config.load_noise_sigma,
                               noise_period=max(30.0, config.tick_s))
        deployment = MicroserviceDeployment(spec, initial_instances=1)
        home = lc_servers[i]
        vm = VirtualMachine(spec.workers, name=f"svc{i:02d}-inst0",
                            priority=10, workload=spec.name)
        home.place_vm(vm)
        # Unloaded P99 floor at turbo: queue at vanishing load.
        floor_queue = MMcQueue(1e-9, spec.service_rate(TURBO_GHZ),
                               spec.workers)
        services.append(_Service(
            name=f"svc{i:02d}-{spec.name}", spec=spec,
            load_class=load_class, pattern=pattern,
            deployment=deployment, home_server=home, vms=[vm],
            floor_ms=floor_queue.p99_response() * 1000.0))
    return services


def _place_scaleout_vm(service: _Service, pool: list[Server],
                       index: int) -> Optional[VirtualMachine]:
    vm = VirtualMachine(service.spec.workers,
                        name=f"{service.name}-inst{index}",
                        priority=10, workload=service.spec.name)
    for server in pool:
        if server.free_cores >= vm.n_cores:
            server.place_vm(vm)
            return vm
    return None


def run_environment(environment: str, config: ClusterConfig, *,
                    soc_config: Optional[SmartOClockConfig] = None,
                    label: Optional[str] = None,
                    fault_plan: Optional[FaultPlan] = None,
                    fault_seed: Optional[int] = None,
                    hazard_model: Optional[HazardModel] = None
                    ) -> EnvironmentResult:
    """Run one environment over the whole load trace.

    ``soc_config`` overrides the platform configuration for the
    SmartOClock environment (used by the constrained studies to run the
    NaiveOClock ablation); ``label`` renames the result.  ``fault_plan``
    injects control-plane failures (gOA outages, channel loss, telemetry
    dropouts, misprediction skew) into the SmartOClock environment —
    other environments have no control plane to fault.  ``hazard_model``
    engages the crash/recovery lifecycle: servers can die from
    wear/voltage-driven hazard draws (seeded by ``fault_seed`` falling
    back to ``config.seed``, so matched runs share a crash schedule).
    """
    if environment not in ENVIRONMENTS:
        raise ValueError(f"unknown environment {environment!r}; "
                         f"choose from {ENVIRONMENTS}")
    if fault_plan is not None and environment != "SmartOClock":
        raise ValueError(
            "fault injection targets the SmartOClock control plane; "
            f"the {environment} environment has none")
    if hazard_model is not None and environment != "SmartOClock":
        raise ValueError(
            "the crash/recovery lifecycle rides on the SmartOClock "
            f"platform; the {environment} environment has none")
    injector: Optional[FaultInjector] = None
    if fault_plan is not None and not fault_plan.empty:
        injector = FaultInjector(
            fault_plan,
            seed=config.seed if fault_seed is None else fault_seed)
    rng = np.random.default_rng(config.seed)
    model = DEFAULT_POWER_MODEL

    # --- topology ---------------------------------------------------------
    n_rack1 = config.n_lc_servers + config.n_ml_servers
    lc_servers = [Server(f"lc-{i:02d}", model)
                  for i in range(config.n_lc_servers)]
    ml_servers = [Server(f"ml-{i:02d}", model)
                  for i in range(config.n_ml_servers)]
    pool = [Server(f"so-{i:02d}", model)
            for i in range(config.n_scaleout_servers)]
    # Estimate the baseline peak power to size the rack limit.
    ml_power = model.uniform_server_watts(config.ml_utilization, TURBO_GHZ,
                                          config.ml_cores)
    lc_power = model.uniform_server_watts(0.9, TURBO_GHZ, 12)
    baseline_peak = (config.n_ml_servers * ml_power
                     + config.n_lc_servers * lc_power)
    if config.rack_limit_factor is None:
        limit1 = n_rack1 * model.max_server_watts()  # never binds
    else:
        limit1 = config.rack_limit_factor * baseline_peak
    rack1 = Rack("rack-main", limit1)
    for server in lc_servers + ml_servers:
        rack1.add_server(server)
    rack2 = Rack("rack-scaleout",
                 max(1.0, config.n_scaleout_servers)
                 * model.max_server_watts())
    for server in pool:
        rack2.add_server(server)
    datacenter = Datacenter("cluster-v a")
    datacenter.add_rack(rack1)
    datacenter.add_rack(rack2)

    # --- workloads ----------------------------------------------------------
    services = _build_services(config, lc_servers, rng)
    ml_jobs: list[tuple[Server, VirtualMachine, MLTrainJob]] = []
    for server in ml_servers:
        vm = VirtualMachine(config.ml_cores, name=f"{server.server_id}-job",
                            priority=1, workload="mltrain",
                            utilization=config.ml_utilization)
        server.place_vm(vm)
        ml_jobs.append((server, vm, MLTrainJob(
            base_throughput=1000.0, utilization=config.ml_utilization)))

    # --- control planes ------------------------------------------------------
    scaler_config = ScalerConfig(high_fraction=0.8, low_fraction=0.25,
                                 consecutive_ticks=2, scale_in_ticks=18,
                                 max_instances=config.max_instances,
                                 boot_delay_s=config.boot_delay_s,
                                 cooldown_s=120.0)
    platform: Optional[SmartOClockPlatform] = None
    managers: list[RackPowerManager] = []
    if environment == "SmartOClock":
        if soc_config is None:
            soc_config = SmartOClockConfig(
                control_interval_s=config.tick_s,
                oc_budget_fraction=config.oc_budget_fraction,
                enable_proactive_scaleout=config.proactive_scaleout)
        platform = SmartOClockPlatform(
            datacenter, soc_config, fault_injector=injector,
            hazard_model=hazard_model,
            recovery_seed=config.seed if fault_seed is None else fault_seed)
        managers = list(platform.rack_managers.values())
        # SmartOClock scales out only as a fallback: the reactive band is
        # set past the overclocking band (§IV-D: the scale-up threshold is
        # set before scale-out).
        # The fallback must be both higher-threshold and slower than the
        # overclocking trigger (0.7 / 3 ticks): overclocking gets the
        # first chance to absorb the spike, and only a persistent
        # violation scales out.
        fallback_config = dataclasses.replace(scaler_config,
                                              high_fraction=0.9,
                                              consecutive_ticks=4)
        if config.wi_trigger in ("schedule", "both"):
            # The peak window is known ahead of time (time-of-day of the
            # reference Monday the run starts on); overclocking is
            # reserved for exactly that window.
            start_h = config.peak_start_s / 3600.0
            end_h = min(24.0, (config.peak_start_s
                               + config.peak_duration_s) / 3600.0)
            schedule = OverclockSchedule([((0,), start_h, end_h)])
        else:
            schedule = None
        for service in services:
            metrics_policy = MetricsTriggerPolicy(
                start_fraction=0.7, stop_fraction=0.15, consecutive=2)
            agent = platform.register_service(
                service.name,
                metrics_policy=(None if config.wi_trigger == "schedule"
                                else metrics_policy),
                schedule=schedule,
                rejections_per_scale_out=1)
            service.scaler = HorizontalAutoscaler(
                fallback_config, service.spec.slo_ms, initial_instances=1)
            scaler = service.scaler
            agent.scale_out_handler = (
                lambda now, n, s=scaler: s.request_scale_out(now, n))
            local = platform.attach_vm(service.name, service.vms[0],
                                       target_freq_ghz=OVERCLOCK_GHZ,
                                       priority=10)
            service.wi_locals[service.vms[0].vm_id] = local
    else:
        managers = [RackPowerManager(rack1), RackPowerManager(rack2)]
        for service in services:
            if environment == "ScaleOut":
                service.scaler = HorizontalAutoscaler(
                    scaler_config, service.spec.slo_ms, initial_instances=1)
            elif environment == "ScaleUp":
                service.vscaler = VerticalScaler(
                    scaler_config, service.spec.slo_ms,
                    turbo_ghz=TURBO_GHZ, max_ghz=OVERCLOCK_GHZ)

    # --- accounting -----------------------------------------------------------
    aggregators = {name: LatencyAggregator()
                   for name, _ in config.class_counts}
    instance_sums = {name: 0.0 for name, _ in config.class_counts}
    all_servers = lc_servers + ml_servers + pool
    energy = {server.server_id: 0.0 for server in all_servers}
    ever_active: set[str] = set()
    slo_ticks = 0
    total_service_ticks = 0
    last_budget_update = -float("inf")
    peak_fraction = 0.0

    ticks = int(config.duration_s / config.tick_s)
    for i in range(ticks):
        now = i * config.tick_s

        # 1. loads + frequency sync (instances follow their VM's cores).
        for service in services:
            rate = service.pattern.rate(now)
            service.deployment.set_load(rate)
            for instance, vm in zip(service.deployment.instances,
                                    service.vms):
                instance.set_frequency(vm.freq_ghz or TURBO_GHZ)

        # 2. observe latency and act (thresholds are on consumed headroom).
        for service in services:
            p99 = service.headroom_latency(
                service.deployment.p99_latency_ms())
            slo = service.spec.slo_ms
            if environment == "ScaleOut":
                service.scaler.observe(now, p99)
            elif environment == "ScaleUp":
                target = service.vscaler.observe(now, p99)
                home = service.vms[0].server
                if home is not None:
                    home.set_vm_frequency(service.vms[0], target)
            elif environment == "SmartOClock":
                platform.services[service.name].observe(now, p99, slo)
                service.scaler.observe(now, p99)
            if service.scaler is not None:
                active = service.scaler.active_instances(now)
                _sync_instances(service, active, pool, platform, now)

        # 3. utilization sync + ML progress.
        for service in services:
            for instance, vm in zip(service.deployment.instances,
                                    service.vms):
                vm.set_utilization(instance.utilization)
        for server, vm, job in ml_jobs:
            job.advance(config.tick_s, vm.freq_ghz or TURBO_GHZ)

        # 4. platform / physical plant.
        if platform is not None:
            platform.tick(now, config.tick_s)
            # Periodic gOA cycles (the weekly cadence compressed to the
            # experiment's timescale) once enough telemetry exists.
            if now >= config.peak_start_s / 2 and \
                    now - last_budget_update >= 600.0:
                platform.force_budget_update(now)
                last_budget_update = now
        else:
            for manager in managers:
                manager.sample(now)
            for server in all_servers:
                server.advance(config.tick_s)
        for rack in (rack1, rack2):
            peak_fraction = max(peak_fraction, rack.power_watts()
                                / rack.power_limit_watts)

        # 5. metrics.
        for service in services:
            aggregator = aggregators[service.load_class]
            instance = service.deployment.instances[0]
            rate = service.deployment.total_rate
            aggregator.add_tick(
                weight=rate * config.tick_s,
                offered_rho=instance.offered_rho,
                mu=service.spec.service_rate(instance.freq_ghz),
                servers=service.spec.workers,
                slo_ms=service.spec.slo_ms)
            instance_sums[service.load_class] += service.deployment.n_instances
            total_service_ticks += 1
            if service.deployment.p99_latency_ms() > service.spec.slo_ms:
                slo_ticks += 1
        for server in all_servers:
            if server.vms:
                ever_active.add(server.server_id)
            # A server stays powered once it has been brought into service
            # (clouds do not power servers off after a scale-in).  The
            # per-tick read is O(1) against the cached server wattage.
            if server.server_id in ever_active:
                energy[server.server_id] += (server.power_watts()
                                             * config.tick_s)

    # --- reduce ---------------------------------------------------------------
    per_class: dict[str, ClassMetrics] = {}
    class_sizes = dict(config.class_counts)
    for name, count in config.class_counts:
        home_energy = [energy[s.home_server.server_id]
                       for s in services if s.load_class == name]
        per_class[name] = ClassMetrics(
            p99_ms=aggregators[name].p99_ms(),
            mean_ms=aggregators[name].mean_ms(),
            missed_slo_fraction=aggregators[name].missed_slo_fraction(),
            avg_instances=instance_sums[name] / (ticks * count),
            home_server_energy_j=float(np.mean(home_energy)))

    grants = rejections = 0
    faults: Optional[dict[str, int]] = None
    server_crashes = restored_overgrants = 0
    server_downtime = vm_downtime = wear_accrued = 0.0
    uptime_fraction = 1.0
    if platform is not None:
        stats = platform.grant_statistics()
        grants = stats["granted"]
        rejections = (stats["rejected_power"]
                      + stats["rejected_lifetime"]
                      + stats["rejected_quarantine"])
        wear_accrued = sum(c.wear_seconds - c.busy_seconds
                           for soa in platform.soas.values()
                           for c in soa.wear_counters)
        lifecycle = platform.lifecycle
        if lifecycle is not None:
            lifecycle.finish(config.duration_s)
            server_crashes = lifecycle.counters.server_crashes
            server_downtime = lifecycle.server_downtime.total_downtime_s
            vm_downtime = lifecycle.vm_downtime.total_downtime_s
            uptime_fraction = 1.0 - server_downtime / (
                len(all_servers) * config.duration_s)
            restored_overgrants = sum(
                1 for r in lifecycle.restore_reports if r.overgranted)
        faults = platform.fault_counters()
    scale_outs = sum(s.scaler.scale_out_count for s in services
                     if s.scaler is not None)
    ml_rate = float(np.mean([job.average_throughput()
                             for _, _, job in ml_jobs])) if ml_jobs else 0.0
    return EnvironmentResult(
        environment=label or environment,
        per_class=per_class,
        # sorted(): set iteration is hash-randomized across processes,
        # and float summation order must not leak into the result.
        total_energy_j=sum(energy[sid] for sid in sorted(ever_active)),
        ml_throughput=ml_rate,
        cap_events=sum(len(m.cap_events) for m in managers),
        overclock_grants=grants,
        overclock_rejections=rejections,
        scale_outs=scale_outs,
        missed_slo_ticks_fraction=slo_ticks / max(1, total_service_ticks),
        peak_rack_power_fraction=peak_fraction,
        faults=faults,
        server_crashes=server_crashes,
        server_downtime_s=server_downtime,
        server_uptime_fraction=uptime_fraction,
        vm_downtime_s=vm_downtime,
        wear_accrued_s=wear_accrued,
        restored_overgrants=restored_overgrants)


def _sync_instances(service: _Service, active: int, pool: list[Server],
                    platform: Optional[SmartOClockPlatform],
                    now: float) -> None:
    """Grow/shrink the service's VM fleet to ``active`` instances."""
    active = max(1, active)
    while len(service.vms) < active:
        vm = _place_scaleout_vm(service, pool, len(service.vms))
        if vm is None:
            break  # pool exhausted
        service.vms.append(vm)
        if platform is not None:
            local = platform.attach_vm(service.name, vm,
                                       target_freq_ghz=OVERCLOCK_GHZ,
                                       priority=10)
            service.wi_locals[vm.vm_id] = local
    while len(service.vms) > active:
        vm = service.vms.pop()
        if platform is not None:
            local = service.wi_locals.pop(vm.vm_id, None)
            if local is not None:
                local.stop(now)
                platform.services[service.name].detach(local)
        if vm.server is not None:
            vm.server.remove_vm(vm)
    service.deployment.scale_to(len(service.vms))


def cluster_experiment(config: Optional[ClusterConfig] = None
                       ) -> dict[str, EnvironmentResult]:
    """Figs. 12-14: all four environments on the same load trace."""
    config = config or ClusterConfig()
    return {env: run_environment(env, config) for env in ENVIRONMENTS}


# ---------------------------------------------------------------------------
# §V-A constrained studies
# ---------------------------------------------------------------------------

def power_constrained_experiment(
        config: Optional[ClusterConfig] = None, *,
        rack_limit_factor: float = 0.97
) -> dict[str, EnvironmentResult]:
    """Reduced rack limit: NaiveOClock vs SmartOClock (§V-A).

    NaiveOClock grants every request (no admission control) and suffers
    capping; the paper reports SmartOClock reducing SocialNet tail latency
    and improving MLTrain throughput in this regime.
    """
    base = config or ClusterConfig()
    constrained = dataclasses.replace(base,
                                      rack_limit_factor=rack_limit_factor)
    naive_config = SmartOClockConfig(
        control_interval_s=constrained.tick_s,
        oc_budget_fraction=constrained.oc_budget_fraction,
        enable_proactive_scaleout=False).as_naive()
    naive = run_environment("SmartOClock", constrained,
                            soc_config=naive_config, label="NaiveOClock")
    # In a deliberately power-constrained rack the operator narrows the
    # safety margin (the default 5 % band would forbid overclocking at
    # peak altogether); the differentiator vs NaiveOClock is that the
    # admission control and warnings keep the rack cap-free.
    smart_config = SmartOClockConfig(
        control_interval_s=constrained.tick_s,
        oc_budget_fraction=constrained.oc_budget_fraction,
        enable_proactive_scaleout=constrained.proactive_scaleout,
        warning_fraction=0.985)
    smart = run_environment("SmartOClock", constrained,
                            soc_config=smart_config)
    return {"NaiveOClock": naive, "SmartOClock": smart}


def overclock_constrained_experiment(
        config: Optional[ClusterConfig] = None, *,
        budget_scales: tuple[float, ...] = (0.75, 0.50, 0.25)
) -> dict[float, dict[str, float]]:
    """Restricted overclocking budgets: reactive vs proactive scale-out.

    The overclocking budget is sized so the peak *just* fits at scale 1.0,
    then reduced to 75/50/25 %.  Reported metric: fraction of service
    ticks above SLO (the paper's "misses the SLO for x% of time").
    """
    base = config or ClusterConfig()
    # Budget that exactly covers the peak window once per epoch-week.
    full_budget = base.peak_duration_s / (7 * 86400.0)
    out: dict[float, dict[str, float]] = {}
    for scale in budget_scales:
        row: dict[str, float] = {}
        for mode, proactive in (("reactive", False), ("proactive", True)):
            tuned = dataclasses.replace(
                base,
                oc_budget_fraction=scale * full_budget,
                proactive_scaleout=proactive)
            result = run_environment("SmartOClock", tuned)
            row[mode] = result.missed_slo_ticks_fraction
        out[scale] = row
    return out
