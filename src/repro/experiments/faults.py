"""Fault-injection scenario: the paper's graceful-degradation claim.

§III Q5 / §IV-C argue SmartOClock is decentralized: when the gOA or its
communication path fails, sOAs keep enforcing their last-known budgets
and the rack stays inside its capping envelope — overclocking *quality*
degrades (stale budgets, missed demand shifts), rack *safety* does not.

This scenario runs two matched SmartOClock clusters on the identical
load trace and seed: one fault-free, one under a :class:`FaultPlan`
combining a gOA outage through the load peak, a lossy/delayed budget
channel, telemetry dropouts, and misprediction skew.  The comparison
reports cap events, SLO violations, grant throughput and the peak
post-enforcement rack draw; the run is deterministic, so CI can assert
bit-identical output across repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.cluster import ClusterConfig, EnvironmentResult, run_environment
from repro.experiments.parallel import run_jobs
from repro.faults import (
    FaultPlan,
    GoaOutage,
    MessageFault,
    MispredictionFault,
    TelemetryDropout,
)
from repro.faults.spec import FaultWindow

__all__ = [
    "FaultScenarioConfig",
    "FaultExperimentResult",
    "default_fault_plan",
    "fault_injection_experiment",
    "format_fault_report",
]


@dataclass(frozen=True)
class FaultScenarioConfig:
    """Knobs for the faulted-vs-fault-free comparison."""

    duration_s: float = 3600.0
    tick_s: float = 10.0
    seed: int = 0
    # The rack limit is mildly constrained so the capping envelope is a
    # live constraint rather than unreachable headroom.
    rack_limit_factor: float = 1.05
    # Faults: the gOA dies as the load peak begins and stays dead; the
    # channel is lossy and slow before that; telemetry flakes through the
    # first half; templates underpredict during the peak.
    message_drop_prob: float = 0.5
    message_delay_s: float = 30.0
    telemetry_drop_prob: float = 0.3
    misprediction_scale: float = 0.9

    def __post_init__(self) -> None:
        if self.duration_s < 6 * self.tick_s:
            raise ValueError("scenario too short to contain its phases")
        if not 0.0 <= self.message_drop_prob <= 1.0:
            raise ValueError(
                f"message_drop_prob must be in [0, 1]: "
                f"{self.message_drop_prob}")

    def cluster_config(self) -> ClusterConfig:
        """The matched cluster both runs share (peak in the middle
        third, so the outage window overlaps the interesting part)."""
        return ClusterConfig(
            duration_s=self.duration_s,
            tick_s=self.tick_s,
            peak_start_s=self.duration_s / 3.0,
            peak_duration_s=self.duration_s / 3.0,
            rack_limit_factor=self.rack_limit_factor,
            seed=self.seed)

    @property
    def outage_start_s(self) -> float:
        return self.duration_s / 3.0


def default_fault_plan(config: FaultScenarioConfig) -> FaultPlan:
    """The scenario's composite failure: every fault class at once."""
    outage = FaultWindow(config.outage_start_s, config.duration_s)
    pre_outage = FaultWindow(0.0, config.outage_start_s)
    faults = FaultPlan(
        goa_outages=(GoaOutage(outage),),
        message_faults=(MessageFault(
            pre_outage, drop_prob=config.message_drop_prob,
            delay_s=config.message_delay_s),),
        telemetry_dropouts=(TelemetryDropout(
            FaultWindow(0.0, config.duration_s / 2.0),
            drop_prob=config.telemetry_drop_prob),),
        mispredictions=(MispredictionFault(
            FaultWindow(config.outage_start_s, config.duration_s),
            scale=config.misprediction_scale),),
    )
    return faults


@dataclass(frozen=True)
class FaultExperimentResult:
    """Matched fault-free vs faulted SmartOClock runs."""

    fault_free: EnvironmentResult
    faulted: EnvironmentResult
    plan: FaultPlan

    def metrics(self) -> dict[str, dict[str, float]]:
        """Flat numeric summary (also the determinism fingerprint: two
        runs with the same config and seed must produce this exactly)."""
        out: dict[str, dict[str, float]] = {}
        for name, result in (("fault_free", self.fault_free),
                             ("faulted", self.faulted)):
            row: dict[str, float] = {
                "cap_events": float(result.cap_events),
                "grants": float(result.overclock_grants),
                "rejections": float(result.overclock_rejections),
                "scale_outs": float(result.scale_outs),
                "missed_slo_ticks_fraction":
                    result.missed_slo_ticks_fraction,
                "peak_rack_power_fraction":
                    result.peak_rack_power_fraction,
                "total_energy_mj": result.total_energy_j / 1e6,
            }
            for cls, metrics in result.per_class.items():
                row[f"p99_ms_{cls}"] = metrics.p99_ms
                row[f"missed_slo_{cls}"] = metrics.missed_slo_fraction
            if result.faults is not None:
                for key, value in result.faults.items():
                    row[key] = float(value)
            out[name] = row
        return out


def _fault_job(payload: "tuple[FaultScenarioConfig, Optional[FaultPlan]]"
               ) -> EnvironmentResult:
    """Spawn-safe variant worker: fault-free (plan None) or faulted."""
    config, plan = payload
    cluster = config.cluster_config()
    if plan is None:
        return run_environment("SmartOClock", cluster,
                               label="SmartOClock/fault-free")
    return run_environment("SmartOClock", cluster, fault_plan=plan,
                           label="SmartOClock/faulted")


def fault_injection_experiment(
        config: Optional[FaultScenarioConfig] = None, *,
        plan: Optional[FaultPlan] = None,
        workers: Optional[int] = 1) -> FaultExperimentResult:
    """Run the matched pair.  ``plan`` overrides the default composite
    fault plan (pass a plan with only a gOA outage to isolate it); the
    plan is resolved here and shipped in the payload, so both workers
    see the identical plan object state."""
    config = config or FaultScenarioConfig()
    plan = plan if plan is not None else default_fault_plan(config)
    fault_free, faulted = run_jobs(
        _fault_job, [(config, None), (config, plan)], workers=workers)
    return FaultExperimentResult(fault_free=fault_free, faulted=faulted,
                                 plan=plan)


def format_fault_report(result: FaultExperimentResult) -> str:
    """Fixed-precision text report (stable across repeated runs)."""
    metrics = result.metrics()
    rows = sorted(set(metrics["fault_free"]) | set(metrics["faulted"]))
    lines = [f"{'metric':<28}{'fault-free':>14}{'faulted':>14}"]
    for key in rows:
        cells = []
        for name in ("fault_free", "faulted"):
            value = metrics[name].get(key)
            cells.append("-" if value is None else f"{value:.6g}")
        lines.append(f"{key:<28}{cells[0]:>14}{cells[1]:>14}")
    faulted = result.faulted
    safe = faulted.peak_rack_power_fraction <= 1.0 + 1e-9
    lines.append(
        "degradation: "
        + ("graceful (rack stayed within the capping envelope)" if safe
           else "UNSAFE (post-enforcement draw exceeded the rack limit)"))
    return "\n".join(lines)
