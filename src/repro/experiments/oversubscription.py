"""Oversubscription ablation + mispredict stress (ROADMAP item 2).

Two complementary views of the risk-aware oversubscription layer:

* **Confidence-level ablation** (trace path): the Table-I high-power
  cluster class — the only one where oversubscribed headroom is
  genuinely contested — swept over the risk ladder with the streaming
  (rack, policy) iterator.  The expected shape is the paper's
  oversubscription tradeoff: a higher risk level admits more headroom,
  strands fewer watts under the physical limit, and pays for it in
  capping events.  Both axes are monotone along the ladder, and the
  conservative setting must stay inside the Table-I envelope (no worse
  than NaiveOClock's cap count on the same fleet).

* **Mispredict stress** (platform path, satellite of the PR 3–4 fault
  machinery): four matched cluster runs — SmartOClock, NaiveOClock,
  SmartOClock+OSub fault-free, and SmartOClock+OSub under a
  :class:`~repro.faults.spec.MispredictionFault` window that skews sOA
  power predictions through the load peak.  The faulted oversubscribed
  run must degrade gracefully: capping absorbs the mistake (the rack
  never exceeds its limit post-enforcement) and its cap-event count
  stays within the envelope the naive baseline sets.

Everything is deterministic: the CI smoke runs the experiment twice and
diffs the canonical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.core.config import SmartOClockConfig
from repro.core.oversubscription import RISK_ORDER
from repro.experiments.cluster import (
    ClusterConfig,
    EnvironmentResult,
    run_environment,
)
from repro.experiments.largescale import (
    PolicyScore,
    compare_policies_streaming,
)
from repro.experiments.parallel import run_jobs
from repro.faults import FaultPlan, MispredictionFault
from repro.faults.spec import FaultWindow
from repro.traces.synthetic import FleetConfig

__all__ = [
    "ABLATION_POLICIES",
    "OversubScenarioConfig",
    "OversubAblationResult",
    "OversubStressResult",
    "OversubExperimentResult",
    "oversubscription_ablation",
    "mispredict_stress",
    "oversubscription_experiment",
    "format_oversub_report",
]

#: Ablation sweep: both Table-I anchors (NaiveOClock bounds the cap
#: envelope from above, SmartOClock is the no-oversubscription baseline)
#: plus the full risk ladder.
ABLATION_POLICIES = ("NaiveOClock", "SmartOClock") + tuple(
    f"SmartOClock+OSub:{risk}" for risk in RISK_ORDER)


@dataclass(frozen=True)
class OversubScenarioConfig:
    """Knobs shared by the ablation sweep and the mispredict stress."""

    # --- trace-path ablation ---------------------------------------------
    n_racks: int = 2
    weeks: int = 2
    seed: int = 1
    servers_per_rack: int = 12
    # Table I's high-power class: racks run close enough to their limit
    # that admitted headroom is contested and the risk dial has
    # observable consequences.
    p99_util_range: tuple[float, float] = (0.86, 0.96)

    # --- platform-path stress --------------------------------------------
    duration_s: float = 1800.0
    tick_s: float = 10.0
    # Constrained rack: tight enough that the NaiveOClock anchor caps
    # through the peak (a meaningful envelope bound) while the
    # risk-aware runs stay under it.
    rack_limit_factor: float = 0.98
    # Templates underpredict by 10 % from the load peak onward — the
    # sOAs admit more than their budgets really hold.
    misprediction_scale: float = 0.9
    stress_risk_level: str = "conservative"

    def __post_init__(self) -> None:
        if self.weeks < 2:
            raise ValueError(
                f"weeks must be >= 2 (history + evaluation): {self.weeks}")
        if self.duration_s < 6 * self.tick_s:
            raise ValueError("stress scenario too short for its phases")
        if not 0.0 < self.misprediction_scale:
            raise ValueError(
                f"misprediction_scale must be > 0: "
                f"{self.misprediction_scale}")

    def fleet_config(self) -> FleetConfig:
        return FleetConfig(
            n_racks=self.n_racks, weeks=self.weeks, seed=self.seed,
            servers_per_rack_min=self.servers_per_rack,
            servers_per_rack_max=self.servers_per_rack,
            p99_util_beta=(2.0, 2.0),
            p99_util_range=self.p99_util_range,
            region="osub-high")

    def cluster_config(self) -> ClusterConfig:
        """The matched cluster all stress runs share (peak in the middle
        third, so the misprediction window overlaps it)."""
        return ClusterConfig(
            duration_s=self.duration_s,
            tick_s=self.tick_s,
            peak_start_s=self.duration_s / 3.0,
            peak_duration_s=self.duration_s / 3.0,
            rack_limit_factor=self.rack_limit_factor,
            seed=self.seed)

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(mispredictions=(MispredictionFault(
            FaultWindow(self.duration_s / 3.0, self.duration_s),
            scale=self.misprediction_scale),))


@dataclass(frozen=True)
class OversubAblationResult:
    """Risk-ladder sweep scores, keyed by policy name."""

    scores: dict[str, PolicyScore]

    @property
    def ladder(self) -> list[tuple[str, PolicyScore]]:
        return [(risk, self.scores[f"SmartOClock+OSub:{risk}"])
                for risk in RISK_ORDER]

    @property
    def monotone(self) -> bool:
        """Higher risk → no more stranded watts and no fewer cap events
        (the acceptance-criterion tradeoff, monotone along the ladder)."""
        rows = [score for _, score in self.ladder]
        return all(
            riskier.stranded_watts <= safer.stranded_watts + 1e-9
            and riskier.cap_events >= safer.cap_events
            for safer, riskier in zip(rows, rows[1:]))

    @property
    def envelope_ok(self) -> bool:
        """Conservative oversubscription stays inside the Table-I
        envelope: it must not cap more than the NaiveOClock anchor."""
        conservative = self.scores["SmartOClock+OSub:conservative"]
        return conservative.cap_events <= self.scores[
            "NaiveOClock"].cap_events


@dataclass(frozen=True)
class OversubStressResult:
    """Matched platform runs under the misprediction window."""

    smart: EnvironmentResult         # SmartOClock, no oversubscription
    naive: EnvironmentResult         # NaiveOClock envelope anchor
    osub: EnvironmentResult          # +OSub, fault-free
    osub_faulted: EnvironmentResult  # +OSub under misprediction skew

    @property
    def runs(self) -> tuple[tuple[str, EnvironmentResult], ...]:
        return (("smart", self.smart), ("naive", self.naive),
                ("osub", self.osub), ("osub_faulted", self.osub_faulted))

    @property
    def safe(self) -> bool:
        """Capping must absorb every oversubscription mistake: no run
        may leave its rack above the physical limit post-enforcement."""
        return all(r.peak_rack_power_fraction <= 1.0 + 1e-9
                   for _, r in self.runs)

    @property
    def envelope_ok(self) -> bool:
        """Graceful degradation: the faulted oversubscribed run caps no
        more than the naive always-overclock anchor."""
        return self.osub_faulted.cap_events <= self.naive.cap_events


@dataclass(frozen=True)
class OversubExperimentResult:
    """Ablation + stress, with the headline pass/fail verdicts."""

    ablation: OversubAblationResult
    stress: OversubStressResult

    @property
    def ok(self) -> bool:
        """The CI gate: conservative risk inside the Table-I envelope on
        both paths, every run capped safely, tradeoff monotone."""
        return (self.ablation.monotone and self.ablation.envelope_ok
                and self.stress.safe and self.stress.envelope_ok)

    def metrics(self) -> dict[str, dict[str, dict[str, float]]]:
        """Flat numeric summary (also the determinism fingerprint: two
        runs with the same config must produce this exactly)."""
        ablation: dict[str, dict[str, float]] = {}
        for name, score in self.ablation.scores.items():
            ablation[name] = {
                "cap_events": float(score.cap_events),
                "osub_cap_events": float(score.osub_cap_events),
                "success_rate": score.success_rate,
                "stranded_watts": score.stranded_watts,
                "osub_admitted_watts": score.osub_admitted_watts,
                "normalized_performance": score.normalized_performance,
            }
        stress: dict[str, dict[str, float]] = {}
        for name, result in self.stress.runs:
            stress[name] = {
                "cap_events": float(result.cap_events),
                "grants": float(result.overclock_grants),
                "rejections": float(result.overclock_rejections),
                "missed_slo_ticks_fraction":
                    result.missed_slo_ticks_fraction,
                "peak_rack_power_fraction":
                    result.peak_rack_power_fraction,
                "total_energy_mj": result.total_energy_j / 1e6,
            }
        verdicts = {
            "monotone": float(self.ablation.monotone),
            "ablation_envelope_ok": float(self.ablation.envelope_ok),
            "stress_safe": float(self.stress.safe),
            "stress_envelope_ok": float(self.stress.envelope_ok),
        }
        return {"ablation": ablation, "stress": stress,
                "verdicts": {"checks": verdicts}}


def oversubscription_ablation(
        config: Optional[OversubScenarioConfig] = None, *,
        workers: Optional[int] = 1) -> OversubAblationResult:
    """Sweep the risk ladder over the high-power fleet (streaming path,
    so the sweep is byte-identical at any worker count)."""
    config = config or OversubScenarioConfig()
    scores = compare_policies_streaming(
        config.fleet_config(), ABLATION_POLICIES, workers=workers)
    return OversubAblationResult(scores=scores)


def _stress_job(
        payload: "tuple[str, OversubScenarioConfig]") -> EnvironmentResult:
    """Spawn-safe variant worker: one matched stress run per payload."""
    variant, config = payload
    cluster = config.cluster_config()
    base_config = SmartOClockConfig(
        control_interval_s=cluster.tick_s,
        oc_budget_fraction=cluster.oc_budget_fraction,
        enable_proactive_scaleout=cluster.proactive_scaleout)
    if variant == "smart":
        return run_environment("SmartOClock", cluster,
                               soc_config=base_config,
                               label="SmartOClock/base")
    if variant == "naive":
        return run_environment("SmartOClock", cluster,
                               soc_config=base_config.as_naive(),
                               label="NaiveOClock")
    osub_config = base_config.with_oversubscription(
        config.stress_risk_level)
    if variant == "osub":
        return run_environment("SmartOClock", cluster,
                               soc_config=osub_config,
                               label="SmartOClock+OSub/fault-free")
    return run_environment(
        "SmartOClock", cluster, soc_config=osub_config,
        fault_plan=config.fault_plan(),
        label="SmartOClock+OSub/mispredict")


def mispredict_stress(
        config: Optional[OversubScenarioConfig] = None, *,
        workers: Optional[int] = 1) -> OversubStressResult:
    """Run the matched platform quadruple under one seed.

    The four variants derive everything from the frozen scenario config,
    so they shard over a spawn pool with a deterministic merge."""
    config = config or OversubScenarioConfig()
    smart, naive, osub, osub_faulted = run_jobs(
        _stress_job,
        [("smart", config), ("naive", config), ("osub", config),
         ("osub_faulted", config)],
        workers=workers)
    return OversubStressResult(smart=smart, naive=naive, osub=osub,
                               osub_faulted=osub_faulted)


def oversubscription_experiment(
        config: Optional[OversubScenarioConfig] = None, *,
        workers: Optional[int] = 1) -> OversubExperimentResult:
    """Ablation sweep + mispredict stress under one scenario config."""
    config = config or OversubScenarioConfig()
    return OversubExperimentResult(
        ablation=oversubscription_ablation(config, workers=workers),
        stress=mispredict_stress(config, workers=workers))


def format_oversub_report(result: OversubExperimentResult,
                          as_json: bool = False) -> str:
    """Fixed-precision report (stable across repeated runs).  With
    ``as_json`` the metrics dict is emitted as canonical JSON, which CI
    diffs across repeats to assert determinism."""
    metrics = result.metrics()
    if as_json:
        return json.dumps(metrics, sort_keys=True, indent=2)
    lines = [f"{'policy':<30}{'caps':>6}{'osub':>6}{'succ':>8}"
             f"{'stranded W':>12}{'admitted W':>12}{'perf':>8}"]
    for name in ABLATION_POLICIES:
        row = metrics["ablation"][name]
        lines.append(
            f"{name:<30}{row['cap_events']:6.0f}"
            f"{row['osub_cap_events']:6.0f}{row['success_rate']:8.3f}"
            f"{row['stranded_watts']:12.1f}"
            f"{row['osub_admitted_watts']:12.1f}"
            f"{row['normalized_performance']:8.3f}")
    lines.append("")
    lines.append(f"{'stress run':<30}{'caps':>6}{'grants':>8}"
                 f"{'peak frac':>11}{'slo miss':>10}")
    for name, _ in result.stress.runs:
        row = metrics["stress"][name]
        lines.append(
            f"{name:<30}{row['cap_events']:6.0f}{row['grants']:8.0f}"
            f"{row['peak_rack_power_fraction']:11.4f}"
            f"{row['missed_slo_ticks_fraction']:10.4f}")
    verdicts = metrics["verdicts"]["checks"]
    lines.append("")
    lines.append("checks: " + "  ".join(
        f"{key}={'ok' if value else 'FAIL'}"
        for key, value in sorted(verdicts.items())))
    return "\n".join(lines)
