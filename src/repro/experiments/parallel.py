"""Process-parallel sweep of (rack, policy) simulation work items.

Sharding layer for :func:`repro.experiments.largescale.compare_policies`
and :func:`~repro.experiments.largescale.table1`.  Design constraints
(DESIGN.md "Performance architecture"):

* **Spawn-safe** — the pool always uses the ``spawn`` start method (the
  only one portable across platforms and safe with threaded parents),
  so the worker is a module-level function and every payload pickles.
* **Deterministic merge** — results are written into a slot keyed by the
  submitted job, never appended in completion order; downstream
  aggregation therefore folds floats in exactly the serial order and the
  output is byte-identical to ``workers=1``.
* **Chunked trace shipping** — at most ``max_inflight`` jobs (default
  ``4 × workers``) have their rack traces pickled and queued at once, so
  sweeping hundreds of racks doesn't hold the whole fleet in worker
  pipes simultaneously.
* ``workers=1`` short-circuits to a plain in-process loop — no pool, no
  pickling — which is also the serial path the byte-identity tests
  compare against.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.traces.schema import RackTrace

if TYPE_CHECKING:
    from repro.experiments.largescale import RackSimResult

__all__ = ["RackPolicyJob", "resolve_workers", "run_rack_policy_jobs"]


@dataclass(frozen=True)
class RackPolicyJob:
    """One unit of work: one policy simulated over one rack."""

    rack_index: int
    policy: str
    rack: RackTrace
    power_model: PowerModel
    fast: bool


def _run_job(job: RackPolicyJob) -> "tuple[int, str, RackSimResult]":
    # Module-level so the spawn start method can pickle it by reference.
    from repro.core.policies import make_policy
    from repro.experiments.largescale import simulate_rack

    policy = make_policy(job.policy, len(job.rack.servers))
    result = simulate_rack(job.rack, policy, power_model=job.power_model,
                           fast=job.fast)
    return job.rack_index, job.policy, result


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` → ``os.cpu_count()``; explicit values must be >= 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def run_rack_policy_jobs(
        racks: Sequence[RackTrace], policy_names: Sequence[str], *,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        workers: Optional[int] = 1, fast: bool = True,
        max_inflight: Optional[int] = None,
) -> "list[dict[str, RackSimResult]]":
    """Simulate every (rack, policy) pair.

    Returns one ``{policy: RackSimResult}`` dict per rack, in input rack
    order, regardless of worker completion order."""
    from repro.core.policies import make_policy
    from repro.experiments.largescale import simulate_rack

    names = tuple(policy_names)
    n_workers = resolve_workers(workers)
    merged: "list[dict[str, RackSimResult]]" = [{} for _ in racks]

    if n_workers == 1:
        for rack_index, rack in enumerate(racks):
            for name in names:
                policy = make_policy(name, len(rack.servers))
                merged[rack_index][name] = simulate_rack(
                    rack, policy, power_model=power_model, fast=fast)
        return merged

    window = max_inflight if max_inflight is not None else 4 * n_workers
    if window < 1:
        raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
    jobs = (RackPolicyJob(rack_index=r, policy=name, rack=rack,
                          power_model=power_model, fast=fast)
            for r, rack in enumerate(racks)
            for name in names)

    def drain(done: "set[Future[tuple[int, str, RackSimResult]]]") -> None:
        for fut in done:
            rack_index, policy_name, result = fut.result()
            merged[rack_index][policy_name] = result

    with ProcessPoolExecutor(max_workers=n_workers,
                             mp_context=get_context("spawn")) as pool:
        pending: "set[Future[tuple[int, str, RackSimResult]]]" = set()
        for job in jobs:
            while len(pending) >= window:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                drain(done)
            pending.add(pool.submit(_run_job, job))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            drain(done)
    return merged
