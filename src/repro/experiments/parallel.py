"""Process-parallel sweep of (rack, policy) simulation work items.

Sharding layer for :func:`repro.experiments.largescale.compare_policies`
and :func:`~repro.experiments.largescale.table1` and their streaming
variants.  Design constraints (DESIGN.md "Performance architecture"):

* **Spawn-safe** — the pool always uses the ``spawn`` start method (the
  only one portable across platforms and safe with threaded parents),
  so the worker is a module-level function and every payload pickles.
* **Seed-sharded** — the preferred unit of work is a
  :class:`RackSpec` (fleet config + rack index, ~100 bytes on the
  wire); the worker regenerates the rack's trace locally from its
  spawned seed stream (:func:`repro.traces.synthetic.generate_fleet_rack`),
  byte-identical to the driver materializing it.  Plain
  :class:`~repro.traces.schema.RackTrace` payloads are still accepted
  for pre-materialized fleets.
* **Shared state ships once** — the :class:`PowerModel` is sent to each
  worker through the executor initializer, not serialized into every
  job.
* **Streaming, deterministic merge** — :func:`iter_rack_policy_results`
  yields results in exact submission-slot order (a bounded reorder
  buffer holds early completions), so downstream aggregation folds
  floats in the serial order and never holds more than the in-flight
  window of results, no matter how large the fleet.
* **Fail fast** — a worker exception cancels every queued job
  (``cancel_futures``) instead of letting the rest of the grid run to
  completion before the error surfaces.
* ``workers=1`` short-circuits to a plain in-process loop — no pool, no
  pickling — which is also the serial path the byte-identity tests
  compare against.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from multiprocessing import get_context
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.traces.schema import RackTrace
from repro.traces.synthetic import FleetConfig, generate_fleet_rack

if TYPE_CHECKING:
    from repro.experiments.largescale import RackSimResult

__all__ = [
    "RackSpec",
    "RackPolicyJob",
    "resolve_workers",
    "iter_rack_policy_results",
    "run_rack_policy_jobs",
    "run_jobs",
]

_P = TypeVar("_P")
_R = TypeVar("_R")


@dataclass(frozen=True)
class RackSpec:
    """Recipe for one rack: everything a worker needs to regenerate its
    trace locally, instead of receiving the arrays over a pipe."""

    config: FleetConfig
    rack_index: int

    def materialize(self, power_model: PowerModel = DEFAULT_POWER_MODEL
                    ) -> RackTrace:
        """Expand to the rack's trace — byte-identical wherever run."""
        return generate_fleet_rack(self.config, self.rack_index,
                                   power_model=power_model)


#: What a job may carry: a spec (preferred — tiny, worker expands it) or
#: an already-materialized trace (pre-built fleets; whole arrays pickle).
RackSource = Union[RackSpec, RackTrace]


@dataclass(frozen=True)
class RackPolicyJob:
    """One unit of work: one policy simulated over one rack.

    ``slot`` is the submission index over the flattened (rack, policy)
    grid; the driver uses it to re-establish serial order when results
    complete out of order.  The shared :class:`PowerModel` is *not* part
    of the job — it ships once per worker via the pool initializer.
    """

    slot: int
    policy: str
    rack: RackSource
    fast: bool


# Per-worker state installed by the pool initializer / warmed lazily.
_WORKER_POWER_MODEL: Optional[PowerModel] = None
#: Most recently expanded rack, keyed by its spec: consecutive policies
#: of one rack usually land on the same worker (jobs are submitted
#: rack-major), so the trace is regenerated once, not once per policy.
_WORKER_RACK_CACHE: Optional[tuple[RackSpec, RackTrace]] = None


def _init_worker(power_model: PowerModel) -> None:
    """Pool initializer: receive the shared power model exactly once."""
    global _WORKER_POWER_MODEL
    _WORKER_POWER_MODEL = power_model


def _expand(rack: RackSource, power_model: PowerModel) -> RackTrace:
    """Materialize a spec (with a one-slot per-worker cache) or pass a
    pre-built trace through."""
    global _WORKER_RACK_CACHE
    if isinstance(rack, RackTrace):
        return rack
    if _WORKER_RACK_CACHE is not None and _WORKER_RACK_CACHE[0] == rack:
        return _WORKER_RACK_CACHE[1]
    trace = rack.materialize(power_model)
    _WORKER_RACK_CACHE = (rack, trace)
    return trace


def _run_job(job: RackPolicyJob) -> "tuple[int, RackSimResult]":
    # Module-level so the spawn start method can pickle it by reference.
    from repro.core.policies import make_policy
    from repro.experiments.largescale import simulate_rack

    power_model = _WORKER_POWER_MODEL
    if power_model is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker used before its initializer ran")
    trace = _expand(job.rack, power_model)
    policy = make_policy(job.policy, len(trace.servers))
    result = simulate_rack(trace, policy, power_model=power_model,
                           fast=job.fast)
    return job.slot, result


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` → usable CPUs; explicit values must be >= 1.

    "Usable" honors the scheduler affinity mask
    (``os.sched_getaffinity``): in cgroup/cpuset-limited CI containers
    ``os.cpu_count()`` reports the host's cores and would oversubscribe
    the pool.  Platforms without affinity fall back to ``cpu_count``.
    """
    if workers is None:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except (AttributeError, OSError):
            return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def run_jobs(fn: "Callable[[_P], _R]", payloads: "Iterable[_P]", *,
             workers: Optional[int] = 1) -> "list[_R]":
    """Run ``fn`` over ``payloads``, returning results in payload order.

    The generic sharding primitive behind the multi-trial and
    matched-variant experiment sweeps (``repro chaos/recovery/faults/
    oversub --workers N``): ``fn`` must be a module-level function and
    every payload must pickle (the pool always uses the ``spawn`` start
    method).  Results are gathered future-by-future in submission order,
    so the merge is deterministic at any worker count; ``workers=1``
    short-circuits to a plain in-process loop — the byte-identity
    baseline.  A worker exception cancels everything still queued.
    """
    items = list(payloads)
    n_workers = resolve_workers(workers)
    if n_workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(items)),
                             mp_context=get_context("spawn")) as pool:
        futures = [pool.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise


def iter_rack_policy_results(
        racks: Iterable[RackSource], policy_names: Sequence[str], *,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        workers: Optional[int] = 1, fast: bool = True,
        max_inflight: Optional[int] = None,
) -> "Iterator[tuple[int, str, RackSimResult]]":
    """Simulate the (rack, policy) grid, yielding ``(rack_slot,
    policy_name, result)`` in exact submission order.

    ``racks`` may be a lazy iterable of specs: the driver materializes
    nothing beyond the in-flight window, so memory stays bounded while
    the fleet scales.  Results completing out of order wait in a
    reorder buffer (never larger than the window) until every earlier
    slot has been emitted — consumers therefore fold floats in the same
    order as the ``workers=1`` loop, byte-identically.

    A worker exception cancels all queued jobs and re-raises promptly.
    """
    names = tuple(policy_names)
    if not names:
        raise ValueError("need at least one policy name")
    n_workers = resolve_workers(workers)

    if n_workers == 1:
        from repro.core.policies import make_policy
        from repro.experiments.largescale import simulate_rack

        for rack_slot, rack in enumerate(racks):
            trace = (rack.materialize(power_model)
                     if isinstance(rack, RackSpec) else rack)
            for name in names:
                policy = make_policy(name, len(trace.servers))
                yield rack_slot, name, simulate_rack(
                    trace, policy, power_model=power_model, fast=fast)
        return

    window = max_inflight if max_inflight is not None else 4 * n_workers
    if window < 1:
        raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
    jobs = (RackPolicyJob(slot=rack_slot * len(names) + j, policy=name,
                          rack=rack, fast=fast)
            for rack_slot, rack in enumerate(racks)
            for j, name in enumerate(names))

    ready: "dict[int, RackSimResult]" = {}
    emit_next = 0

    def drain(done: "set[Future[tuple[int, RackSimResult]]]") -> None:
        for fut in done:
            slot, result = fut.result()  # re-raises worker exceptions
            ready[slot] = result

    def emit() -> "Iterator[tuple[int, str, RackSimResult]]":
        nonlocal emit_next
        while emit_next in ready:
            result = ready.pop(emit_next)
            rack_slot, j = divmod(emit_next, len(names))
            emit_next += 1
            yield rack_slot, names[j], result

    with ProcessPoolExecutor(max_workers=n_workers,
                             mp_context=get_context("spawn"),
                             initializer=_init_worker,
                             initargs=(power_model,)) as pool:
        pending: "set[Future[tuple[int, RackSimResult]]]" = set()
        try:
            for job in jobs:
                while len(pending) >= window:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    drain(done)
                    yield from emit()
                pending.add(pool.submit(_run_job, job))
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                drain(done)
                yield from emit()
        except BaseException:
            # Fail fast: a worker error (or the consumer abandoning the
            # generator) must not let the rest of the grid run to
            # completion behind the scenes.
            for fut in pending:
                fut.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise


def run_rack_policy_jobs(
        racks: Sequence[RackSource], policy_names: Sequence[str], *,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        workers: Optional[int] = 1, fast: bool = True,
        max_inflight: Optional[int] = None,
) -> "list[dict[str, RackSimResult]]":
    """Simulate every (rack, policy) pair and collect everything.

    Returns one ``{policy: RackSimResult}`` dict per rack, in input rack
    order, regardless of worker completion order.  This materializes the
    full result grid — fine for pre-built fleets; fleet-scale sweeps
    should consume :func:`iter_rack_policy_results` and fold instead.
    """
    merged: "list[dict[str, RackSimResult]]" = [{} for _ in racks]
    for rack_slot, name, result in iter_rack_policy_results(
            racks, policy_names, power_model=power_model, workers=workers,
            fast=fast, max_inflight=max_inflight):
        merged[rack_slot][name] = result
    return merged
