"""Experiment drivers that regenerate every table and figure.

* :mod:`repro.experiments.characterization` — §II–III (Figs. 1–9)
* :mod:`repro.experiments.cluster` — §V-A cluster study (Figs. 12–14 and
  the power-/overclocking-constrained experiments)
* :mod:`repro.experiments.largescale` — §V-B trace-driven simulation
  (Table I, Fig. 15)
* :mod:`repro.experiments.production` — §V-C production services
  (Figs. 16–17)
* :mod:`repro.experiments.faults` — control-plane fault injection
  (graceful-degradation claim, §III Q5)
* :mod:`repro.experiments.recovery` — server crash/recovery lifecycle
  (naive vs risk-aware overclocking under one crash seed)

Each driver returns plain dataclasses/dicts of the numbers the paper
plots; the ``benchmarks/`` tree prints them in table form and asserts the
paper's qualitative findings.
"""

__all__ = [
    "characterization",
    "cluster",
    "faults",
    "largescale",
    "production",
    "recovery",
]
