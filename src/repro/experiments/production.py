"""Production-service experiments (paper §V-C, Figs. 16–17).

The paper overclocks two first-party services under production load:

* *Service B* (Fig. 16): average VM CPU utilization vs request rate with
  and without overclocking — overclocking lowers utilization at a given
  RPS, equivalently serves more RPS at iso-utilization;
* *Service C* (Fig. 17): the 5-minute utilization peaks across a weekday
  shrink under overclocking.

Without the proprietary services, we model both as frequency-scaled
work-conserving services (same substitution as WebConf): utilization at
frequency ``f`` is ``rps / capacity(f)``, with capacity scaling by the
Amdahl-style frequency speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN
from repro.workloads.loadgen import TopOfHourPattern
from repro.workloads.queueing import frequency_speedup

__all__ = ["ServiceBResult", "fig16_service_b", "ServiceCResult",
           "fig17_service_c"]

TURBO_GHZ = DEFAULT_FREQUENCY_PLAN.turbo_ghz
OVERCLOCK_GHZ = DEFAULT_FREQUENCY_PLAN.overclock_max_ghz
SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class ServiceBResult:
    """Fig. 16 data: utilization vs RPS buckets for both frequencies."""

    rps_buckets: np.ndarray
    baseline_util: np.ndarray
    overclocked_util: np.ndarray
    peak_rps: float
    util_reduction_at_peak: float      # paper: 23 %
    iso_util_rps_gain: float           # paper: 28 %


def fig16_service_b(*, peak_rps: float = 1800.0, buckets: int = 10,
                    freq_sensitivity: float = 0.95,
                    peak_utilization: float = 0.85) -> ServiceBResult:
    """Average CPU utilization of Service B VMs by request rate.

    ``peak_utilization`` anchors the baseline: at ``peak_rps`` and max
    turbo the VMs run at that utilization (the deployment is provisioned
    that way).
    """
    if peak_rps <= 0:
        raise ValueError(f"peak_rps must be > 0: {peak_rps}")
    capacity_turbo = peak_rps / peak_utilization
    speedup = frequency_speedup(OVERCLOCK_GHZ, TURBO_GHZ, freq_sensitivity)
    capacity_oc = capacity_turbo * speedup
    rps = np.linspace(peak_rps / buckets, peak_rps, buckets)
    base_util = np.clip(rps / capacity_turbo, 0.0, 1.0)
    oc_util = np.clip(rps / capacity_oc, 0.0, 1.0)
    reduction = 1.0 - oc_util[-1] / base_util[-1]
    # Iso-utilization throughput: RPS the overclocked VMs serve at the
    # baseline's peak utilization.
    iso_rps = peak_utilization * capacity_oc
    return ServiceBResult(
        rps_buckets=rps,
        baseline_util=base_util,
        overclocked_util=oc_util,
        peak_rps=peak_rps,
        util_reduction_at_peak=reduction,
        iso_util_rps_gain=iso_rps / peak_rps - 1.0)


@dataclass(frozen=True)
class ServiceCResult:
    """Fig. 17 data: 5-minute utilization peaks across a weekday."""

    hours: np.ndarray
    baseline_util: np.ndarray
    overclocked_util: np.ndarray
    peak_reduction: float              # paper: 16 %


def fig17_service_c(*, freq_sensitivity: float = 0.9,
                    peak_utilization: float = 0.8,
                    step_s: float = 300.0) -> ServiceCResult:
    """Service C's top-of-hour 5-minute peaks, ± overclocking.

    The service's load shape is the spiky top/bottom-of-hour pattern of
    Fig. 1; utilization is work-conserving, so overclocking divides it by
    the frequency speedup.
    """
    pattern = TopOfHourPattern(spike_minutes=5.0, include_half_hour=True,
                               base_scale=0.4)
    times, levels = pattern.sample_levels(0.0, SECONDS_PER_DAY, step_s)
    base = peak_utilization * levels
    speedup = frequency_speedup(OVERCLOCK_GHZ, TURBO_GHZ, freq_sensitivity)
    overclocked = base / speedup
    # Peak = mean of the top-of-hour 5-minute buckets (the provisioning
    # metric the paper tracks).
    spike_mask = (times % 3600.0) < step_s
    peak_base = float(np.mean(base[spike_mask]))
    peak_oc = float(np.mean(overclocked[spike_mask]))
    return ServiceCResult(
        hours=times / 3600.0,
        baseline_util=base,
        overclocked_util=overclocked,
        peak_reduction=1.0 - peak_oc / peak_base)
