"""Large-scale trace-driven simulation (paper §V-B: Table I, Fig. 15).

Replays synthetic fleet traces at 5-minute granularity through the policy
kernels of :mod:`repro.core.policies` and scores them on the paper's four
metrics: number of power-capping events (normalized to Central), overclock
success rate, capping penalty on non-overclocked VMs, and normalized
performance over the non-overclocked baseline.

Capping semantics (one tick):

1. the rack manager observes power above the limit → capping event;
2. the hardware response throttles servers to bring the rack under the
   limit; the cut is attributed by *blame*: power above a server's budget
   (heterogeneous policies) or above the fair share (NaiveOClock);
3. every overclock grant on the rack is reverted for that tick (the boost
   is lost — not a success), and non-overclocked bystanders suffer the
   frequency reduction the throttling implies (P ≈ k·f² near the operating
   point → Δf/f ≈ ΔP / 2P_dyn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.core.policies import TickContext, TracePolicy, make_policy
from repro.traces.schema import RackTrace
from repro.traces.synthetic import FleetConfig, SyntheticFleet, generate_fleet

__all__ = [
    "RackSimResult",
    "PolicyScore",
    "simulate_rack",
    "compare_policies",
    "cluster_class_fleets",
    "table1",
]

SECONDS_PER_WEEK = 7 * 86400.0


@dataclass
class RackSimResult:
    """Raw counters from simulating one policy on one rack."""

    rack_id: str
    policy: str
    ticks: int = 0
    cap_events: int = 0
    warnings: int = 0
    demanded_core_ticks: int = 0
    granted_core_ticks: int = 0
    successful_core_ticks: float = 0.0  # fractional: partial boosts count
    perf_sum: float = 0.0          # achieved freq ratio over demanded cores
    noc_penalty_sum: float = 0.0   # mean bystander freq cut per cap event
    noc_penalty_events: int = 0

    @property
    def success_rate(self) -> float:
        if self.demanded_core_ticks == 0:
            return 1.0
        return self.successful_core_ticks / self.demanded_core_ticks

    @property
    def normalized_performance(self) -> float:
        if self.demanded_core_ticks == 0:
            return 1.0
        return self.perf_sum / self.demanded_core_ticks

    @property
    def cap_penalty(self) -> float:
        if self.noc_penalty_events == 0:
            return 0.0
        return self.noc_penalty_sum / self.noc_penalty_events


#: On a capping event, the hardware response does not shave power to
#: exactly the limit: it throttles to a recovery setpoint below it and
#: only then releases (RAPL-style overshoot).  This is what makes capping
#: events expensive (the paper's §III: 30-50 % degradation during caps).
CAP_RECOVERY_MARGIN = 0.10

#: Ticks after a capping event during which the rack stays throttled and
#: no boost is delivered (the capped state persists while power recovers).
CAP_RECOVERY_TICKS = 1


def _throttle_cuts(tick_power: np.ndarray, boost_watts: np.ndarray,
                   limit: float, fair: bool) -> np.ndarray:
    """Per-server *below-turbo* power cut during a capping event.

    Every boost on the rack is revoked by the event either way; the
    returned cuts are the watts each server loses **beyond** that (i.e.,
    the sub-turbo damage), relative to its boost-free draw:

    * fair mode (NaiveOClock): the capping hardware knows nothing about
      overclocking priorities and clamps every server toward the even
      split of the recovery setpoint — the §III Q4 pathology where
      power-hungry servers are disproportionately throttled;
    * prioritized mode (everything else): overclocked (low-priority)
      draw is shed first; only the residual overshoot, if any, is spread
      proportionally over the baseline draw.
    """
    setpoint = (1.0 - CAP_RECOVERY_MARGIN) * limit
    power_no_oc = tick_power - boost_watts
    if fair:
        total = float(np.sum(tick_power))
        required = total - setpoint
        if required <= 0:
            return np.zeros_like(tick_power)
        targets = np.full_like(tick_power, setpoint / len(tick_power))
        raw = np.maximum(0.0, tick_power - targets)
        raw_total = float(np.sum(raw))
        if raw_total >= required and raw_total > 0:
            cuts = raw * (required / raw_total)
        else:
            cuts = raw + tick_power * ((required - raw_total) / total)
        return np.maximum(0.0, cuts - boost_watts)
    total = float(np.sum(power_no_oc))
    required = total - setpoint
    if required <= 0:
        return np.zeros_like(tick_power)
    return power_no_oc * (required / total)


def simulate_rack(rack: RackTrace, policy: TracePolicy, *,
                  power_model: PowerModel = DEFAULT_POWER_MODEL,
                  warning_fraction: float = 0.95,
                  target_freq_ghz: float = 4.0) -> RackSimResult:
    """Run ``policy`` over ``rack``'s trace; scores weeks 2..N (week 1 is
    the policy's first history window)."""
    n_servers = len(rack.servers)
    if policy.n_servers != n_servers:
        raise ValueError(
            f"policy sized for {policy.n_servers} servers, rack has "
            f"{n_servers}")
    times = rack.times
    interval = rack.servers[0].interval_s
    power = np.stack([s.power_watts for s in rack.servers])
    util = np.stack([s.utilization for s in rack.servers])
    demand = np.stack([s.oc_cores for s in rack.servers])
    limit = rack.power_limit_watts
    plan = power_model.plan
    ratio = target_freq_ghz / plan.turbo_ghz
    delta_full = power_model.overclock_core_delta(1.0, target_freq_ghz)
    idle = power_model.idle_watts
    warning_watts = warning_fraction * limit

    result = RackSimResult(rack_id=rack.rack_id, policy=policy.name)
    weeks = int(np.floor((times[-1] - times[0]) / SECONDS_PER_WEEK + 0.5))
    if weeks < 2:
        raise ValueError(
            "need at least 2 weeks of trace (history + evaluation)")
    ticks_per_week = int(round(SECONDS_PER_WEEK / interval))

    recovery_remaining = 0
    for week in range(1, weeks):
        h = slice((week - 1) * ticks_per_week, week * ticks_per_week)
        policy.begin_week(times[h], power[:, h], demand[:, h], limit)
        for i in range(week * ticks_per_week,
                       min((week + 1) * ticks_per_week, len(times))):
            ctx = TickContext(
                index=i, time=float(times[i]), limit_watts=limit,
                warning_watts=warning_watts,
                observed_power=power[:, i - 1],
                observed_util=util[:, i - 1],
                oracle_power=power[:, i],
                oracle_util=util[:, i],
                demand_cores=demand[:, i],
                delta_full_watts=delta_full)
            granted = np.minimum(policy.decide(ctx), demand[:, i])
            granted = np.maximum(granted, 0)
            raw_extra = granted * delta_full * util[:, i]
            # Local feedback enforcement (§IV-D): an sOA holds its server's
            # draw at its effective budget, partially de-boosting its VMs
            # when the baseline came in above prediction.
            enforcement = policy.enforcement_budget_at(ctx)
            if enforcement is not None:
                allowed_extra = np.clip(enforcement - power[:, i],
                                        0.0, raw_extra)
            else:
                allowed_extra = raw_extra
            boost_frac = np.divide(allowed_extra, raw_extra,
                                   out=np.ones_like(raw_extra),
                                   where=raw_extra > 0)
            tick_power = power[:, i] + allowed_extra
            total = float(np.sum(tick_power))
            result.ticks += 1
            d = int(np.sum(demand[:, i]))
            g = int(np.sum(granted))
            result.demanded_core_ticks += d
            result.granted_core_ticks += g

            if recovery_remaining > 0:
                # The rack is still recovering from a capping event: the
                # capped state persists, nothing boosts this tick.
                recovery_remaining -= 1
                result.perf_sum += float(d)
                continue

            if total >= warning_watts:
                result.warnings += 1
                policy.on_warning(ctx)

            if total > limit:
                result.cap_events += 1
                recovery_remaining = CAP_RECOVERY_TICKS
                policy.on_cap(ctx)
                power_no_oc = tick_power - allowed_extra
                cuts = _throttle_cuts(
                    tick_power, allowed_extra, limit,
                    fair=policy.capping_mode == "fair")
                dynamic = np.maximum(power_no_oc - idle, 1e-6)
                freq_cut = np.clip(cuts / (2.0 * dynamic), 0.0, 0.5)
                # A capping event is rack-wide: the hardware response
                # cancels every boost on the rack for the tick (the paper's
                # §III: capping causes 30-50 % degradation and "diminishes
                # the performance benefits").  Throttled servers also run
                # below turbo.
                result.perf_sum += float(
                    np.sum(demand[:, i] * (1.0 - freq_cut)))
                # Penalty on non-overclocked VMs (paper Table I): the
                # power-weighted mean frequency cut across bystander
                # servers — power-hungry servers host more active work, so
                # a cut there hurts proportionally more VMs (§III Q4).
                bystanders = granted == 0
                if np.any(bystanders):
                    weights = power_no_oc[bystanders]
                    result.noc_penalty_sum += float(
                        np.average(freq_cut[bystanders], weights=weights))
                    result.noc_penalty_events += 1
            else:
                # Fractional success: a grant the feedback loop held below
                # the full boost delivered only part of the speedup.
                result.successful_core_ticks += float(
                    np.sum(granted * boost_frac))
                result.perf_sum += float(np.sum(
                    granted * (1.0 + boost_frac * (ratio - 1.0))
                    + (demand[:, i] - granted)))
    return result


@dataclass(frozen=True)
class PolicyScore:
    """Table-I row: one policy aggregated over a fleet."""

    policy: str
    cap_events: int
    normalized_caps: float
    success_rate: float
    cap_penalty: float
    normalized_performance: float

    def row(self) -> str:
        return (f"{self.policy:<12} {self.normalized_caps:>10.1f} "
                f"{self.success_rate:>10.1%} {self.cap_penalty:>10.1%} "
                f"{self.normalized_performance:>12.3f}")


def compare_policies(fleet: SyntheticFleet,
                     policy_names: Sequence[str] = (
                         "Central", "NaiveOClock", "NoFeedback",
                         "NoWarning", "SmartOClock"), *,
                     power_model: PowerModel = DEFAULT_POWER_MODEL
                     ) -> dict[str, PolicyScore]:
    """Run every policy over every rack of a fleet and aggregate."""
    raw: dict[str, list[RackSimResult]] = {name: [] for name in policy_names}
    for rack in fleet.racks:
        for name in policy_names:
            policy = make_policy(name, len(rack.servers))
            raw[name].append(simulate_rack(rack, policy,
                                           power_model=power_model))
    central_caps = None
    if "Central" in raw:
        central_caps = max(1, sum(r.cap_events for r in raw["Central"]))
    scores: dict[str, PolicyScore] = {}
    for name, results in raw.items():
        caps = sum(r.cap_events for r in results)
        demanded = sum(r.demanded_core_ticks for r in results)
        successful = sum(r.successful_core_ticks for r in results)
        perf = sum(r.perf_sum for r in results)
        pen_sum = sum(r.noc_penalty_sum for r in results)
        pen_n = sum(r.noc_penalty_events for r in results)
        scores[name] = PolicyScore(
            policy=name,
            cap_events=caps,
            normalized_caps=(caps / central_caps
                             if central_caps else float(caps)),
            success_rate=successful / demanded if demanded else 1.0,
            cap_penalty=pen_sum / pen_n if pen_n else 0.0,
            normalized_performance=perf / demanded if demanded else 1.0)
    return scores


def cluster_class_fleets(*, n_racks: int = 12, weeks: int = 2,
                         seed: int = 42) -> dict[str, SyntheticFleet]:
    """Three fleets matching Table I's High/Medium/Low-power classes."""
    ranges = {
        "High-Power": (0.86, 0.96),
        "Medium-Power": (0.78, 0.88),
        "Low-Power": (0.52, 0.72),
    }
    fleets: dict[str, SyntheticFleet] = {}
    for i, (name, p99_range) in enumerate(ranges.items()):
        config = FleetConfig(
            n_racks=n_racks, weeks=weeks, seed=seed + i,
            p99_util_beta=(2.0, 2.0), p99_util_range=p99_range,
            region=name.lower())
        fleets[name] = generate_fleet(config)
    return fleets


def table1(fleets: dict[str, SyntheticFleet], *,
           power_model: PowerModel = DEFAULT_POWER_MODEL
           ) -> dict[str, dict[str, PolicyScore]]:
    """Full Table I: per cluster class, per policy."""
    return {name: compare_policies(fleet, power_model=power_model)
            for name, fleet in fleets.items()}


def format_table1(results: dict[str, dict[str, PolicyScore]]) -> str:
    """Render Table I in the paper's layout."""
    lines = [f"{'System':<12} {'Norm#Caps':>10} {'Success':>10} "
             f"{'CapPenalty':>10} {'NormPerf':>12}"]
    for cluster, scores in results.items():
        lines.append(f"--- {cluster} ---")
        for name in ("Central", "NaiveOClock", "NoFeedback", "NoWarning",
                     "SmartOClock"):
            if name in scores:
                lines.append(scores[name].row())
    return "\n".join(lines)
