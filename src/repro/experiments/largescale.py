"""Large-scale trace-driven simulation (paper §V-B: Table I, Fig. 15).

Replays synthetic fleet traces at 5-minute granularity through the policy
kernels of :mod:`repro.core.policies` and scores them on the paper's four
metrics: number of power-capping events (normalized to Central), overclock
success rate, capping penalty on non-overclocked VMs, and normalized
performance over the non-overclocked baseline.

Capping semantics (one tick):

1. the rack manager observes power above the limit → capping event;
2. the hardware response throttles servers to bring the rack under the
   limit; the cut is attributed by *blame*: power above a server's budget
   (heterogeneous policies) or above the fair share (NaiveOClock);
3. every overclock grant on the rack is reverted for that tick (the boost
   is lost — not a success), and non-overclocked bystanders suffer the
   frequency reduction the throttling implies (P ≈ k·f² near the operating
   point → Δf/f ≈ ΔP / 2P_dyn).

Two implementations share those semantics (DESIGN.md "Performance
architecture"):

* :func:`simulate_rack_reference` — the scalar oracle: one Python
  iteration per tick, exactly the semantics above.
* :func:`simulate_rack` (default ``fast=True``) — the vectorized fast
  path: policies pre-plan segments of decisions
  (:meth:`~repro.core.policies.TracePolicy.plan_segment`), the engine
  computes whole segments with NumPy and scans for the first tick that
  crosses ``warning_watts`` (or where a stateful policy could diverge);
  only that tick runs through the scalar tick body, then the engine
  resumes vectorized.  Results are **bit-identical** to the reference —
  float accumulation happens in the same per-tick order — and the
  property tests in ``tests/experiments/test_fastpath.py`` enforce it.

``compare_policies``/``table1`` additionally fan (rack, policy) work
items over a process pool (:mod:`repro.experiments.parallel`) via the
``workers=`` knob; merged output is byte-identical to the serial path.

For fleet-scale sweeps (the paper's 7.1k racks) the streaming variants
— :func:`compare_policies_streaming` / :func:`table1_streaming` — never
materialize the fleet at all: the driver ships ~100-byte
:class:`~repro.experiments.parallel.RackSpec` recipes, workers
regenerate each rack's trace from its spawned seed stream, and
per-rack results fold into running :class:`PolicyAccumulator` totals in
submission-slot order.  The online merge performs the same left-fold as
:func:`_aggregate_scores`, so the scores are byte-identical to
materializing everything serially — at any worker count.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.core.policies import (
    RackWeekView,
    SegmentPlan,
    TickContext,
    TracePolicy,
)
from repro.traces.schema import RackTrace
from repro.traces.synthetic import FleetConfig, SyntheticFleet, generate_fleet

__all__ = [
    "RackSimResult",
    "PolicyScore",
    "PolicyAccumulator",
    "simulate_rack",
    "simulate_rack_reference",
    "compare_policies",
    "compare_policies_streaming",
    "cluster_class_fleet_configs",
    "cluster_class_fleets",
    "table1",
    "table1_streaming",
    "format_table1",
]

SECONDS_PER_WEEK = 7 * 86400.0

#: Planning window (ticks) for stateful policies.  Tick-stateless
#: policies plan whole weeks at once; stateful ones re-plan after every
#: scalar-fallback tick, so the window bounds wasted planning work.
_FAST_LOOKAHEAD = 512

#: Policy column order of Table I (also the default for
#: :func:`compare_policies`).
TABLE1_POLICIES = ("Central", "NaiveOClock", "NoFeedback", "NoWarning",
                   "SmartOClock", "SmartOClock+OSub")


@dataclass
class RackSimResult:
    """Raw counters from simulating one policy on one rack."""

    rack_id: str
    policy: str
    ticks: int = 0
    cap_events: int = 0
    warnings: int = 0
    demanded_core_ticks: int = 0
    granted_core_ticks: int = 0
    successful_core_ticks: float = 0.0  # fractional: partial boosts count
    perf_sum: float = 0.0          # achieved freq ratio over demanded cores
    noc_penalty_sum: float = 0.0   # mean bystander freq cut per cap event
    noc_penalty_events: int = 0
    # Oversubscription accounting: watts of unused headroom under the
    # physical limit (stranded power), watts of admitted oversubscribed
    # headroom, and capping events that struck while headroom was
    # admitted (attributed to oversubscription).  Both watt counters
    # integrate over ticks (watt-ticks).
    stranded_watt_ticks: float = 0.0
    osub_admitted_watt_ticks: float = 0.0
    osub_cap_events: int = 0

    @property
    def success_rate(self) -> float:
        if self.demanded_core_ticks == 0:
            return 1.0
        return self.successful_core_ticks / self.demanded_core_ticks

    @property
    def normalized_performance(self) -> float:
        if self.demanded_core_ticks == 0:
            return 1.0
        return self.perf_sum / self.demanded_core_ticks

    @property
    def cap_penalty(self) -> float:
        if self.noc_penalty_events == 0:
            return 0.0
        return self.noc_penalty_sum / self.noc_penalty_events


#: On a capping event, the hardware response does not shave power to
#: exactly the limit: it throttles to a recovery setpoint below it and
#: only then releases (RAPL-style overshoot).  This is what makes capping
#: events expensive (the paper's §III: 30-50 % degradation during caps).
CAP_RECOVERY_MARGIN = 0.10

#: Ticks after a capping event during which the rack stays throttled and
#: no boost is delivered (the capped state persists while power recovers).
CAP_RECOVERY_TICKS = 1


def _throttle_cuts(tick_power: np.ndarray, boost_watts: np.ndarray,
                   limit: float, fair: bool) -> np.ndarray:
    """Per-server *below-turbo* power cut during a capping event.

    Every boost on the rack is revoked by the event either way; the
    returned cuts are the watts each server loses **beyond** that (i.e.,
    the sub-turbo damage), relative to its boost-free draw:

    * fair mode (NaiveOClock): the capping hardware knows nothing about
      overclocking priorities and clamps every server toward the even
      split of the recovery setpoint — the §III Q4 pathology where
      power-hungry servers are disproportionately throttled;
    * prioritized mode (everything else): overclocked (low-priority)
      draw is shed first; only the residual overshoot, if any, is spread
      proportionally over the baseline draw.
    """
    setpoint = (1.0 - CAP_RECOVERY_MARGIN) * limit
    power_no_oc = tick_power - boost_watts
    if fair:
        total = float(np.sum(tick_power))
        required = total - setpoint
        if required <= 0:
            return np.zeros_like(tick_power)
        targets = np.full_like(tick_power, setpoint / len(tick_power))
        raw = np.maximum(0.0, tick_power - targets)
        raw_total = float(np.sum(raw))
        if raw_total >= required and raw_total > 0:
            cuts = raw * (required / raw_total)
        else:
            cuts = raw + tick_power * ((required - raw_total) / total)
        return np.maximum(0.0, cuts - boost_watts)
    total = float(np.sum(power_no_oc))
    required = total - setpoint
    if required <= 0:
        return np.zeros_like(tick_power)
    return power_no_oc * (required / total)


@dataclass
class _RackSetup:
    """Validated inputs and derived constants shared by both paths."""

    times: np.ndarray
    power: np.ndarray    # (servers, ticks)
    util: np.ndarray     # (servers, ticks)
    demand: np.ndarray   # (servers, ticks) int
    n_servers: int
    limit: float
    warning_watts: float
    ratio: float
    delta_full: float
    idle: float
    weeks: int
    ticks_per_week: int


def _prepare(rack: RackTrace, policy: TracePolicy,
             power_model: PowerModel, warning_fraction: float,
             target_freq_ghz: float) -> tuple[_RackSetup, RackSimResult]:
    n_servers = len(rack.servers)
    if policy.n_servers != n_servers:
        raise ValueError(
            f"policy sized for {policy.n_servers} servers, rack has "
            f"{n_servers}")
    times = rack.times
    interval = rack.servers[0].interval_s
    power = np.stack([s.power_watts for s in rack.servers])
    util = np.stack([s.utilization for s in rack.servers])
    demand = np.stack([s.oc_cores for s in rack.servers])
    limit = rack.power_limit_watts
    ticks_per_week = int(round(SECONDS_PER_WEEK / interval))
    # Weeks come from the tick grid, not np.floor(span/WEEK + 0.5): a
    # trace a few ticks past (or short of) a whole week boundary keeps
    # its partial final window as an evaluation week instead of silently
    # dropping those ticks.  History windows stay full weeks either way.
    weeks = -(-len(times) // ticks_per_week)  # ceil division
    if weeks < 2:
        raise ValueError(
            "need at least 2 weeks of trace (history + evaluation)")
    setup = _RackSetup(
        times=times, power=power, util=util, demand=demand,
        n_servers=n_servers, limit=limit,
        warning_watts=warning_fraction * limit,
        ratio=target_freq_ghz / power_model.plan.turbo_ghz,
        delta_full=power_model.overclock_core_delta(1.0, target_freq_ghz),
        idle=power_model.idle_watts,
        weeks=weeks, ticks_per_week=ticks_per_week)
    return setup, RackSimResult(rack_id=rack.rack_id, policy=policy.name)


def _apply_tick(result: RackSimResult, policy: TracePolicy,
                ctx: TickContext, decided: np.ndarray,
                recovery_remaining: int, ones_buf: np.ndarray,
                ratio: float, idle: float) -> int:
    """One tick of the full capping semantics; returns the new recovery
    counter.  Both the reference loop and the fast path's fallback run
    every non-planned tick through this single body, so warning/cap
    handling cannot diverge between them by construction."""
    granted = np.maximum(np.minimum(decided, ctx.demand_cores), 0)
    raw_extra = granted * ctx.delta_full_watts * ctx.oracle_util
    # Local feedback enforcement (§IV-D): an sOA holds its server's
    # draw at its effective budget, partially de-boosting its VMs
    # when the baseline came in above prediction.
    enforcement = policy.enforcement_budget_at(ctx)
    if enforcement is not None:
        allowed_extra = np.clip(enforcement - ctx.oracle_power,
                                0.0, raw_extra)
    else:
        allowed_extra = raw_extra
    np.copyto(ones_buf, 1.0)
    boost_frac = np.divide(allowed_extra, raw_extra,
                           out=ones_buf, where=raw_extra > 0)
    tick_power = ctx.oracle_power + allowed_extra
    total = float(np.sum(tick_power))
    result.ticks += 1
    d = int(np.sum(ctx.demand_cores))
    g = int(np.sum(granted))
    result.demanded_core_ticks += d
    result.granted_core_ticks += g
    # Stranded power (headroom the rack never used) and admitted
    # oversubscribed headroom integrate over *every* tick, recovery
    # included — both describe the planning state, not the event flow.
    result.stranded_watt_ticks += max(0.0, ctx.limit_watts - total)
    admitted = policy.osub_admitted_at(ctx)
    result.osub_admitted_watt_ticks += admitted

    if recovery_remaining > 0:
        # The rack is still recovering from a capping event: the
        # capped state persists, nothing boosts this tick.
        result.perf_sum += float(d)
        return recovery_remaining - 1

    if total >= ctx.warning_watts:
        result.warnings += 1
        policy.on_warning(ctx)

    if total > ctx.limit_watts:
        result.cap_events += 1
        if admitted > 0.0:
            # Capped while planning beyond the physical limit: the
            # throttle is (at least partly) the oversubscription's doing.
            result.osub_cap_events += 1
        policy.on_cap(ctx)
        power_no_oc = tick_power - allowed_extra
        cuts = _throttle_cuts(
            tick_power, allowed_extra, ctx.limit_watts,
            fair=policy.capping_mode == "fair")
        dynamic = np.maximum(power_no_oc - idle, 1e-6)
        freq_cut = np.clip(cuts / (2.0 * dynamic), 0.0, 0.5)
        # A capping event is rack-wide: the hardware response
        # cancels every boost on the rack for the tick (the paper's
        # §III: capping causes 30-50 % degradation and "diminishes
        # the performance benefits").  Throttled servers also run
        # below turbo.
        result.perf_sum += float(
            np.sum(ctx.demand_cores * (1.0 - freq_cut)))
        # Penalty on non-overclocked VMs (paper Table I): the
        # power-weighted mean frequency cut across bystander
        # servers — power-hungry servers host more active work, so
        # a cut there hurts proportionally more VMs (§III Q4).
        bystanders = granted == 0
        if np.any(bystanders):
            weights = power_no_oc[bystanders]
            result.noc_penalty_sum += float(
                np.average(freq_cut[bystanders], weights=weights))
            result.noc_penalty_events += 1
        return CAP_RECOVERY_TICKS

    # Fractional success: a grant the feedback loop held below
    # the full boost delivered only part of the speedup.
    result.successful_core_ticks += float(
        np.sum(granted * boost_frac))
    result.perf_sum += float(np.sum(
        granted * (1.0 + boost_frac * (ratio - 1.0))
        + (ctx.demand_cores - granted)))
    return 0


def simulate_rack_reference(rack: RackTrace, policy: TracePolicy, *,
                            power_model: PowerModel = DEFAULT_POWER_MODEL,
                            warning_fraction: float = 0.95,
                            target_freq_ghz: float = 4.0) -> RackSimResult:
    """Scalar oracle: run ``policy`` over ``rack`` one tick at a time.

    Scores weeks 2..N (week 1 is the policy's first history window).
    This is the semantic reference for :func:`simulate_rack`; keep it a
    plain per-tick loop."""
    setup, result = _prepare(rack, policy, power_model, warning_fraction,
                             target_freq_ghz)
    times, power, util, demand = (setup.times, setup.power, setup.util,
                                  setup.demand)
    tpw = setup.ticks_per_week
    ones_buf = np.ones(setup.n_servers)
    recovery_remaining = 0
    for week in range(1, setup.weeks):
        h = slice((week - 1) * tpw, week * tpw)
        policy.begin_week(times[h], power[:, h], demand[:, h], setup.limit)
        for i in range(week * tpw, min((week + 1) * tpw, len(times))):
            ctx = TickContext(
                index=i, time=float(times[i]), limit_watts=setup.limit,
                warning_watts=setup.warning_watts,
                observed_power=power[:, i - 1],
                observed_util=util[:, i - 1],
                oracle_power=power[:, i],
                oracle_util=util[:, i],
                demand_cores=demand[:, i],
                delta_full_watts=setup.delta_full)
            recovery_remaining = _apply_tick(
                result, policy, ctx, policy.decide(ctx),
                recovery_remaining, ones_buf, setup.ratio, setup.idle)
    return result


@dataclass
class _Block:
    """A built segment: vectorized per-tick accounting plus the event
    scan.  Float contributions are kept as Python-float lists so the
    consumer accumulates them in exactly the scalar order (bit-identical
    sums); integer totals are summed in bulk (exact either way)."""

    start: int   # view-relative first tick
    stop: int    # view-relative end (exclusive)
    d_arr: np.ndarray        # per-tick demanded cores (int)
    g_arr: np.ndarray        # per-tick granted cores (int)
    d_list: list             # d_arr as Python ints (recovery perf adds)
    succ_list: list          # per-tick successful core-ticks
    perf_list: list          # per-tick perf contributions (success case)
    stranded_list: list      # per-tick stranded watts (limit - total)+
    admitted_list: Optional[list]  # per-tick admitted osub watts, or None
    events: list             # block-relative ticks needing scalar fallback
    warn_prefix: np.ndarray  # prefix counts of warning-threshold crossings
    commit: Optional[object]  # SegmentPlan.commit

    def next_event(self, rel: int) -> int:
        """First event tick at view-relative position >= ``rel``, or
        ``stop`` when the rest of the block is quiet."""
        j = bisect.bisect_left(self.events, rel - self.start)
        if j < len(self.events):
            return self.start + int(self.events[j])
        return self.stop

    def d_total(self, a: int, b: int) -> int:
        return int(np.sum(self.d_arr[a:b]))

    def g_total(self, a: int, b: int) -> int:
        return int(np.sum(self.g_arr[a:b]))


def _build_block(view: RackWeekView, plan: SegmentPlan,
                 ratio: float, warning_inert: bool) -> _Block:
    """Vectorize the accounting of one planned segment.

    Every elementwise expression mirrors :func:`_apply_tick` on 2-D
    arrays (ticks × servers); row reductions are bit-equal to the 1-D
    sums of the scalar path, so per-tick contributions match bitwise."""
    sl = slice(plan.start, plan.stop)
    demand = view.demand[sl]
    granted = np.maximum(np.minimum(plan.granted, demand), 0)
    raw_extra = granted * view.delta_full_watts * view.oracle_util[sl]
    if plan.enforcement is not None:
        allowed_extra = np.clip(plan.enforcement - view.oracle_power[sl],
                                0.0, raw_extra)
    else:
        allowed_extra = raw_extra
    boost_frac = np.divide(allowed_extra, raw_extra,
                           out=np.ones_like(raw_extra),
                           where=raw_extra > 0)
    tick_power = view.oracle_power[sl] + allowed_extra
    totals = np.sum(tick_power, axis=1)
    # Event ticks leave the segment for the scalar fallback.  Capping
    # always does (on_cap, throttle accounting, recovery); a warning
    # crossing only needs the fallback when the policy's on_warning hook
    # does something — warning-inert policies count warnings in bulk via
    # the prefix sums below and keep those ticks vectorized.
    warn = totals >= view.warning_watts
    if warning_inert:
        events = np.flatnonzero(totals > view.limit_watts).tolist()
    else:
        events = np.flatnonzero(warn
                                | (totals > view.limit_watts)).tolist()
    warn_prefix = np.concatenate(
        ([0], np.cumsum(warn, dtype=np.int64)))
    succ = np.sum(granted * boost_frac, axis=1)
    perf = np.sum(granted * (1.0 + boost_frac * (ratio - 1.0))
                  + (demand - granted), axis=1)
    stranded = np.maximum(0.0, view.limit_watts - totals)
    admitted_list = (None if plan.osub_admitted is None
                     else plan.osub_admitted.tolist())
    d_arr = np.sum(demand, axis=1)
    return _Block(start=plan.start, stop=plan.stop,
                  d_arr=d_arr, g_arr=np.sum(granted, axis=1),
                  d_list=d_arr.tolist(), succ_list=succ.tolist(),
                  perf_list=perf.tolist(),
                  stranded_list=stranded.tolist(),
                  admitted_list=admitted_list, events=events,
                  warn_prefix=warn_prefix, commit=plan.commit)


def _fast_tick(view: RackWeekView, policy: TracePolicy,
               result: RackSimResult, rel: int, recovery_remaining: int,
               ones_buf: np.ndarray, ratio: float, idle: float) -> int:
    """Scalar fallback for one tick of the fast path: rebuild the
    TickContext from the tick-major rows and run the shared tick body."""
    ctx = TickContext(
        index=int(view.indices[rel]), time=float(view.times[rel]),
        limit_watts=view.limit_watts, warning_watts=view.warning_watts,
        observed_power=view.observed_power[rel],
        observed_util=view.observed_util[rel],
        oracle_power=view.oracle_power[rel],
        oracle_util=view.oracle_util[rel],
        demand_cores=view.demand[rel],
        delta_full_watts=view.delta_full_watts)
    decided = policy.fast_decide(view, rel, ctx)
    return _apply_tick(result, policy, ctx, decided, recovery_remaining,
                       ones_buf, ratio, idle)


def _fold(acc: float, values: list, a: int, b: int) -> float:
    """Left-fold ``values[a:b]`` into ``acc`` one element at a time —
    the same addition order as the scalar per-tick loop, so the float
    result is bitwise identical to it."""
    for k in range(a, b):
        acc += values[k]
    return acc


def _consume_block(result: RackSimResult, block: _Block, rel: int,
                   recovery_remaining: int) -> tuple[int, int]:
    """Account planned ticks from ``rel`` until the block ends or an
    event tick is reached (returned ``rel`` points at it).  Recovery
    ticks are consumed unconditionally — the scalar path skips their
    warning/cap checks — and committed state mutations are replayed
    after every chunk, before any fallback tick can observe them."""
    stop = block.stop
    while rel < stop:
        if recovery_remaining > 0:
            take = min(recovery_remaining, stop - rel)
            a = rel - block.start
            b = a + take
            result.ticks += take
            result.demanded_core_ticks += block.d_total(a, b)
            result.granted_core_ticks += block.g_total(a, b)
            result.perf_sum = _fold(result.perf_sum, block.d_list, a, b)
            result.stranded_watt_ticks = _fold(
                result.stranded_watt_ticks, block.stranded_list, a, b)
            if block.admitted_list is not None:
                result.osub_admitted_watt_ticks = _fold(
                    result.osub_admitted_watt_ticks,
                    block.admitted_list, a, b)
            recovery_remaining -= take
            rel += take
            if block.commit is not None:
                block.commit(rel - block.start)
            continue
        event = block.next_event(rel)
        if event == rel:
            break  # caller routes the event tick through _fast_tick
        a = rel - block.start
        b = event - block.start
        result.ticks += event - rel
        result.warnings += int(block.warn_prefix[b] - block.warn_prefix[a])
        result.demanded_core_ticks += block.d_total(a, b)
        result.granted_core_ticks += block.g_total(a, b)
        result.successful_core_ticks = _fold(
            result.successful_core_ticks, block.succ_list, a, b)
        result.perf_sum = _fold(result.perf_sum, block.perf_list, a, b)
        result.stranded_watt_ticks = _fold(
            result.stranded_watt_ticks, block.stranded_list, a, b)
        if block.admitted_list is not None:
            result.osub_admitted_watt_ticks = _fold(
                result.osub_admitted_watt_ticks, block.admitted_list, a, b)
        rel = event
        if block.commit is not None:
            block.commit(rel - block.start)
        if rel < stop:
            break  # stopped at an event tick
    return rel, recovery_remaining


def _run_week_fast(view: RackWeekView, policy: TracePolicy,
                   result: RackSimResult, recovery_remaining: int,
                   has_fast: bool, warning_inert: bool,
                   ones_buf: np.ndarray, ratio: float, idle: float) -> int:
    n = view.n_ticks
    stateless = policy.tick_stateless
    block: Optional[_Block] = None
    rel = 0
    # Re-planning after every diverging tick is wasted work during
    # active exploration phases (the next tick usually diverges too):
    # after a failed plan, run a geometrically growing number of scalar
    # ticks before trying again.  Purely a scheduling heuristic — the
    # scalar fallback is always correct.
    cooldown = 0
    next_cooldown = 1
    while rel < n:
        if block is None or rel >= block.stop:
            block = None
            if has_fast and cooldown == 0:
                end = n if stateless else min(n, rel + _FAST_LOOKAHEAD)
                plan = policy.plan_segment(view, rel, end)
                if plan is not None and plan.stop > rel:
                    block = _build_block(view, plan, ratio,
                                         warning_inert
                                         or plan.warning_inert)
                    next_cooldown = 1
                else:
                    cooldown = next_cooldown
                    next_cooldown = min(next_cooldown * 2, 32)
            elif cooldown > 0:
                cooldown -= 1
        if block is None or rel >= block.stop:
            recovery_remaining = _fast_tick(
                view, policy, result, rel, recovery_remaining,
                ones_buf, ratio, idle)
            rel += 1
            if not stateless:
                block = None  # the fallback tick may have mutated state
            continue
        rel, recovery_remaining = _consume_block(
            result, block, rel, recovery_remaining)
        if rel < block.stop:
            # Event tick inside the planned segment: run it scalar
            # (warning/cap hooks included), then re-plan for stateful
            # policies whose hook may have shifted state.
            recovery_remaining = _fast_tick(
                view, policy, result, rel, recovery_remaining,
                ones_buf, ratio, idle)
            rel += 1
            if not stateless:
                block = None
    return recovery_remaining


def simulate_rack(rack: RackTrace, policy: TracePolicy, *,
                  power_model: PowerModel = DEFAULT_POWER_MODEL,
                  warning_fraction: float = 0.95,
                  target_freq_ghz: float = 4.0,
                  fast: bool = True) -> RackSimResult:
    """Run ``policy`` over ``rack``'s trace; scores weeks 2..N (week 1 is
    the policy's first history window).

    ``fast=True`` (default) runs the vectorized fast path — bit-identical
    counters to :func:`simulate_rack_reference`, which ``fast=False``
    selects explicitly."""
    if not fast:
        return simulate_rack_reference(
            rack, policy, power_model=power_model,
            warning_fraction=warning_fraction,
            target_freq_ghz=target_freq_ghz)
    setup, result = _prepare(rack, policy, power_model, warning_fraction,
                             target_freq_ghz)
    # Tick-major (C-contiguous) copies: row k is tick k's server vector,
    # carrying bitwise the same values as the scalar path's column
    # slices — elementwise NumPy ops and row/column sums are bit-stable
    # across layouts.
    power_t = np.ascontiguousarray(setup.power.T)
    util_t = np.ascontiguousarray(setup.util.T)
    demand_t = np.ascontiguousarray(setup.demand.T)
    power_sums = np.sum(power_t, axis=1)
    all_indices = np.arange(len(setup.times), dtype=np.int64)
    ones_buf = np.ones(setup.n_servers)
    tpw = setup.ticks_per_week
    # Belt and braces: only honor the declaration when on_warning really
    # is the base no-op, so a subclass that overrides the hook without
    # flipping the flag degrades to correct-but-slower.
    warning_inert = (policy.warning_inert
                     and type(policy).on_warning is TracePolicy.on_warning)
    recovery_remaining = 0
    for week in range(1, setup.weeks):
        h = slice((week - 1) * tpw, week * tpw)
        policy.begin_week(setup.times[h], setup.power[:, h],
                          setup.demand[:, h], setup.limit)
        w0 = week * tpw
        w1 = min((week + 1) * tpw, len(setup.times))
        view = RackWeekView(
            indices=all_indices[w0:w1],
            times=setup.times[w0:w1],
            observed_power=power_t[w0 - 1:w1 - 1],
            observed_util=util_t[w0 - 1:w1 - 1],
            oracle_power=power_t[w0:w1],
            oracle_util=util_t[w0:w1],
            demand=demand_t[w0:w1],
            observed_power_sums=power_sums[w0 - 1:w1 - 1],
            oracle_power_sums=power_sums[w0:w1],
            limit_watts=setup.limit,
            warning_watts=setup.warning_watts,
            delta_full_watts=setup.delta_full)
        has_fast = policy.begin_week_fast(view)
        recovery_remaining = _run_week_fast(
            view, policy, result, recovery_remaining, has_fast,
            warning_inert, ones_buf, setup.ratio, setup.idle)
    return result


@dataclass(frozen=True)
class PolicyScore:
    """Table-I row: one policy aggregated over a fleet."""

    policy: str
    cap_events: int
    normalized_caps: float
    success_rate: float
    cap_penalty: float
    normalized_performance: float
    # Oversubscription columns (zero for the non-oversubscribing
    # policies): mean stranded / admitted watts per rack-tick, and the
    # count of capping events attributed to oversubscribed headroom.
    stranded_watts: float = 0.0
    osub_admitted_watts: float = 0.0
    osub_cap_events: int = 0

    def row(self) -> str:
        return (f"{self.policy:<17} {self.normalized_caps:>10.1f} "
                f"{self.success_rate:>10.1%} {self.cap_penalty:>10.1%} "
                f"{self.normalized_performance:>12.3f}")


@dataclass
class PolicyAccumulator:
    """Running fleet totals for one policy — the streaming counterpart
    of summing a ``list[RackSimResult]``.

    Results must be folded in rack order: float accumulation is a left
    fold from zero, exactly what ``sum()`` over an ordered list does, so
    a streaming sweep that adds results in submission-slot order scores
    byte-identically to the materialize-everything path.
    """

    policy: str
    racks: int = 0
    ticks: int = 0
    cap_events: int = 0
    demanded_core_ticks: int = 0
    successful_core_ticks: float = 0.0
    perf_sum: float = 0.0
    noc_penalty_sum: float = 0.0
    noc_penalty_events: int = 0
    stranded_watt_ticks: float = 0.0
    osub_admitted_watt_ticks: float = 0.0
    osub_cap_events: int = 0

    def add(self, result: RackSimResult) -> None:
        self.racks += 1
        self.ticks += result.ticks
        self.cap_events += result.cap_events
        self.demanded_core_ticks += result.demanded_core_ticks
        self.successful_core_ticks += result.successful_core_ticks
        self.perf_sum += result.perf_sum
        self.noc_penalty_sum += result.noc_penalty_sum
        self.noc_penalty_events += result.noc_penalty_events
        self.stranded_watt_ticks += result.stranded_watt_ticks
        self.osub_admitted_watt_ticks += result.osub_admitted_watt_ticks
        self.osub_cap_events += result.osub_cap_events

    def score(self, central_caps: Optional[int]) -> PolicyScore:
        demanded = self.demanded_core_ticks
        pen_n = self.noc_penalty_events
        ticks = self.ticks
        return PolicyScore(
            policy=self.policy,
            cap_events=self.cap_events,
            normalized_caps=(self.cap_events / central_caps
                             if central_caps else float(self.cap_events)),
            success_rate=(self.successful_core_ticks / demanded
                          if demanded else 1.0),
            cap_penalty=self.noc_penalty_sum / pen_n if pen_n else 0.0,
            normalized_performance=(self.perf_sum / demanded
                                    if demanded else 1.0),
            stranded_watts=(self.stranded_watt_ticks / ticks
                            if ticks else 0.0),
            osub_admitted_watts=(self.osub_admitted_watt_ticks / ticks
                                 if ticks else 0.0),
            osub_cap_events=self.osub_cap_events)


def _finalize_scores(accs: dict[str, PolicyAccumulator]
                     ) -> dict[str, PolicyScore]:
    """Turn accumulators into Table-I rows (caps normalized to Central
    when it ran, like the paper)."""
    central_caps = None
    if "Central" in accs:
        central_caps = max(1, accs["Central"].cap_events)
    return {name: acc.score(central_caps) for name, acc in accs.items()}


def _aggregate_scores(
        raw: dict[str, list[RackSimResult]]) -> dict[str, PolicyScore]:
    """Fold per-rack results (in rack order) into Table-I rows.  Both the
    serial and the process-pool sweeps feed this with identically-ordered
    lists, which keeps the float sums — and hence the output — byte-
    identical across ``workers`` settings."""
    accs: dict[str, PolicyAccumulator] = {}
    for name, results in raw.items():
        acc = accs[name] = PolicyAccumulator(policy=name)
        for result in results:
            acc.add(result)
    return _finalize_scores(accs)


def compare_policies(fleet: SyntheticFleet,
                     policy_names: Sequence[str] = TABLE1_POLICIES, *,
                     power_model: PowerModel = DEFAULT_POWER_MODEL,
                     workers: Optional[int] = 1,
                     fast: bool = True) -> dict[str, PolicyScore]:
    """Run every policy over every rack of a fleet and aggregate.

    ``workers=1`` runs serially in-process; ``workers=N`` (or None →
    ``os.cpu_count()``) fans the (rack, policy) grid over a process pool
    with byte-identical output (see :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import run_rack_policy_jobs
    names = tuple(policy_names)
    per_rack = run_rack_policy_jobs(fleet.racks, names,
                                    power_model=power_model,
                                    workers=workers, fast=fast)
    raw: dict[str, list[RackSimResult]] = {name: [] for name in names}
    for rack_results in per_rack:
        for name in names:
            raw[name].append(rack_results[name])
    return _aggregate_scores(raw)


def compare_policies_streaming(
        config: FleetConfig,
        policy_names: Sequence[str] = TABLE1_POLICIES, *,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        workers: Optional[int] = 1, fast: bool = True,
        max_inflight: Optional[int] = None) -> dict[str, PolicyScore]:
    """Sweep the fleet ``config`` describes without materializing it.

    Workers regenerate each rack from its spawned seed stream
    (:class:`~repro.experiments.parallel.RackSpec`); results fold into
    running accumulators in submission-slot order.  Byte-identical to
    ``compare_policies(generate_fleet(config), ...)`` at any worker
    count, with driver memory bounded by the in-flight window instead of
    the fleet size."""
    from repro.experiments.parallel import (
        RackSpec,
        iter_rack_policy_results,
    )
    names = tuple(policy_names)
    specs = (RackSpec(config=config, rack_index=r)
             for r in range(config.n_racks))
    accs = {name: PolicyAccumulator(policy=name) for name in names}
    for _rack_slot, name, result in iter_rack_policy_results(
            specs, names, power_model=power_model, workers=workers,
            fast=fast, max_inflight=max_inflight):
        accs[name].add(result)
    return _finalize_scores(accs)


#: Table I's cluster classes: per-rack target P99 utilization ranges.
_CLUSTER_CLASS_RANGES = {
    "High-Power": (0.86, 0.96),
    "Medium-Power": (0.78, 0.88),
    "Low-Power": (0.52, 0.72),
}


def cluster_class_fleet_configs(*, n_racks: int = 12, weeks: int = 2,
                                seed: int = 42) -> dict[str, FleetConfig]:
    """Configs for Table I's High/Medium/Low-power classes.

    The configs alone are enough to drive :func:`table1_streaming`;
    :func:`cluster_class_fleets` materializes them for the in-memory
    path."""
    configs: dict[str, FleetConfig] = {}
    for i, (name, p99_range) in enumerate(_CLUSTER_CLASS_RANGES.items()):
        configs[name] = FleetConfig(
            n_racks=n_racks, weeks=weeks, seed=seed + i,
            p99_util_beta=(2.0, 2.0), p99_util_range=p99_range,
            region=name.lower())
    return configs


def cluster_class_fleets(*, n_racks: int = 12, weeks: int = 2,
                         seed: int = 42) -> dict[str, SyntheticFleet]:
    """Three fleets matching Table I's High/Medium/Low-power classes."""
    configs = cluster_class_fleet_configs(n_racks=n_racks, weeks=weeks,
                                          seed=seed)
    return {name: generate_fleet(config)
            for name, config in configs.items()}


def table1(fleets: dict[str, SyntheticFleet], *,
           power_model: PowerModel = DEFAULT_POWER_MODEL,
           workers: Optional[int] = 1,
           fast: bool = True) -> dict[str, dict[str, PolicyScore]]:
    """Full Table I: per cluster class, per policy.

    With ``workers`` > 1 the whole (fleet, rack, policy) grid shares one
    process pool; per-fleet aggregation runs in the same order as the
    serial path, so output is byte-identical to ``workers=1``."""
    from repro.experiments.parallel import run_rack_policy_jobs
    racks = [rack for fleet in fleets.values() for rack in fleet.racks]
    per_rack = run_rack_policy_jobs(racks, TABLE1_POLICIES,
                                    power_model=power_model,
                                    workers=workers, fast=fast)
    results: dict[str, dict[str, PolicyScore]] = {}
    offset = 0
    for name, fleet in fleets.items():
        raw: dict[str, list[RackSimResult]] = {
            p: [] for p in TABLE1_POLICIES}
        for r in range(len(fleet.racks)):
            for p in TABLE1_POLICIES:
                raw[p].append(per_rack[offset + r][p])
        offset += len(fleet.racks)
        results[name] = _aggregate_scores(raw)
    return results


def table1_streaming(configs: dict[str, FleetConfig], *,
                     power_model: PowerModel = DEFAULT_POWER_MODEL,
                     workers: Optional[int] = 1, fast: bool = True,
                     max_inflight: Optional[int] = None
                     ) -> dict[str, dict[str, PolicyScore]]:
    """Full Table I without materializing any fleet.

    The whole (fleet, rack, policy) grid streams through one process
    pool as :class:`~repro.experiments.parallel.RackSpec` jobs; results
    arrive in submission order, so per-fleet accumulators fold in
    exactly the order :func:`table1` aggregates its materialized lists —
    the scores are byte-identical to ``table1(cluster fleets)`` at any
    worker count, with driver memory bounded by the in-flight window."""
    from repro.experiments.parallel import (
        RackSpec,
        iter_rack_policy_results,
    )
    order = list(configs)
    # Fleet boundaries in the flattened rack-slot space.
    bounds: list[int] = []
    total = 0
    for name in order:
        total += configs[name].n_racks
        bounds.append(total)
    specs = (RackSpec(config=configs[name], rack_index=r)
             for name in order
             for r in range(configs[name].n_racks))
    accs = {name: {p: PolicyAccumulator(policy=p) for p in TABLE1_POLICIES}
            for name in order}
    fleet_idx = 0
    for rack_slot, policy, result in iter_rack_policy_results(
            specs, TABLE1_POLICIES, power_model=power_model,
            workers=workers, fast=fast, max_inflight=max_inflight):
        # Results arrive slot-ordered, so the owning fleet only ever
        # advances — no per-result search needed.
        while rack_slot >= bounds[fleet_idx]:
            fleet_idx += 1
        accs[order[fleet_idx]][policy].add(result)
    return {name: _finalize_scores(accs[name]) for name in order}


def format_table1(results: dict[str, dict[str, PolicyScore]]) -> str:
    """Render Table I in the paper's layout."""
    lines = [f"{'System':<17} {'Norm#Caps':>10} {'Success':>10} "
             f"{'CapPenalty':>10} {'NormPerf':>12}"]
    for cluster, scores in results.items():
        lines.append(f"--- {cluster} ---")
        for name in TABLE1_POLICIES:
            if name in scores:
                lines.append(scores[name].row())
    return "\n".join(lines)
