"""Chaos sweep: seeded random fault compositions vs safety invariants.

Each trial builds a small HA-enabled SmartOClock rack, draws a random
composite :class:`~repro.faults.spec.FaultPlan` from the trial seed
(every fault type: gOA outages, lossy channels, telemetry dropouts,
misprediction skew, forced crashes, sOA restarts, checkpoint
corruption), runs it under a deterministic synthetic load, and checks
the :mod:`~repro.sim.monitors` safety invariants after every tick.

The sweep is the PR's robustness claim in executable form: across any
sampled composition of control-plane failures, rack power stays inside
the envelope, budget splits stay within the planning limit, wear
ledgers never overdraw, fencing epochs never regress on a live sOA and
restores never overgrant.  A violation fails the sweep and prints the
offending trial seed — ``repro chaos --trials 1 --seed <that seed>``
replays the exact trial.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import MetricsTriggerPolicy
from repro.experiments.parallel import run_jobs
from repro.faults import FaultInjector, event_entropy
from repro.faults.chaos import generate_plan
from repro.sim.monitors import InvariantMonitor, InvariantViolation

__all__ = [
    "ChaosConfig",
    "ChaosTrialResult",
    "ChaosSweepResult",
    "chaos_trial",
    "chaos_sweep",
    "format_chaos_report",
]

_TURBO_GHZ = DEFAULT_POWER_MODEL.plan.turbo_ghz
_SLO_MS = 10.0


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one chaos trial's mini-cluster."""

    duration_s: float = 1800.0
    tick_s: float = 10.0
    n_servers: int = 4
    vm_cores: int = 24
    # Rack limit as a multiple of the servers' busy-at-turbo draw, low
    # enough that the capping envelope is a live constraint under
    # overclocking (the rack-envelope invariant must *matter*).
    rack_limit_factor: float = 1.06
    base_utilization: float = 0.75

    def __post_init__(self) -> None:
        if self.duration_s < 12 * self.tick_s:
            raise ValueError("chaos trial too short to be interesting")
        if self.n_servers < 2:
            raise ValueError("need >= 2 servers (evacuation needs a donor)")

    def control_config(self) -> SmartOClockConfig:
        """The platform config: HA on, cadences compressed to the
        trial's timescale so failover/checkpoint/budget paths all run
        many times per trial."""
        return SmartOClockConfig(
            control_interval_s=self.tick_s,
            telemetry_interval_s=6 * self.tick_s,
            budget_update_period_s=self.duration_s / 6.0,
            checkpoint_interval_s=self.duration_s / 15.0,
            soa_restart_delay_s=3 * self.tick_s,
            server_restart_delay_s=6 * self.tick_s,
            vm_restart_delay_s=3 * self.tick_s,
            enable_goa_ha=True,
            goa_heartbeat_interval_s=3 * self.tick_s,
            goa_lease_s=9 * self.tick_s)


@dataclass(frozen=True)
class ChaosTrialResult:
    """One trial: its seed, what failed, and a determinism fingerprint."""

    seed: int
    violations: tuple[InvariantViolation, ...]
    counters: dict[str, int]
    channel: dict[str, int]
    grants: dict[str, int]
    peak_rack_power_fraction: float

    @property
    def ok(self) -> bool:
        return not self.violations

    def metrics(self) -> dict[str, object]:
        """Flat summary; two runs of the same seed must match exactly."""
        return {
            "seed": self.seed,
            "violations": [str(v) for v in self.violations],
            "counters": dict(sorted(self.counters.items())),
            "channel": dict(sorted(self.channel.items())),
            "grants": dict(sorted(self.grants.items())),
            "peak_rack_power_fraction":
                round(self.peak_rack_power_fraction, 12),
        }


@dataclass(frozen=True)
class ChaosSweepResult:
    """All trials of one sweep."""

    base_seed: int
    trials: tuple[ChaosTrialResult, ...]

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.trials)

    @property
    def offending_seeds(self) -> tuple[int, ...]:
        return tuple(t.seed for t in self.trials if not t.ok)

    def metrics(self) -> dict[str, object]:
        return {
            "base_seed": self.base_seed,
            "trials": [t.metrics() for t in self.trials],
            "ok": self.ok,
        }


def chaos_trial(seed: int,
                config: ChaosConfig | None = None) -> ChaosTrialResult:
    """Run one seeded trial; returns its violations and fingerprint."""
    config = config or ChaosConfig()
    model = DEFAULT_POWER_MODEL
    server_ids = tuple(f"s{i}" for i in range(config.n_servers))
    plan = generate_plan(seed, duration_s=config.duration_s,
                         server_ids=server_ids, tick_s=config.tick_s)
    injector = FaultInjector(plan, seed=seed)

    busy_watts = model.uniform_server_watts(
        config.base_utilization, _TURBO_GHZ, config.vm_cores)
    rack = Rack("r0", config.rack_limit_factor
                * config.n_servers * busy_watts)
    servers = [Server(sid, model) for sid in server_ids]
    for server in servers:
        rack.add_server(server)
    datacenter = Datacenter("chaos")
    datacenter.add_rack(rack)
    platform = SmartOClockPlatform(datacenter, config.control_config(),
                                   fault_injector=injector)

    services = []
    for i, server in enumerate(servers):
        vm = VirtualMachine(config.vm_cores, name=f"svc{i}-vm",
                            priority=10, workload=f"svc{i}",
                            utilization=config.base_utilization)
        server.place_vm(vm)
        agent = platform.register_service(
            f"svc{i}",
            metrics_policy=MetricsTriggerPolicy(
                start_fraction=0.7, stop_fraction=0.2, consecutive=2))
        platform.attach_vm(f"svc{i}", vm,
                           target_freq_ghz=model.plan.overclock_max_ghz,
                           priority=10)
        services.append((agent, vm))

    # All load randomness is drawn up front, indexed by (tick, service):
    # fault-dependent control flow must not shift the draw order, or the
    # same seed would mean different load under different fault fates.
    ticks = int(config.duration_s / config.tick_s)
    rng = np.random.default_rng(
        np.random.SeedSequence(event_entropy(seed, "chaos-load")))
    util_noise = rng.uniform(-0.1, 0.1, size=(ticks, len(services)))
    p99_noise = rng.uniform(-1.0, 1.0, size=(ticks, len(services)))

    monitor = InvariantMonitor(platform)
    peak_fraction = 0.0
    peak_start = config.duration_s / 3.0
    peak_end = 2.0 * config.duration_s / 3.0
    for i in range(ticks):
        now = i * config.tick_s
        in_peak = peak_start <= now < peak_end
        for j, (agent, vm) in enumerate(services):
            vm.set_utilization(float(np.clip(
                config.base_utilization + (0.15 if in_peak else 0.0)
                + util_noise[i, j], 0.05, 1.0)))
            p99 = (8.5 if in_peak else 2.5) + float(p99_noise[i, j])
            agent.observe(now, p99, _SLO_MS)
        platform.tick(now, config.tick_s)
        monitor.check(now)
        peak_fraction = max(peak_fraction,
                            rack.power_watts() / rack.power_limit_watts)
    if platform.lifecycle is not None:
        platform.lifecycle.finish(config.duration_s)

    counters = platform.fault_counters()
    assert counters is not None  # injector is always present here
    return ChaosTrialResult(
        seed=seed,
        violations=tuple(monitor.violations),
        counters=counters,
        channel=platform.channel_statistics(),
        grants=platform.grant_statistics(),
        peak_rack_power_fraction=peak_fraction)


def _trial_job(payload: "tuple[int, ChaosConfig | None]") -> ChaosTrialResult:
    """Spawn-safe sweep worker: one seeded trial per payload."""
    trial_seed, config = payload
    return chaos_trial(trial_seed, config)


def chaos_sweep(trials: int, seed: int = 0,
                config: ChaosConfig | None = None, *,
                workers: int | None = 1) -> ChaosSweepResult:
    """Run ``trials`` independent trials at seeds ``seed .. seed+n-1``.

    Trials are pure functions of (seed, config), so they shard over a
    spawn pool with a seed-keyed merge: output is byte-identical at any
    ``workers`` count (``1`` runs in-process, ``None`` → usable CPUs).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1: {trials}")
    results = run_jobs(_trial_job,
                       [(seed + i, config) for i in range(trials)],
                       workers=workers)
    return ChaosSweepResult(base_seed=seed, trials=tuple(results))


def format_chaos_report(result: ChaosSweepResult, *,
                        as_json: bool = False) -> str:
    """Stable-format report; JSON mode is the CI determinism probe."""
    if as_json:
        return json.dumps(result.metrics(), indent=2, sort_keys=True)
    lines = [f"{'seed':>8}  {'ok':>4}  {'faults':>7}  {'peak':>8}  "
             f"{'stale rej':>9}  {'failovers':>9}"]
    for trial in result.trials:
        active = sum(v for k, v in trial.counters.items()
                     if not k.startswith("ha_"))
        lines.append(
            f"{trial.seed:>8}  {'yes' if trial.ok else 'NO':>4}  "
            f"{active:>7}  {trial.peak_rack_power_fraction:>8.4f}  "
            f"{trial.counters.get('stale_pushes_rejected', 0):>9}  "
            f"{trial.counters.get('ha_failovers', 0):>9}")
    for trial in result.trials:
        for violation in trial.violations:
            lines.append(f"seed {trial.seed}: {violation}")
    if result.ok:
        lines.append(f"chaos: {len(result.trials)} trials, "
                     "0 invariant violations")
    else:
        seeds = ", ".join(str(s) for s in result.offending_seeds)
        lines.append(f"chaos: INVARIANT VIOLATIONS at seed(s) {seeds}")
        lines.append("replay one deterministically with: "
                     f"repro chaos --trials 1 --seed "
                     f"{result.offending_seeds[0]}")
    return "\n".join(lines)
