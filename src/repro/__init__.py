"""SmartOClock reproduction: workload- and risk-aware overclocking.

A full reimplementation of *SmartOClock: Workload- and Risk-Aware
Overclocking in the Cloud* (ISCA 2024), including every substrate the
paper's evaluation depends on:

* :mod:`repro.core` — the SmartOClock platform itself (WI agents,
  admission control, heterogeneous budgets, decentralized enforcement);
* :mod:`repro.cluster` — datacenter topology, DVFS/power models, rack
  power capping;
* :mod:`repro.sim` — discrete-event engine and metric collectors;
* :mod:`repro.workloads` — microservice/ML/WebConf workload models;
* :mod:`repro.traces` — synthetic production-trace generation;
* :mod:`repro.prediction` — power-template prediction;
* :mod:`repro.reliability` — ageing model and overclocking budgets;
* :mod:`repro.autoscale` — the ScaleOut/ScaleUp comparators;
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart::

    from repro.cluster import Datacenter, Rack, Server, VirtualMachine
    from repro.cluster import DEFAULT_POWER_MODEL
    from repro.core import SmartOClockPlatform, MetricsTriggerPolicy

    rack = Rack("r0", power_limit_watts=2000.0)
    server = Server("s0", DEFAULT_POWER_MODEL)
    rack.add_server(server)
    dc = Datacenter()
    dc.add_rack(rack)
    platform = SmartOClockPlatform(dc)
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "cluster",
    "workloads",
    "traces",
    "prediction",
    "reliability",
    "autoscale",
    "core",
    "experiments",
]
