"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig5 --racks 60
    python -m repro table1 --racks 4 --weeks 2
    python -m repro cluster --duration 3600
    python -m repro fig15

Each subcommand prints the same series/rows its benchmark counterpart
reports (the benchmarks add assertions and timing on top).

``repro lint`` is different in kind: it runs the project-specific
static-analysis rules (see :mod:`repro.analysis`) over a source tree
and exits non-zero on violations.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# Argument validation: reject out-of-domain numeric values at the
# argparse layer (exit code 2 + usage message) instead of letting them
# surface as tracebacks from deep inside trace generation or pool setup.
# ---------------------------------------------------------------------------

def _int_at_least(minimum: int, what: str) -> Callable[[str], int]:
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{what} must be an integer, got {text!r}")
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"{what} must be >= {minimum}, got {value}")
        return value
    parse.__name__ = what  # argparse uses this in "invalid ... value"
    return parse


_nonnegative_seed = _int_at_least(0, "seed")
_racks_count = _int_at_least(1, "racks")
_weeks_count = _int_at_least(2, "weeks")  # history + evaluation week
_workers_count = _int_at_least(1, "workers")
_inflight_count = _int_at_least(1, "max-inflight")
_trials_count = _int_at_least(1, "trials")


@dataclass(frozen=True)
class _Command:
    """One subcommand: handler, help text, and argument wiring.

    ``seeded`` commands get the shared ``--seed`` option; commands with
    a ``configure`` hook own their argument set entirely.
    """

    func: Callable[[argparse.Namespace], int]
    help: str
    configure: Optional[Callable[[argparse.ArgumentParser], None]] = None
    seeded: bool = True


def _cmd_list(args: argparse.Namespace) -> int:
    print("available commands:")
    for name, command in sorted(_COMMANDS.items()):
        print(f"  {name:<10} {command.help}")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.characterization import fig1_load_patterns
    patterns = fig1_load_patterns()
    for name, (hours, levels) in patterns.items():
        hourly = [float(np.mean(levels[(hours >= h) & (hours < h + 1)]))
                  for h in range(24)]
        print(f"{name}: " + " ".join(f"{v:4.2f}" for v in hourly))
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.characterization import (
        fig2_fig3_microservice_sweep,
    )
    sweep = fig2_fig3_microservice_sweep()
    print(f"{'service':<14}{'load':<8}{'env':<10}"
          f"{'p99(ms)':>9}{'util':>6}{'SLO ok':>8}")
    for point in sweep:
        print(f"{point.service:<14}{point.load:<8}"
              f"{point.environment:<10}{point.p99_ms:9.1f}"
              f"{point.utilization:6.2f}{str(point.meets_slo):>8}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.characterization import fig5_rack_power_cdf
    cdfs = fig5_rack_power_cdf(n_racks=args.racks, seed=args.seed)
    for name, cdf in cdfs.items():
        print(f"{name:>4}: P50={cdf.value_at(0.5):.2f} "
              f"P90={cdf.value_at(0.9):.2f} P99={cdf.value_at(0.99):.2f}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.experiments.characterization import fig7_aging_policies
    for name, curve in fig7_aging_policies(days=args.days).items():
        print(f"{name:<18} {float(curve[-1]):6.2f} days of wear")
    return 0


def _cmd_fig15(args: argparse.Namespace) -> int:
    from repro.prediction.predictor import evaluate_template
    from repro.prediction.templates import TemplateKind
    from repro.traces.synthetic import FleetConfig, generate_fleet
    week = 7 * 86400.0
    fleet = generate_fleet(FleetConfig(n_racks=args.racks, weeks=2,
                                       seed=args.seed))
    for kind in TemplateKind:
        rmses: list[float] = []
        for rack in fleet.racks:
            power = rack.total_power()
            hist = rack.times < week
            ev = evaluate_template(kind, rack.times[hist], power[hist],
                                   rack.times[~hist], power[~hist])
            rmses.append(ev.rmse / len(rack.servers))
        print(f"{kind.value:<9} median per-server RMSE "
              f"{float(np.median(rmses)):7.2f} W")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.largescale import (
        cluster_class_fleet_configs,
        format_table1,
        table1_streaming,
    )
    # The streaming path: the driver ships rack *specs* and folds
    # results online, so `--racks 7100` runs in bounded memory; output
    # is byte-identical to materializing the fleets at any worker count.
    configs = cluster_class_fleet_configs(n_racks=args.racks,
                                          weeks=args.weeks, seed=args.seed)
    print(format_table1(table1_streaming(configs, workers=args.workers,
                                         max_inflight=args.max_inflight)))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.experiments.cluster import (
        ENVIRONMENTS,
        ClusterConfig,
        run_environment,
    )
    config = ClusterConfig(duration_s=args.duration, seed=args.seed)
    for env in ENVIRONMENTS:
        result = run_environment(env, config)
        high = result.per_class["high"]
        print(f"{env:<12} high p99={high.p99_ms:7.1f}ms "
              f"miss={high.missed_slo_fraction:6.3%} "
              f"instances={high.avg_instances:4.2f} "
              f"totalE={result.total_energy_j / 1e6:6.1f}MJ")
    return 0


def _cmd_fig16(args: argparse.Namespace) -> int:
    from repro.experiments.production import fig16_service_b
    result = fig16_service_b()
    print(f"utilization reduction at peak: "
          f"{result.util_reduction_at_peak:.1%}")
    print(f"iso-utilization RPS gain:      {result.iso_util_rps_gain:.1%}")
    return 0


def _cmd_fig17(args: argparse.Namespace) -> int:
    from repro.experiments.production import fig17_service_c
    print(f"5-minute peak reduction: "
          f"{fig17_service_c().peak_reduction:.1%}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.faults import (
        FaultScenarioConfig,
        fault_injection_experiment,
        format_fault_report,
    )
    config = FaultScenarioConfig(duration_s=args.duration, seed=args.seed,
                                 message_drop_prob=args.drop_prob)
    result = fault_injection_experiment(config, workers=args.workers)
    print(format_fault_report(result))
    # Exit non-zero if the decentralization claim failed: a faulted run
    # must never leave the rack above its limit after enforcement.
    safe = result.faulted.peak_rack_power_fraction <= 1.0 + 1e-9
    return 0 if safe else 1


def _cmd_recovery(args: argparse.Namespace) -> int:
    from repro.experiments.recovery import (
        RecoveryScenarioConfig,
        format_recovery_report,
        recovery_experiment,
    )
    config = RecoveryScenarioConfig(duration_s=args.duration,
                                    seed=args.seed)
    result = recovery_experiment(config, workers=args.workers)
    print(format_recovery_report(result, as_json=args.json))
    # Exit non-zero if a hard safety claim failed: rack above its limit
    # after enforcement, or a restored sOA granting beyond its
    # checkpointed budget assignment.
    return 0 if result.safe else 1


def _cmd_oversub(args: argparse.Namespace) -> int:
    from repro.experiments.oversubscription import (
        OversubScenarioConfig,
        format_oversub_report,
        oversubscription_experiment,
    )
    config = OversubScenarioConfig(n_racks=args.racks, seed=args.seed)
    result = oversubscription_experiment(config, workers=args.workers)
    print(format_oversub_report(result, as_json=args.json))
    # Exit non-zero if the oversubscription claims failed: a non-monotone
    # risk ladder, a conservative run escaping the Table-1 envelope, or
    # any rack left above its physical limit after enforcement.
    return 0 if result.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import chaos_sweep, format_chaos_report
    result = chaos_sweep(args.trials, seed=args.seed,
                         workers=args.workers)
    print(format_chaos_report(result, as_json=args.json))
    # Exit non-zero on any invariant violation; the report names the
    # offending seed(s) for one-command deterministic replay.
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run
    return run(args)


def _configure_lint(parser: argparse.ArgumentParser) -> None:
    from repro.analysis.cli import configure_parser
    configure_parser(parser)


_COMMANDS: dict[str, _Command] = {
    "list": _Command(_cmd_list, "list available commands", seeded=False),
    "fig1": _Command(_cmd_fig1, "weekday load patterns of Services A/B/C"),
    "fig2": _Command(_cmd_fig2, "SocialNet latency sweep (also covers fig3)"),
    "fig5": _Command(_cmd_fig5, "rack power utilization CDFs"),
    "fig7": _Command(_cmd_fig7, "CPU ageing under overclocking policies"),
    "fig15": _Command(_cmd_fig15, "template prediction accuracy"),
    "table1": _Command(_cmd_table1, "policy comparison across cluster classes"),
    "cluster": _Command(_cmd_cluster, "the four-environment cluster study"),
    "fig16": _Command(_cmd_fig16, "Service B utilization vs request rate"),
    "fig17": _Command(_cmd_fig17, "Service C 5-minute peak reduction"),
    "faults": _Command(_cmd_faults,
                       "fault-free vs faulted SmartOClock comparison"),
    "recovery": _Command(_cmd_recovery,
                         "crash/recovery: naive vs SmartOClock uptime"),
    "oversub": _Command(_cmd_oversub,
                        "risk-ladder oversubscription ablation + "
                        "mispredict stress"),
    "chaos": _Command(_cmd_chaos,
                      "seeded random fault sweep vs safety invariants"),
    "lint": _Command(_cmd_lint, "run project-specific static analysis",
                     configure=_configure_lint, seeded=False),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser with one subcommand per experiment."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate SmartOClock (ISCA 2024) experiments.")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, command in _COMMANDS.items():
        p = sub.add_parser(name, help=command.help)
        p.set_defaults(func=command.func)
        if command.configure is not None:
            command.configure(p)
        if command.seeded:
            p.add_argument("--seed", type=_nonnegative_seed, default=1)
        if name in ("fig5", "fig15", "table1"):
            p.add_argument("--racks", type=_racks_count,
                           default=30 if name != "table1" else 4)
        if name == "table1":
            p.add_argument("--weeks", type=_weeks_count, default=2,
                           help="trace length; >= 2 (week 1 is the "
                                "history window)")
            p.add_argument(
                "--workers", type=_workers_count, default=None, metavar="N",
                help="process-pool size for the (rack, policy) sweep "
                     "(default: usable CPUs; 1 = serial, byte-identical "
                     "output either way)")
            p.add_argument(
                "--max-inflight", type=_inflight_count, default=None,
                metavar="M",
                help="in-flight job window (default 4x workers); bounds "
                     "driver memory during fleet-scale sweeps")
        if name == "fig7":
            p.add_argument("--days", type=int, default=5)
        if name == "cluster":
            p.add_argument("--duration", type=float, default=3600.0)
        if name == "faults":
            p.add_argument("--duration", type=float, default=3600.0)
            p.add_argument("--drop-prob", type=float, default=0.5,
                           help="budget/profile message drop probability")
            p.add_argument(
                "--workers", type=_workers_count, default=1, metavar="N",
                help="process-pool size for the matched pair (1 = "
                     "serial, byte-identical output either way)")
        if name == "recovery":
            p.add_argument("--duration", type=float, default=3600.0)
            p.add_argument(
                "--workers", type=_workers_count, default=1, metavar="N",
                help="process-pool size for the matched triple (1 = "
                     "serial, byte-identical output either way)")
            p.add_argument("--json", action="store_true",
                           help="emit canonical JSON (CI diffs repeats)")
        if name == "chaos":
            p.add_argument("--trials", type=_trials_count, default=20,
                           help="independent trials at seeds "
                                "seed..seed+N-1")
            p.add_argument(
                "--workers", type=_workers_count, default=1, metavar="N",
                help="process-pool size for the trial sweep (1 = "
                     "serial, byte-identical output either way)")
            p.add_argument("--json", action="store_true",
                           help="emit canonical JSON (CI diffs repeats)")
        if name == "oversub":
            p.add_argument("--racks", type=_racks_count, default=2,
                           help="high-power racks in the ablation fleet")
            p.add_argument(
                "--workers", type=_workers_count, default=1, metavar="N",
                help="process-pool size for the ablation sweep (1 = "
                     "serial, byte-identical output either way)")
            p.add_argument("--json", action="store_true",
                           help="emit canonical JSON (CI diffs repeats)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
