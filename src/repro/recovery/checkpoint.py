"""Durable checkpoints for sOA control-plane state.

The sOA's *durable* state — wear counters, template store history, the
grant ledger, and the last budget assignment — serializes to an in-sim
:class:`DurableStore` on a configurable cadence.  A restarted sOA
restores the latest checkpoint and re-derives everything else (stale
budget margins from the restored assignment age, templates from the
restored history); nothing is replayed.

Checkpoints are plain JSON-compatible payloads so equality is exact and
the round-trip property (checkpoint → restore → checkpoint is
bit-identical) is testable via canonical fingerprints.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

__all__ = ["SoaCheckpoint", "GoaCheckpoint", "RestoreReport",
           "CheckpointLoad", "DurableStore"]


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sha256(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()


@dataclass(frozen=True)
class SoaCheckpoint:
    """One durable snapshot of an sOA's checkpointed state."""

    server_id: str
    taken_at: float
    payload: dict[str, Any]

    def canonical_body(self) -> bytes:
        """Canonical JSON encoding — what the durable store fingerprints
        (and what a corruption fault flips bytes of)."""
        return _canonical_json(
            {"server_id": self.server_id, "taken_at": self.taken_at,
             "payload": self.payload}).encode("utf-8")

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON encoding of the snapshot —
        the identity used by the bit-identical round-trip tests."""
        return _sha256(self.canonical_body())


@dataclass(frozen=True)
class GoaCheckpoint:
    """One durable snapshot of a gOA's HA-relevant state.

    Far smaller than an sOA checkpoint by design: a promoted standby
    rebuilds profiles by *re-pulling* them from the live sOAs, so the
    only state that must survive a primary's death is the fencing epoch
    (and bookkeeping around it).  See :mod:`repro.core.goa_ha`.
    """

    rack_id: str
    taken_at: float
    payload: dict[str, Any]

    def canonical_body(self) -> bytes:
        return _canonical_json(
            {"rack_id": self.rack_id, "taken_at": self.taken_at,
             "payload": self.payload}).encode("utf-8")

    def fingerprint(self) -> str:
        return _sha256(self.canonical_body())


@dataclass(frozen=True)
class RestoreReport:
    """What a restarted sOA did with its checkpoint (audit record)."""

    server_id: str
    restored_at: float
    checkpoint_taken_at: Optional[float]  # None → cold start, no checkpoint
    grants_kept: int
    grants_revoked: int
    assignment_age_s: Optional[float]     # None → no assignment restored
    stale_margin: float
    checkpoint_budget_watts: Optional[float]
    restored_budget_watts: Optional[float]
    # True when a checkpoint existed but failed fingerprint verification:
    # the restore deliberately fell back to a cold start rather than
    # trusting corrupted durable state.
    checkpoint_corrupted: bool = False

    @property
    def cold_start(self) -> bool:
        return self.checkpoint_taken_at is None

    @property
    def overgranted(self) -> bool:
        """True if the restored sOA considers itself entitled to more
        budget than the checkpointed assignment allows — the invariant
        `repro recovery` fails the run on."""
        if self.checkpoint_budget_watts is None \
                or self.restored_budget_watts is None:
            return False
        return (self.restored_budget_watts
                > self.checkpoint_budget_watts + 1e-9)


_AnyCheckpoint = Union[SoaCheckpoint, GoaCheckpoint]

#: Decides per save event whether the written bytes rot on the medium.
#: Installed by the fault injector; the key is the server id (or
#: ``goa:<rack_id>`` for gOA checkpoints) and the float is ``taken_at``.
CorruptionHook = Callable[[str, float], bool]


@dataclass(frozen=True)
class CheckpointLoad:
    """Outcome of a verified load: at most one of the two is truthy."""

    checkpoint: Optional[_AnyCheckpoint]
    corrupted: bool = False


@dataclass
class _Stored:
    """One durable slot: the record plus its save-time fingerprint.

    ``corrupt_body`` is None for a healthy save.  When a corruption
    fault hit the write, it holds the canonical bytes *as the medium
    kept them* (one flipped byte) — verification then recomputes the
    hash over those bytes and the mismatch is detected at load time,
    exactly like a real fingerprint-checked store."""

    value: _AnyCheckpoint
    fingerprint: str
    corrupt_body: Optional[bytes] = None


def _flip_byte(body: bytes, key: str, taken_at: float) -> bytes:
    """Deterministic single-byte corruption (no RNG: the *whether* is the
    injector's seeded coin, the *where* is a pure function of the event)."""
    index = zlib.crc32(f"{key}@{taken_at}".encode("utf-8")) % len(body)
    flipped = bytearray(body)
    flipped[index] ^= 0xFF
    return bytes(flipped)


@dataclass
class DurableStore:
    """The in-sim durable storage service (one per platform).

    Keeps the latest checkpoint per server (and per rack gOA) —
    SmartOClock's checkpoints fully supersede each other, so retaining
    history would only model storage we never read.

    Every ``save`` records the checkpoint's SHA-256 fingerprint; every
    load re-verifies it.  A record whose bytes rotted (the
    ``CheckpointCorruptionFault`` path) fails verification and loads as
    *corrupted* — callers fall back to a cold start instead of trusting
    durable state the control plane never wrote.
    """

    checkpoints_saved: int = 0
    checkpoints_loaded: int = 0       # verified successful loads only
    checkpoints_corrupted: int = 0    # saves whose bytes rotted
    corruption_detected: int = 0      # loads that failed verification
    corruption_hook: Optional[CorruptionHook] = None
    _latest: dict[str, _Stored] = field(default_factory=dict)

    # -- generic verified slots ---------------------------------------

    def _store(self, key: str, value: _AnyCheckpoint,
               taken_at: float) -> None:
        self.checkpoints_saved += 1
        stored = _Stored(value=value, fingerprint=value.fingerprint())
        if self.corruption_hook is not None \
                and self.corruption_hook(key, taken_at):
            stored.corrupt_body = _flip_byte(
                value.canonical_body(), key, taken_at)
            self.checkpoints_corrupted += 1
        self._latest[key] = stored

    def _fetch(self, key: str) -> CheckpointLoad:
        stored = self._latest.get(key)
        if stored is None:
            return CheckpointLoad(checkpoint=None)
        if stored.corrupt_body is not None:
            body = stored.corrupt_body
        else:
            body = stored.value.canonical_body()
        if _sha256(body) != stored.fingerprint:
            self.corruption_detected += 1
            return CheckpointLoad(checkpoint=None, corrupted=True)
        self.checkpoints_loaded += 1
        return CheckpointLoad(checkpoint=stored.value)

    # -- sOA checkpoints ------------------------------------------------

    def save(self, checkpoint: SoaCheckpoint) -> None:
        self._store(checkpoint.server_id, checkpoint, checkpoint.taken_at)

    def load_verified(self, server_id: str) -> CheckpointLoad:
        """Load + fingerprint-verify; distinguishes missing from rotten."""
        return self._fetch(server_id)

    def load(self, server_id: str) -> Optional[SoaCheckpoint]:
        """Verified load; a corrupted record loads as None (the caller
        cold-starts).  Use :meth:`load_verified` to tell the two apart."""
        result = self._fetch(server_id)
        checkpoint = result.checkpoint
        assert checkpoint is None or isinstance(checkpoint, SoaCheckpoint)
        return checkpoint

    def has_checkpoint(self, server_id: str) -> bool:
        """A record exists for ``server_id`` (it may still be rotten)."""
        return server_id in self._latest

    # -- gOA checkpoints --------------------------------------------------

    @staticmethod
    def goa_key(rack_id: str) -> str:
        return f"goa:{rack_id}"

    def save_goa(self, checkpoint: GoaCheckpoint) -> None:
        self._store(self.goa_key(checkpoint.rack_id), checkpoint,
                    checkpoint.taken_at)

    def load_goa(self, rack_id: str) -> CheckpointLoad:
        return self._fetch(self.goa_key(rack_id))
