"""Durable checkpoints for sOA control-plane state.

The sOA's *durable* state — wear counters, template store history, the
grant ledger, and the last budget assignment — serializes to an in-sim
:class:`DurableStore` on a configurable cadence.  A restarted sOA
restores the latest checkpoint and re-derives everything else (stale
budget margins from the restored assignment age, templates from the
restored history); nothing is replayed.

Checkpoints are plain JSON-compatible payloads so equality is exact and
the round-trip property (checkpoint → restore → checkpoint is
bit-identical) is testable via canonical fingerprints.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SoaCheckpoint", "RestoreReport", "DurableStore"]


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SoaCheckpoint:
    """One durable snapshot of an sOA's checkpointed state."""

    server_id: str
    taken_at: float
    payload: dict[str, Any]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON encoding of the snapshot —
        the identity used by the bit-identical round-trip tests."""
        body = _canonical_json(
            {"server_id": self.server_id, "taken_at": self.taken_at,
             "payload": self.payload})
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RestoreReport:
    """What a restarted sOA did with its checkpoint (audit record)."""

    server_id: str
    restored_at: float
    checkpoint_taken_at: Optional[float]  # None → cold start, no checkpoint
    grants_kept: int
    grants_revoked: int
    assignment_age_s: Optional[float]     # None → no assignment restored
    stale_margin: float
    checkpoint_budget_watts: Optional[float]
    restored_budget_watts: Optional[float]

    @property
    def cold_start(self) -> bool:
        return self.checkpoint_taken_at is None

    @property
    def overgranted(self) -> bool:
        """True if the restored sOA considers itself entitled to more
        budget than the checkpointed assignment allows — the invariant
        `repro recovery` fails the run on."""
        if self.checkpoint_budget_watts is None \
                or self.restored_budget_watts is None:
            return False
        return (self.restored_budget_watts
                > self.checkpoint_budget_watts + 1e-9)


@dataclass
class DurableStore:
    """The in-sim durable storage service (one per platform).

    Keeps the latest checkpoint per server — SmartOClock's checkpoints
    fully supersede each other, so retaining history would only model
    storage we never read.
    """

    checkpoints_saved: int = 0
    checkpoints_loaded: int = 0
    _latest: dict[str, SoaCheckpoint] = field(default_factory=dict)

    def save(self, checkpoint: SoaCheckpoint) -> None:
        self.checkpoints_saved += 1
        self._latest[checkpoint.server_id] = checkpoint

    def load(self, server_id: str) -> Optional[SoaCheckpoint]:
        checkpoint = self._latest.get(server_id)
        if checkpoint is not None:
            self.checkpoints_loaded += 1
        return checkpoint

    def has_checkpoint(self, server_id: str) -> bool:
        return server_id in self._latest
