"""Risk controller: quarantine crash-prone or worn-out servers.

Overclocking is a *risk* trade (paper §II, §VI; Kumbhare et al. and
Wang et al. treat the analogous oversubscription risk as the control
signal).  The quarantine controller is the platform's circuit breaker:
a server that keeps crashing, or whose overclocking lifetime budget is
nearly exhausted, stops receiving OC grants until a cooldown expires —
it still runs VMs at rated frequency, it just may not take on more
failure risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import SmartOClockConfig

__all__ = ["QuarantinePolicy", "QuarantineController"]


@dataclass(frozen=True)
class QuarantinePolicy:
    """When to quarantine and for how long."""

    crash_threshold: int = 2       # crashes within the window that trip it
    crash_window_s: float = 3600.0
    cooldown_s: float = 1800.0     # how long grants stay blocked
    wear_floor_s: float = 0.0      # <= 0 disables the wear trigger

    def __post_init__(self) -> None:
        if self.crash_threshold < 1:
            raise ValueError(
                f"crash_threshold must be >= 1: {self.crash_threshold}")
        if self.crash_window_s <= 0:
            raise ValueError(
                f"crash_window_s must be > 0: {self.crash_window_s}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0: {self.cooldown_s}")

    @classmethod
    def from_config(cls, config: "SmartOClockConfig") -> "QuarantinePolicy":
        return cls(crash_threshold=config.quarantine_crash_threshold,
                   crash_window_s=config.quarantine_window_s,
                   cooldown_s=config.quarantine_cooldown_s,
                   wear_floor_s=config.quarantine_wear_floor_s)


@dataclass
class QuarantineController:
    """Tracks per-server crash history and active quarantines.

    The controller is the control-plane source of truth: an sOA's local
    ``quarantined_until`` is a cached projection that is re-imposed from
    here after every restart (so losing the sOA's volatile state never
    shortens a quarantine).
    """

    policy: QuarantinePolicy = field(default_factory=QuarantinePolicy)
    quarantines: int = 0
    _crash_times: dict[str, list[float]] = field(default_factory=dict)
    _release_at: dict[str, float] = field(default_factory=dict)

    def record_crash(self, server_id: str, now: float) -> bool:
        """Record one crash; returns True if it tripped a quarantine."""
        times = self._crash_times.setdefault(server_id, [])
        times.append(now)
        cutoff = now - self.policy.crash_window_s
        times[:] = [t for t in times if t > cutoff]
        if len(times) >= self.policy.crash_threshold:
            self._impose(server_id, now)
            return True
        return False

    def check_wear(self, server_id: str, min_available_s: float,
                   now: float) -> bool:
        """Quarantine when remaining OC lifetime budget hits the floor."""
        if self.policy.wear_floor_s <= 0:
            return False
        if self.active(server_id, now):
            return False
        if min_available_s < self.policy.wear_floor_s:
            self._impose(server_id, now)
            return True
        return False

    def _impose(self, server_id: str, now: float) -> None:
        release = now + self.policy.cooldown_s
        if release > self._release_at.get(server_id, float("-inf")):
            self._release_at[server_id] = release
            self.quarantines += 1

    def active(self, server_id: str, now: float) -> bool:
        return now < self._release_at.get(server_id, float("-inf"))

    def release_at(self, server_id: str) -> Optional[float]:
        """When the server's quarantine lifts (None if never imposed)."""
        return self._release_at.get(server_id)
