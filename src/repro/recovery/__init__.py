"""Server crash/recovery lifecycle for the SmartOClock control plane.

SmartOClock's headline is *risk-aware* overclocking: pushing cores past
turbo raises failure rates, and the platform must keep racks safe and
workloads alive when parts actually die (paper §II, §VI).  This package
closes the loop the fault-injection layer (PR 3) left open — servers can
crash, sOAs restart from durable checkpoints, the gOA redistributes dead
servers' budget share, crash-prone servers are quarantined, and VMs
evacuate to surviving same-rack servers:

* :mod:`repro.recovery.checkpoint` — durable sOA state snapshots and
  the in-sim :class:`DurableStore`;
* :mod:`repro.recovery.quarantine` — the risk controller blocking OC
  grants on crash-prone or wear-exhausted servers;
* :mod:`repro.recovery.lifecycle` — the per-tick crash / checkpoint /
  restore / evacuation driver.
"""

from repro.recovery.checkpoint import (
    DurableStore,
    RestoreReport,
    SoaCheckpoint,
)
from repro.recovery.lifecycle import RecoveryCounters, ServerLifecycleManager
from repro.recovery.quarantine import QuarantineController, QuarantinePolicy

__all__ = [
    "DurableStore",
    "QuarantineController",
    "QuarantinePolicy",
    "RecoveryCounters",
    "RestoreReport",
    "ServerLifecycleManager",
    "SoaCheckpoint",
]
