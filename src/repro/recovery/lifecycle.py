"""Server failure-and-recovery lifecycle.

:class:`ServerLifecycleManager` drives the full crash story on top of a
:class:`~repro.core.platform.SmartOClockPlatform`:

* **crashes** — per-tick hazard draws (wear + voltage →
  :class:`~repro.reliability.hazard.HazardModel`) plus deterministic
  :class:`~repro.faults.spec.ServerCrashFault` windows kill whole
  servers: power off, sOA dead, VMs evacuated;
* **checkpoints** — alive sOAs snapshot their durable state to the
  :class:`~repro.recovery.checkpoint.DurableStore` on a cadence;
* **restarts** — crashed servers power back on after a delay and their
  sOAs restore from the latest checkpoint;
  :class:`~repro.faults.spec.SoaRestart` events exercise the same path
  for an sOA *process* crash with the server still up;
* **evacuation** — VMs of a crashed server restart on surviving
  same-rack servers via the resource-centric placer, with downtime
  accounted per server and per VM;
* **quarantine** — the risk controller blocks OC grants on crash-prone
  or wear-exhausted servers.

Every probabilistic decision uses the fault subsystem's per-event
SeedSequence scheme (:func:`repro.faults.injector.event_entropy`), so a
crash schedule is a pure function of (seed, hazard inputs): matched
naive/SmartOClock runs flip the *same coin* for the same server at the
same instant, and naive's higher hazard makes its crash set a superset
while the histories coincide.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.placement import PlacementError, ResourceCentricPlacer
from repro.faults.injector import event_entropy
from repro.faults.spec import FaultPlan
from repro.recovery.checkpoint import DurableStore, RestoreReport, SoaCheckpoint
from repro.recovery.quarantine import QuarantineController
from repro.reliability.hazard import HazardModel
from repro.sim.metrics import DowntimeTracker

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids core cycle)
    from repro.cluster.topology import Server, VirtualMachine
    from repro.core.platform import SmartOClockPlatform
    from repro.core.soa import ServerOverclockingAgent

__all__ = ["RecoveryCounters", "ServerLifecycleManager"]


@dataclass
class RecoveryCounters:
    """What the lifecycle manager actually did during a run."""

    server_crashes: int = 0
    forced_crashes: int = 0
    hazard_crashes: int = 0
    server_restarts: int = 0
    soa_restarts: int = 0
    vms_evacuated: int = 0
    evacuation_retries: int = 0
    checkpoints_taken: int = 0
    restores_from_checkpoint: int = 0
    restores_cold: int = 0
    restores_corrupted: int = 0
    grants_revoked_on_restore: int = 0
    quarantines: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "server_crashes": self.server_crashes,
            "forced_crashes": self.forced_crashes,
            "hazard_crashes": self.hazard_crashes,
            "server_restarts": self.server_restarts,
            "soa_restarts": self.soa_restarts,
            "vms_evacuated": self.vms_evacuated,
            "evacuation_retries": self.evacuation_retries,
            "checkpoints_taken": self.checkpoints_taken,
            "restores_from_checkpoint": self.restores_from_checkpoint,
            "restores_cold": self.restores_cold,
            "restores_corrupted": self.restores_corrupted,
            "grants_revoked_on_restore": self.grants_revoked_on_restore,
            "quarantines": self.quarantines,
        }


class ServerLifecycleManager:
    """Crash, checkpoint, restore, evacuate — one instance per platform."""

    def __init__(self, platform: "SmartOClockPlatform", *,
                 hazard_model: Optional[HazardModel] = None,
                 plan: Optional[FaultPlan] = None,
                 seed: int = 0,
                 store: Optional[DurableStore] = None,
                 quarantine: Optional[QuarantineController] = None) -> None:
        self.platform = platform
        self.hazard_model = hazard_model
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = seed
        self.store = store if store is not None else DurableStore()
        self.quarantine = quarantine
        self.counters = RecoveryCounters()
        self.server_downtime = DowntimeTracker()
        self.vm_downtime = DowntimeTracker()
        self.restore_reports: list[RestoreReport] = []
        self._placer = ResourceCentricPlacer()
        self._last_checkpoint = -math.inf
        self._server_restart_at: dict[str, float] = {}
        self._soa_restore_at: dict[str, float] = {}
        # (vm, rack_id, earliest placement time)
        self._pending_vms: list[tuple["VirtualMachine", str, float]] = []
        self._fired_soa_restarts: set[tuple[float, Optional[str]]] = set()

    # ------------------------------------------------------------------
    # Tick
    # ------------------------------------------------------------------

    def tick(self, now: float, dt: float) -> None:
        """One lifecycle step; runs before the platform's control tick so
        a server that comes back (or dies) does so at a tick boundary."""
        self._complete_server_restarts(now)
        self._place_pending_vms(now)
        self._crash_servers(now, dt)
        self._fire_soa_restarts(now)
        self._complete_soa_restores(now)
        self._take_checkpoints(now)
        self._scan_wear_quarantine(now)

    def finish(self, now: float) -> None:
        """Close open downtime intervals at the end of the run."""
        self.server_downtime.finish(now)
        self.vm_downtime.finish(now)

    def counter_dict(self) -> dict[str, int]:
        """Counters including the risk controller's quarantine total."""
        if self.quarantine is not None:
            self.counters.quarantines = self.quarantine.quarantines
        return self.counters.as_dict()

    # ------------------------------------------------------------------
    # Crashes
    # ------------------------------------------------------------------

    def _hazard_inputs(self, soa: "ServerOverclockingAgent"
                       ) -> tuple[float, float]:
        """(worst wear ratio, worst current core voltage) for the server."""
        wear_ratio = max(
            (c.wear_ratio for c in soa.wear_counters), default=0.0)
        plan = soa.server.plan
        volts = max((plan.voltage(core.freq_ghz)
                     for core in soa.server.cores),
                    default=plan.voltage(plan.turbo_ghz))
        return wear_ratio, volts

    def _crash_draw(self, server_id: str, now: float, prob: float) -> bool:
        """Per-event deterministic hazard coin flip."""
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True
        rng = np.random.default_rng(np.random.SeedSequence(
            event_entropy(self.seed, "server-crash", server_id, now)))
        return bool(rng.random() < prob)

    def _crash_servers(self, now: float, dt: float) -> None:
        for rack_id in sorted(self.platform.datacenter.racks):
            rack = self.platform.datacenter.racks[rack_id]
            for server in sorted(rack.servers, key=lambda s: s.server_id):
                if server.offline:
                    continue
                sid = server.server_id
                if self.plan.server_crash_forced(sid, now):
                    recover_at = max(
                        [c.window.end_s for c in self.plan.server_crashes
                         if c.matches(sid, now)]
                        + [now + self.platform.config.server_restart_delay_s])
                    self._crash_server(server, rack_id, now, recover_at,
                                       forced=True)
                    continue
                if self.hazard_model is None:
                    continue
                soa = self.platform.soas[sid]
                wear_ratio, volts = self._hazard_inputs(soa)
                prob = self.hazard_model.tick_failure_probability(
                    wear_ratio, volts, dt)
                if self._crash_draw(sid, now, prob):
                    recover_at = \
                        now + self.platform.config.server_restart_delay_s
                    self._crash_server(server, rack_id, now, recover_at,
                                       forced=False)

    def _crash_server(self, server: "Server", rack_id: str, now: float,
                      recover_at: float, *, forced: bool) -> None:
        sid = server.server_id
        self.counters.server_crashes += 1
        if forced:
            self.counters.forced_crashes += 1
        else:
            self.counters.hazard_crashes += 1
        soa = self.platform.soas[sid]
        if soa.alive:
            soa.crash(now)
        # An sOA process restore pending on this server is superseded by
        # the full server restart.
        self._soa_restore_at.pop(sid, None)
        self.server_downtime.mark_down(sid, now)
        delay = self.platform.config.vm_restart_delay_s
        for vm in sorted(server.vms.values(), key=lambda v: v.vm_id):
            self.vm_downtime.mark_down(vm.name, now)
            server.remove_vm(vm)
            self._pending_vms.append((vm, rack_id, now + delay))
            self.counters.vms_evacuated += 1
        server.offline = True
        self._server_restart_at[sid] = recover_at
        if self.quarantine is not None:
            self.quarantine.record_crash(sid, now)

    # ------------------------------------------------------------------
    # Restarts & restores
    # ------------------------------------------------------------------

    def _complete_server_restarts(self, now: float) -> None:
        due = sorted(sid for sid, at in self._server_restart_at.items()
                     if at <= now)
        for sid in due:
            del self._server_restart_at[sid]
            server = self.platform.soas[sid].server
            server.offline = False
            self.server_downtime.mark_up(sid, now)
            self.counters.server_restarts += 1
            self._restore_soa(sid, now)

    def _fire_soa_restarts(self, now: float) -> None:
        for event in self.plan.soa_restarts:
            key = (event.at_s, event.server_id)
            if key in self._fired_soa_restarts or event.at_s > now:
                continue
            self._fired_soa_restarts.add(key)
            for sid in sorted(self.platform.soas):
                if not event.matches(sid):
                    continue
                soa = self.platform.soas[sid]
                if not soa.alive or soa.server.offline:
                    continue  # already down: the event is moot
                soa.crash(now)
                self._soa_restore_at[sid] = \
                    now + self.platform.config.soa_restart_delay_s

    def _complete_soa_restores(self, now: float) -> None:
        due = sorted(sid for sid, at in self._soa_restore_at.items()
                     if at <= now)
        for sid in due:
            del self._soa_restore_at[sid]
            self._restore_soa(sid, now)

    def _restore_soa(self, server_id: str, now: float) -> None:
        soa = self.platform.soas[server_id]
        load = self.store.load_verified(server_id)
        checkpoint = load.checkpoint
        assert checkpoint is None or isinstance(checkpoint, SoaCheckpoint)
        report = soa.restart(now, checkpoint)
        self.counters.soa_restarts += 1
        if checkpoint is None:
            # Either no checkpoint was ever taken, or the stored one
            # failed fingerprint verification: in both cases the sOA
            # cold-starts rather than trusting bad durable state; the
            # corruption is noted on the audit record.
            self.counters.restores_cold += 1
            if load.corrupted:
                self.counters.restores_corrupted += 1
                report = dataclasses.replace(
                    report, checkpoint_corrupted=True)
        else:
            self.counters.restores_from_checkpoint += 1
        self.counters.grants_revoked_on_restore += report.grants_revoked
        self.restore_reports.append(report)
        # Quarantine state lives in the risk controller, not the
        # checkpoint: re-impose any cooldown still active.
        if self.quarantine is not None \
                and self.quarantine.active(server_id, now):
            soa.quarantined_until = self.quarantine.release_at(server_id)

    # ------------------------------------------------------------------
    # VM evacuation
    # ------------------------------------------------------------------

    def _place_pending_vms(self, now: float) -> None:
        still_pending: list[tuple["VirtualMachine", str, float]] = []
        for vm, rack_id, place_at in self._pending_vms:
            if place_at > now:
                still_pending.append((vm, rack_id, place_at))
                continue
            rack = self.platform.datacenter.racks[rack_id]
            candidates = [s for s in rack.servers if not s.offline]
            try:
                target = self._placer.place(vm, candidates)
            except PlacementError:
                # No same-rack capacity right now (e.g. the only donor is
                # itself down): retry next tick.
                self.counters.evacuation_retries += 1
                still_pending.append((vm, rack_id, place_at))
                continue
            self.vm_downtime.mark_up(vm.name, now)
            self._rebind_local_agent(vm, target.server_id)
            self.platform.note_vm_placement(vm)
        self._pending_vms = still_pending

    def _rebind_local_agent(self, vm: "VirtualMachine",
                            server_id: str) -> None:
        """Point the VM's Local WI agent at its new server's sOA."""
        new_soa = self.platform.soas[server_id]
        for service in self.platform.services.values():
            for local in service.locals:
                if local.vm.vm_id == vm.vm_id:
                    local.soa = new_soa
                    return

    # ------------------------------------------------------------------
    # Checkpoints & quarantine scans
    # ------------------------------------------------------------------

    def _take_checkpoints(self, now: float) -> None:
        interval = self.platform.config.checkpoint_interval_s
        if now - self._last_checkpoint < interval:
            return
        self._last_checkpoint = now
        for sid in sorted(self.platform.soas):
            soa = self.platform.soas[sid]
            if not soa.alive:
                continue
            self.store.save(soa.build_checkpoint(now))
            self.counters.checkpoints_taken += 1

    def _scan_wear_quarantine(self, now: float) -> None:
        if self.quarantine is None \
                or self.quarantine.policy.wear_floor_s <= 0:
            return
        for sid in sorted(self.platform.soas):
            soa = self.platform.soas[sid]
            if not soa.alive:
                continue
            min_available = min(
                (b.available_seconds(now) for b in soa.core_budgets),
                default=0.0)
            if self.quarantine.check_wear(sid, min_available, now):
                soa.quarantined_until = self.quarantine.release_at(sid)
