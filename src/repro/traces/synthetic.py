"""Synthetic fleet-trace generation.

Generates per-server power/utilization/overclock-demand time series with
the statistical structure the paper's characterization (§III) relies on:

* **diurnal + weekly repeatability** — each server's utilization follows a
  stable daily shape (long-lived VMs dominate allocation), with weekday vs
  weekend distinction;
* **statistical multiplexing** — each server hosts a mix of service shapes,
  so rack-level power is smoother and more predictable than any one VM;
* **heterogeneity within a rack** — servers differ in pattern, amplitude
  and phase; the power-dominant server changes over time (Fig. 9);
* **outlier days** — occasional holidays/incidents perturb one day, which
  is what separates per-day-median templates from plain weekly replay
  (Fig. 15);
* **regional noise levels** — regions differ in noise magnitude (Fig. 8);
* **overclock-demand windows** — latency-critical servers request
  overclocking for a configurable share of cores during their daily peaks
  (some for minutes per hour, some for contiguous hours — §III Q2).

All randomness flows from one ``numpy.random.SeedSequence``: the fleet
seed spawns one independent child stream per rack
(:func:`rack_seed_sequence`), so rack *i*'s trace depends only on
``(config.seed, i)`` — byte-identical whether the rack is materialized
by the driver (:func:`generate_fleet`) or regenerated inside a worker
process from a :class:`~repro.experiments.parallel.RackSpec`
(:func:`generate_fleet_rack`).  That independence is what lets the
7.1k-rack sweep ship ~100-byte specs to workers instead of whole trace
arrays (DESIGN.md "Performance architecture").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.traces.schema import RackTrace, ServerTrace

__all__ = [
    "ServerProfile",
    "RackProfile",
    "FleetConfig",
    "SyntheticFleet",
    "generate_server_trace",
    "generate_rack",
    "generate_fleet_rack",
    "generate_fleet",
    "rack_seed_sequence",
]

SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Server workload archetypes and their default mixing weights.
_ARCHETYPES = ("diurnal", "business", "spiky", "ml")


@dataclass(frozen=True)
class ServerProfile:
    """Sampled shape parameters of one server's utilization series."""

    archetype: str
    peak_util: float
    floor_util: float
    peak_hour: float
    weekend_scale: float
    noise_sigma: float
    oc_cores: int          # cores requesting overclocking during peaks
    oc_trigger_level: float  # demand exists when level > this threshold

    def __post_init__(self) -> None:
        if self.archetype not in _ARCHETYPES:
            raise ValueError(f"unknown archetype {self.archetype!r}")
        if not 0 <= self.floor_util <= self.peak_util <= 1:
            raise ValueError("need 0 <= floor <= peak <= 1, got "
                             f"{self.floor_util}/{self.peak_util}")


@dataclass(frozen=True)
class RackProfile:
    """Power-limit shaping for one rack.

    ``target_p99_utilization`` sets the rack limit so that the baseline
    P99 rack power sits at that fraction of the limit — the knob that
    produces the paper's Fig. 5 distribution and the High/Medium/Low-power
    cluster classes of Table I.
    """

    target_p99_utilization: float

    def __post_init__(self) -> None:
        if not 0.1 <= self.target_p99_utilization <= 1.2:
            raise ValueError("target_p99_utilization out of sane range: "
                             f"{self.target_p99_utilization}")


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for fleet generation."""

    n_racks: int = 100
    servers_per_rack_min: int = 24
    servers_per_rack_max: int = 32
    weeks: int = 2
    interval_s: float = 300.0
    region: str = "region-0"
    noise_sigma: float = 0.03
    outlier_day_prob: float = 0.05      # per server-week
    # Per-server week-to-week amplitude drift (VM churn): independent
    # across servers, so it largely cancels at rack level — this is the
    # paper's "rack power is more predictable than server power" property
    # (statistical multiplexing, §III Q3) and the reason per-server budget
    # assignments go stale and exploration pays off (§III Q5).
    weekly_drift_sigma: float = 0.12
    # Weekly shift of each server's peak hour (uniform in ±this): demand
    # windows and power peaks move, so last week's need-weights misplace
    # budget headroom — the staleness exploration is designed to fix.
    peak_hour_drift_h: float = 1.0
    ml_fraction: float = 0.25           # share of 'ml' archetype servers
    # Distribution of per-rack target P99 utilization (Beta parameters and
    # affine mapping): defaults reproduce Fig. 5's medians.
    p99_util_beta: tuple[float, float] = (3.0, 2.0)
    p99_util_range: tuple[float, float] = (0.40, 0.95)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_racks < 1:
            raise ValueError(f"need at least one rack: {self.n_racks}")
        if not 1 <= self.servers_per_rack_min <= self.servers_per_rack_max:
            raise ValueError("bad servers-per-rack range")
        if self.weeks < 1:
            raise ValueError(f"need at least one week: {self.weeks}")
        if self.interval_s <= 0:
            raise ValueError(f"interval must be > 0: {self.interval_s}")
        if not 0 <= self.ml_fraction <= 1:
            raise ValueError(f"ml_fraction in [0,1]: {self.ml_fraction}")


# --------------------------------------------------------------------------
# Vectorized shape functions (times are seconds since Monday 00:00).
# --------------------------------------------------------------------------

def _hour_of_day(times: np.ndarray) -> np.ndarray:
    return (times % SECONDS_PER_DAY) / 3600.0

def _day_index(times: np.ndarray) -> np.ndarray:
    return (times // SECONDS_PER_DAY).astype(np.int64) % 7

def _weekend_mask(times: np.ndarray) -> np.ndarray:
    return _day_index(times) >= 5


def _diurnal_level(times: np.ndarray, peak_hour: float) -> np.ndarray:
    phase = 2 * np.pi * (_hour_of_day(times) - peak_hour) / 24.0
    return 0.5 * (1.0 + np.cos(phase))


def _business_level(times: np.ndarray, peak_hour: float) -> np.ndarray:
    """Plateau around ``peak_hour`` (±1h flat, 2h cosine ramps)."""
    gap = np.abs(_hour_of_day(times) - peak_hour)
    gap = np.minimum(gap, 24.0 - gap)
    level = np.where(gap <= 1.0, 1.0, 0.0)
    ramp_zone = (gap > 1.0) & (gap < 3.0)
    level = np.where(
        ramp_zone, 0.5 * (1.0 + np.cos(np.pi * (gap - 1.0) / 2.0)), level)
    return level


def _spiky_level(times: np.ndarray, peak_hour: float) -> np.ndarray:
    """Top/bottom-of-hour spikes riding a diurnal envelope."""
    envelope = _diurnal_level(times, peak_hour)
    minute = (times % 3600.0) / 60.0
    in_spike = (minute < 5.0) | ((minute >= 30.0) & (minute < 35.0))
    return np.where(in_spike, envelope, 0.45 * envelope)


def _ml_level(times: np.ndarray) -> np.ndarray:
    """Throughput job: constantly high with mild drift."""
    slow = 0.05 * np.sin(2 * np.pi * times / (3.3 * SECONDS_PER_DAY))
    return np.clip(0.95 + slow, 0.0, 1.0)


def _archetype_level(archetype: str, times: np.ndarray,
                     peak_hour: float) -> np.ndarray:
    if archetype == "diurnal":
        return _diurnal_level(times, peak_hour)
    if archetype == "business":
        return _business_level(times, peak_hour)
    if archetype == "spiky":
        return _spiky_level(times, peak_hour)
    if archetype == "ml":
        return _ml_level(times)
    raise ValueError(f"unknown archetype {archetype!r}")


# --------------------------------------------------------------------------
# Server / rack / fleet generation
# --------------------------------------------------------------------------

def sample_server_profile(rng: np.random.Generator, config: FleetConfig,
                          force_ml: Optional[bool] = None) -> ServerProfile:
    """Draw a random server profile under ``config``."""
    if force_ml is None:
        is_ml = rng.random() < config.ml_fraction
    else:
        is_ml = force_ml
    if is_ml:
        archetype = "ml"
    else:
        archetype = rng.choice(["diurnal", "business", "spiky"],
                               p=[0.5, 0.3, 0.2])
    peak_util = float(rng.uniform(0.40, 0.90))
    floor_util = float(rng.uniform(0.08, 0.25)) * peak_util
    peak_hour = float(rng.uniform(8.0, 18.0))
    weekend_scale = float(rng.uniform(0.3, 0.6))
    if archetype == "ml":
        peak_util = float(rng.uniform(0.85, 0.98))
        floor_util = peak_util
        weekend_scale = 1.0
        oc_cores = 0
        trigger = 2.0  # never triggers: ML servers are not overclocked
    else:
        oc_cores = int(rng.integers(8, 33))
        trigger = float(rng.uniform(0.55, 0.85))
    return ServerProfile(archetype=archetype, peak_util=peak_util,
                         floor_util=floor_util, peak_hour=peak_hour,
                         weekend_scale=weekend_scale,
                         noise_sigma=config.noise_sigma,
                         oc_cores=oc_cores, oc_trigger_level=trigger)


def generate_server_trace(server_id: str, profile: ServerProfile,
                          times: np.ndarray, rng: np.random.Generator, *,
                          power_model: PowerModel = DEFAULT_POWER_MODEL,
                          outlier_day_prob: float = 0.0,
                          weekly_drift_sigma: float = 0.0,
                          peak_hour_drift_h: float = 0.0) -> ServerTrace:
    """Materialize one server's trace from its profile."""
    week_of_trace = ((times - times[0])
                     // SECONDS_PER_WEEK).astype(np.int64)
    n_weeks = int(week_of_trace.max()) + 1
    # Weekly peak-hour shift: the daily shape (and with it the overclock
    # demand window) moves a little every week.
    if peak_hour_drift_h > 0:
        shifts = rng.uniform(-peak_hour_drift_h, peak_hour_drift_h,
                             size=n_weeks)
        peak_hours = profile.peak_hour + shifts[week_of_trace]
    else:
        peak_hours = np.full(times.shape, profile.peak_hour)
    level = _archetype_level(profile.archetype, times, peak_hours)
    # Weekend attenuation.
    weekend = _weekend_mask(times)
    level = np.where(weekend, profile.weekend_scale * level, level)
    # Week-to-week amplitude drift (VM churn): independent per server, so
    # rack totals stay predictable while per-server templates go stale.
    if weekly_drift_sigma > 0:
        factors = rng.lognormal(0.0, weekly_drift_sigma, size=n_weeks)
        level = level * factors[week_of_trace]
    # Outlier days: pick whole days and scale them (holiday → low load, or
    # an incident → high load); this is what breaks weekly replay.
    n_days = int(math.ceil((times[-1] - times[0]) / SECONDS_PER_DAY))
    day_of_trace = ((times - times[0]) // SECONDS_PER_DAY).astype(np.int64)
    for day in range(n_days):
        if rng.random() < outlier_day_prob:
            scale = float(rng.choice([0.35, 1.6]))
            level = np.where(day_of_trace == day,
                             np.clip(level * scale, 0.0, 1.3), level)
    # Multiplicative noise (regional quality of telemetry / load jitter).
    if profile.noise_sigma > 0:
        level = level * rng.lognormal(0.0, profile.noise_sigma,
                                      size=times.shape)
    util = np.clip(profile.floor_util
                   + (profile.peak_util - profile.floor_util)
                   * np.clip(level, 0.0, 1.0), 0.0, 1.0)
    turbo = power_model.plan.turbo_ghz
    per_core_full = power_model.core_dynamic_watts(1.0, turbo)
    power = power_model.idle_watts + util * power_model.cores * per_core_full
    # Overclock demand: cores want overclocking while the (clean) daily
    # shape is above the trigger, on weekdays.
    clean_level = _archetype_level(profile.archetype, times, peak_hours)
    demand = ((clean_level > profile.oc_trigger_level) & ~weekend)
    oc = np.where(demand, profile.oc_cores, 0).astype(np.int64)
    return ServerTrace(server_id=server_id, times=times.copy(),
                       power_watts=power, utilization=util, oc_cores=oc)


def generate_rack(rack_id: str, config: FleetConfig,
                  rack_profile: RackProfile, rng: np.random.Generator, *,
                  power_model: PowerModel = DEFAULT_POWER_MODEL,
                  n_servers: Optional[int] = None) -> RackTrace:
    """Generate one rack's servers and derive its power limit."""
    if n_servers is None:
        n_servers = int(rng.integers(config.servers_per_rack_min,
                                     config.servers_per_rack_max + 1))
    times = np.arange(0.0, config.weeks * SECONDS_PER_WEEK,
                      config.interval_s)
    n_ml = int(round(config.ml_fraction * n_servers))
    servers: list[ServerTrace] = []
    for i in range(n_servers):
        profile = sample_server_profile(rng, config, force_ml=(i < n_ml))
        servers.append(generate_server_trace(
            f"{rack_id}-s{i:02d}", profile, times, rng,
            power_model=power_model,
            outlier_day_prob=config.outlier_day_prob,
            weekly_drift_sigma=config.weekly_drift_sigma,
            peak_hour_drift_h=config.peak_hour_drift_h))
    total = np.sum([s.power_watts for s in servers], axis=0)
    p99 = float(np.percentile(total, 99))
    limit = p99 / rack_profile.target_p99_utilization
    return RackTrace(rack_id=rack_id, power_limit_watts=limit,
                     servers=servers, region=config.region)


@dataclass
class SyntheticFleet:
    """A generated fleet: racks plus the config that produced them."""

    config: FleetConfig
    racks: list[RackTrace]

    @property
    def n_racks(self) -> int:
        return len(self.racks)

    def rack_utilization_stats(self) -> dict[str, np.ndarray]:
        """Per-rack average / P50 / P99 power utilization (Fig. 5 data)."""
        avgs, p50s, p99s = [], [], []
        for rack in self.racks:
            series = rack.utilization_series()
            avgs.append(float(np.mean(series)))
            p50s.append(float(np.percentile(series, 50)))
            p99s.append(float(np.percentile(series, 99)))
        return {"avg": np.array(avgs), "p50": np.array(p50s),
                "p99": np.array(p99s)}


def sample_rack_profile(rng: np.random.Generator,
                        config: FleetConfig) -> RackProfile:
    """Draw a rack's target P99 utilization from the configured Beta."""
    a, b = config.p99_util_beta
    lo, hi = config.p99_util_range
    target = lo + (hi - lo) * float(rng.beta(a, b))
    return RackProfile(target_p99_utilization=target)


def rack_seed_sequence(fleet_seed: int, rack_index: int
                       ) -> np.random.SeedSequence:
    """The rack's own child entropy stream.

    ``SeedSequence(fleet_seed, spawn_key=(rack_index,))`` is exactly the
    child that ``SeedSequence(fleet_seed).spawn(rack_index + 1)[-1]``
    would produce, without spawning the preceding siblings — so a worker
    can reconstruct rack *i*'s stream from ``(fleet_seed, i)`` alone,
    and the draw order of other racks can never perturb it.
    """
    if rack_index < 0:
        raise ValueError(f"rack_index must be >= 0: {rack_index}")
    return np.random.SeedSequence(fleet_seed, spawn_key=(rack_index,))


def generate_fleet_rack(config: FleetConfig, rack_index: int, *,
                        power_model: PowerModel = DEFAULT_POWER_MODEL
                        ) -> RackTrace:
    """Materialize rack ``rack_index`` of the fleet ``config`` describes.

    Byte-identical wherever it runs: the rack's profile and every server
    draw come from :func:`rack_seed_sequence`'s child stream, so the
    driver building a whole fleet and a pool worker expanding one
    :class:`~repro.experiments.parallel.RackSpec` produce the same
    arrays.
    """
    if not 0 <= rack_index < config.n_racks:
        raise ValueError(
            f"rack_index {rack_index} outside fleet of {config.n_racks}")
    rng = np.random.default_rng(rack_seed_sequence(config.seed, rack_index))
    profile = sample_rack_profile(rng, config)
    return generate_rack(f"{config.region}-rack{rack_index:04d}", config,
                         profile, rng, power_model=power_model)


def generate_fleet(config: FleetConfig, *,
                   power_model: PowerModel = DEFAULT_POWER_MODEL
                   ) -> SyntheticFleet:
    """Generate a whole fleet deterministically from ``config.seed``.

    Each rack draws from its own spawned child stream (see
    :func:`generate_fleet_rack`), never from a shared sequential
    generator — the seed-sharding contract of the fleet-scale sweep.
    """
    racks = [generate_fleet_rack(config, r, power_model=power_model)
             for r in range(config.n_racks)]
    return SyntheticFleet(config=config, racks=racks)
