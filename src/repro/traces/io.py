"""Trace persistence.

Traces round-trip through CSV (one file per rack) with a small JSON header
line carrying rack metadata.  The format is intentionally simple so traces
can be inspected with standard tools and regenerated traces can be diffed.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.traces.schema import RackTrace, ServerTrace

__all__ = ["save_rack_csv", "load_rack_csv"]

_HEADER_PREFIX = "#meta "


def save_rack_csv(rack: RackTrace, path: str | Path) -> None:
    """Write one rack trace to ``path`` (CSV with a ``#meta`` header)."""
    path = Path(path)
    meta = {
        "rack_id": rack.rack_id,
        "power_limit_watts": rack.power_limit_watts,
        "region": rack.region,
        "servers": [s.server_id for s in rack.servers],
    }
    with path.open("w", newline="") as fh:
        fh.write(_HEADER_PREFIX + json.dumps(meta) + "\n")
        writer = csv.writer(fh)
        writer.writerow(["time_s", "server_id", "power_watts",
                         "utilization", "oc_cores"])
        for server in rack.servers:
            for i in range(server.n_samples):
                writer.writerow([
                    f"{server.times[i]:.1f}", server.server_id,
                    f"{server.power_watts[i]:.3f}",
                    f"{server.utilization[i]:.5f}",
                    int(server.oc_cores[i]),
                ])


def load_rack_csv(path: str | Path) -> RackTrace:
    """Read a rack trace written by :func:`save_rack_csv`."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"{path}: missing {_HEADER_PREFIX!r} header")
        meta = json.loads(header[len(_HEADER_PREFIX):])
        reader = csv.DictReader(fh)
        rows_by_server: dict[str, list[dict[str, str]]] = {
            sid: [] for sid in meta["servers"]}
        for row in reader:
            sid = row["server_id"]
            if sid not in rows_by_server:
                raise ValueError(f"{path}: unknown server {sid!r} in body")
            rows_by_server[sid].append(row)
    servers: list[ServerTrace] = []
    for sid in meta["servers"]:
        rows = rows_by_server[sid]
        if not rows:
            raise ValueError(f"{path}: no samples for server {sid!r}")
        servers.append(ServerTrace(
            server_id=sid,
            times=np.array([float(r["time_s"]) for r in rows]),
            power_watts=np.array([float(r["power_watts"]) for r in rows]),
            utilization=np.array([float(r["utilization"]) for r in rows]),
            oc_cores=np.array([int(r["oc_cores"]) for r in rows]),
        ))
    return RackTrace(rack_id=meta["rack_id"],
                     power_limit_watts=meta["power_limit_watts"],
                     servers=servers, region=meta.get("region", "region-0"))
