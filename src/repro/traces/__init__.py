"""Synthetic production traces.

The paper's large-scale evaluation replays 6 weeks of power/utilization
telemetry from 7.1k production racks at 5-minute granularity.  Those traces
are proprietary, so this package generates synthetic equivalents with the
statistical properties the paper's analysis depends on (see DESIGN.md):
diurnal + weekly repeatability, per-server heterogeneity within a rack,
statistical multiplexing of heterogeneous services, regional noise levels,
occasional outlier days, and per-workload overclocking-demand windows.
"""

from repro.traces.schema import RackTrace, ServerTrace, TraceMetadata
from repro.traces.synthetic import (
    FleetConfig,
    RackProfile,
    SyntheticFleet,
    generate_fleet,
    generate_fleet_rack,
    generate_rack,
    generate_server_trace,
    rack_seed_sequence,
)
from repro.traces.io import load_rack_csv, save_rack_csv
from repro.traces.stats import (
    UtilizationStats,
    headroom_fraction,
    multiplexing_gain,
    overclock_demand_stats,
    utilization_stats,
    week_over_week_rmse,
)

__all__ = [
    "ServerTrace",
    "RackTrace",
    "TraceMetadata",
    "FleetConfig",
    "RackProfile",
    "SyntheticFleet",
    "generate_fleet",
    "generate_fleet_rack",
    "generate_rack",
    "generate_server_trace",
    "rack_seed_sequence",
    "save_rack_csv",
    "load_rack_csv",
    "UtilizationStats",
    "utilization_stats",
    "week_over_week_rmse",
    "headroom_fraction",
    "multiplexing_gain",
    "overclock_demand_stats",
]
