"""Trace statistics: the §III characterization metrics as a reusable API.

Everything the paper computes over its production traces — utilization
percentiles, week-over-week predictability, headroom under a limit, and
the rack-vs-server multiplexing effect — packaged for arbitrary traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.metrics import rmse
from repro.traces.schema import RackTrace

__all__ = [
    "UtilizationStats",
    "utilization_stats",
    "week_over_week_rmse",
    "headroom_fraction",
    "multiplexing_gain",
    "overclock_demand_stats",
]

SECONDS_PER_WEEK = 7 * 86400.0


@dataclass(frozen=True)
class UtilizationStats:
    """Average / median / P99 of a power-utilization series."""

    average: float
    p50: float
    p99: float

    @classmethod
    def from_series(cls, series: np.ndarray) -> "UtilizationStats":
        if series.size == 0:
            raise ValueError("empty series")
        return cls(average=float(np.mean(series)),
                   p50=float(np.percentile(series, 50)),
                   p99=float(np.percentile(series, 99)))


def utilization_stats(rack: RackTrace) -> UtilizationStats:
    """The Fig. 5 statistics for one rack."""
    return UtilizationStats.from_series(rack.utilization_series())


def _weekly_halves(times: np.ndarray,
                   values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    if len(times) < 2:
        raise ValueError("need at least two samples")
    interval = times[1] - times[0]
    per_week = int(round(SECONDS_PER_WEEK / interval))
    if len(values) < 2 * per_week:
        raise ValueError(
            "need at least two weeks of trace for week-over-week stats")
    return values[:per_week], values[per_week:2 * per_week]


def week_over_week_rmse(times: np.ndarray, values: np.ndarray) -> float:
    """RMSE between consecutive weeks — the §III Q3 predictability
    measure in its rawest form (a perfect weekly repeat scores 0)."""
    first, second = _weekly_halves(np.asarray(times), np.asarray(values))
    return rmse(first, second)


def headroom_fraction(rack: RackTrace, *,
                      demand_watts: float = 0.0) -> float:
    """Fraction of time the rack could absorb ``demand_watts`` of extra
    (overclocking) power without exceeding its limit — the Fig. 6
    "no capping for 85 % of the time" statistic."""
    if demand_watts < 0:
        raise ValueError(f"demand must be >= 0: {demand_watts}")
    total = rack.total_power() + demand_watts
    return float(np.mean(total <= rack.power_limit_watts))


def multiplexing_gain(rack: RackTrace) -> float:
    """How much more predictable the rack is than its servers (§III Q3).

    Ratio of the mean per-server *relative* week-over-week RMSE to the
    rack-level one; > 1 means statistical multiplexing smooths the rack
    (the paper's key predictability finding).
    """
    rack_rmse = week_over_week_rmse(rack.times, rack.total_power())
    rack_rel = rack_rmse / float(np.mean(rack.total_power()))
    server_rels: list[float] = []
    for server in rack.servers:
        server_rmse = week_over_week_rmse(server.times,
                                          server.power_watts)
        server_rels.append(server_rmse
                           / float(np.mean(server.power_watts)))
    if rack_rel == 0:
        return float("inf")
    return float(np.mean(server_rels)) / rack_rel


@dataclass(frozen=True)
class OverclockDemandStats:
    """How much and how long servers request overclocking."""

    demanding_servers: int
    peak_cores: int
    mean_daily_hours: float


def overclock_demand_stats(rack: RackTrace) -> OverclockDemandStats:
    """Summarize the overclocking-demand windows of a rack's servers."""
    interval = rack.servers[0].interval_s
    demanding = 0
    total_demand_seconds = 0.0
    peak = 0
    for server in rack.servers:
        if int(server.oc_cores.max()) > 0:
            demanding += 1
            total_demand_seconds += float(
                np.sum(server.oc_cores > 0)) * interval
        peak = max(peak, int(server.oc_cores.max()))
    days = (rack.times[-1] - rack.times[0]) / 86400.0
    mean_daily_hours = (total_demand_seconds / max(1, demanding)
                        / max(days, 1e-9) / 3600.0)
    return OverclockDemandStats(demanding_servers=demanding,
                                peak_cores=peak,
                                mean_daily_hours=mean_daily_hours)
