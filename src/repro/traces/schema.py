"""Trace data structures.

A trace is a regular time series at ``interval_s`` granularity (the paper's
telemetry is 5-minute).  Server traces carry baseline (non-overclocked)
power, average CPU utilization, and the number of cores requesting
overclocking at each tick; rack traces group server traces under a power
limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["TraceMetadata", "ServerTrace", "RackTrace"]


@dataclass(frozen=True)
class TraceMetadata:
    """Provenance of a synthetic trace."""

    region: str
    start_time: float
    interval_s: float
    weeks: int
    seed: int


@dataclass
class ServerTrace:
    """Telemetry of one server over the trace window.

    ``power_watts`` is the *baseline* (never-overclocked) power draw;
    ``utilization`` the average core utilization in [0, 1]; ``oc_cores``
    the number of cores whose workload requests overclocking at each tick
    (0 when no demand).
    """

    server_id: str
    times: np.ndarray
    power_watts: np.ndarray
    utilization: np.ndarray
    oc_cores: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.times)
        for name in ("power_watts", "utilization", "oc_cores"):
            arr = getattr(self, name)
            if len(arr) != n:
                raise ValueError(
                    f"{name} has {len(arr)} samples, expected {n}")
        if n < 2:
            raise ValueError("a trace needs at least 2 samples")
        if np.any(self.utilization < 0) or np.any(self.utilization > 1):
            raise ValueError("utilization out of [0, 1]")
        if np.any(self.power_watts < 0):
            raise ValueError("negative power in trace")
        if np.any(self.oc_cores < 0):
            raise ValueError("negative overclock demand in trace")

    @property
    def interval_s(self) -> float:
        return float(self.times[1] - self.times[0])

    @property
    def n_samples(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> "ServerTrace":
        """Sub-trace with start <= t < end."""
        mask = (self.times >= start) & (self.times < end)
        if int(mask.sum()) < 2:
            raise ValueError(f"window [{start}, {end}) selects "
                             f"{int(mask.sum())} samples; need >= 2")
        return ServerTrace(self.server_id, self.times[mask],
                           self.power_watts[mask], self.utilization[mask],
                           self.oc_cores[mask])


@dataclass
class RackTrace:
    """A rack: servers plus the rack power limit."""

    rack_id: str
    power_limit_watts: float
    servers: list[ServerTrace]
    region: str = "region-0"

    def __post_init__(self) -> None:
        if self.power_limit_watts <= 0:
            raise ValueError(
                f"power limit must be > 0: {self.power_limit_watts}")
        if not self.servers:
            raise ValueError("a rack trace needs at least one server")
        n = self.servers[0].n_samples
        for server in self.servers:
            if server.n_samples != n:
                raise ValueError("server traces must be aligned")

    @property
    def times(self) -> np.ndarray:
        return self.servers[0].times

    @property
    def n_samples(self) -> int:
        return self.servers[0].n_samples

    def total_power(self) -> np.ndarray:
        """Baseline rack power series (sum of servers)."""
        return np.sum([s.power_watts for s in self.servers], axis=0)

    def utilization_series(self) -> np.ndarray:
        """Rack power as a fraction of the limit, per tick."""
        return self.total_power() / self.power_limit_watts

    def total_oc_cores(self) -> np.ndarray:
        return np.sum([s.oc_cores for s in self.servers], axis=0)

    def window(self, start: float, end: float) -> "RackTrace":
        return RackTrace(self.rack_id, self.power_limit_watts,
                         [s.window(start, end) for s in self.servers],
                         region=self.region)

    def iter_servers(self) -> Iterator[ServerTrace]:
        return iter(self.servers)
