"""Per-module and cross-module analysis context.

:class:`ModuleContext` wraps one parsed file: its AST, a child→parent
map (so rules can ask "what class/function encloses this node?"), the
module's import tables, and a one-pass *node index* bucketing every AST
node by type — rules ask for exactly the node kinds they care about
(:meth:`ModuleContext.nodes_of_type`) instead of each re-walking the
whole tree.  :class:`ProjectIndex` aggregates function signatures
across every linted file so call-site rules (unit safety) can bind
positional arguments to parameter names, including across modules via
``from``-imports and unique method names; it also lazily builds and
caches the interprocedural effect analysis
(:mod:`repro.analysis.effects`) the purity rules run on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import TYPE_CHECKING, Iterator, Optional, Union

if TYPE_CHECKING:
    from repro.analysis.effects import EffectAnalysis

__all__ = ["FunctionSig", "ModuleContext", "ProjectIndex"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class FunctionSig:
    """A callable's parameter-name signature, for argument binding.

    ``params`` lists parameters bindable positionally, in order, with
    the implicit ``self``/``cls`` of methods already dropped.
    ``keywords`` additionally includes keyword-only names.
    """

    module: str
    qualname: str
    params: tuple[str, ...]
    keywords: frozenset[str]
    has_vararg: bool
    is_method: bool


def _signature(node: FunctionNode, module: str, qualname: str,
               is_method: bool) -> FunctionSig:
    args = node.args
    positional = [a.arg for a in args.posonlyargs + args.args]
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    keywords = frozenset(positional) | frozenset(
        a.arg for a in args.kwonlyargs)
    return FunctionSig(module=module, qualname=qualname,
                       params=tuple(positional), keywords=keywords,
                       has_vararg=args.vararg is not None,
                       is_method=is_method)


def module_name_for(path: str) -> str:
    """Dotted module name for a file path (best effort).

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``; paths outside a
    ``src`` root fall back to their package-relative tail so fixture
    files still index consistently.
    """
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


class ModuleContext:
    """One parsed module plus the lookups rules need."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)
        self._parents: dict[int, ast.AST] = {}
        # alias → dotted module, e.g. {"np": "numpy", "time": "time"}
        self.module_aliases: dict[str, str] = {}
        # local name → (source module, original name) for from-imports
        self.imported_names: dict[str, tuple[str, str]] = {}
        # One-pass node index: exact node type → nodes in walk order.
        self._nodes_by_type: dict[type, list[ast.AST]] = {}
        self._walk_order: dict[int, int] = {}
        self._index_tree()

    def _index_tree(self) -> None:
        """Single walk building parents, import tables and type buckets."""
        for order, node in enumerate(ast.walk(self.tree)):
            self._walk_order[id(node)] = order
            self._nodes_by_type.setdefault(type(node), []).append(node)
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = \
                        (node.module, alias.name)

    def nodes_of_type(self, *types: type) -> list[ast.AST]:
        """Every node of the exact given types, in ``ast.walk`` order.

        Replaces per-rule ``ast.walk`` sweeps: the tree is traversed once
        at parse time and each of the now-8+ rules pulls just the
        buckets it inspects.
        """
        if len(types) == 1:
            return list(self._nodes_by_type.get(types[0], ()))
        merged = [node for node_type in types
                  for node in self._nodes_by_type.get(node_type, ())]
        merged.sort(key=lambda node: self._walk_order[id(node)])
        return merged

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        """Innermost class containing ``node`` (None at module level)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
            if isinstance(ancestor, _FUNCTION_NODES):
                # Keep climbing: a method's body is still "inside" its
                # class for ownership purposes.
                continue
        return None

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionNode]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _FUNCTION_NODES):
                return ancestor
        return None

    def path_matches(self, suffixes: tuple[str, ...]) -> bool:
        """True when this module's path ends with any of ``suffixes``."""
        normalized = PurePath(self.path).as_posix()
        return any(normalized.endswith(suffix) for suffix in suffixes)


@dataclass
class ProjectIndex:
    """Cross-module signature index for call-site argument binding."""

    # module → name → sig: module-level functions, plus classes mapped
    # to their __init__ so constructor calls bind too.
    module_level: dict[str, dict[str, FunctionSig]] = field(default_factory=dict)
    # module → class → method → sig
    methods: dict[str, dict[str, dict[str, FunctionSig]]] = field(
        default_factory=dict)
    # method name → every sig with that name, for unique-name fallback
    methods_by_name: dict[str, list[FunctionSig]] = field(default_factory=dict)
    # The contexts the index was built from, kept so the effect analysis
    # can be derived lazily (and cached) the first time a rule needs it.
    contexts: list[ModuleContext] = field(default_factory=list)
    _effects: Optional[object] = field(default=None, repr=False)

    @classmethod
    def build(cls, contexts: list[ModuleContext]) -> "ProjectIndex":
        index = cls(contexts=list(contexts))
        for ctx in contexts:
            index._add_module(ctx)
        return index

    def effect_analysis(self) -> "EffectAnalysis":
        """The interprocedural effect analysis over this project, built
        on first use and shared by every purity rule in the run."""
        if self._effects is None:
            from repro.analysis.effects import EffectAnalysis
            self._effects = EffectAnalysis.build(self.contexts, self)
        return self._effects  # type: ignore[return-value]

    def _add_module(self, ctx: ModuleContext) -> None:
        module_table = self.module_level.setdefault(ctx.module, {})
        method_table = self.methods.setdefault(ctx.module, {})
        for node in ctx.tree.body:
            if isinstance(node, _FUNCTION_NODES):
                module_table[node.name] = _signature(
                    node, ctx.module, node.name, is_method=False)
            elif isinstance(node, ast.ClassDef):
                per_class = method_table.setdefault(node.name, {})
                for item in node.body:
                    if not isinstance(item, _FUNCTION_NODES):
                        continue
                    decorators = {d.id for d in item.decorator_list
                                  if isinstance(d, ast.Name)}
                    is_method = "staticmethod" not in decorators
                    sig = _signature(item, ctx.module,
                                     f"{node.name}.{item.name}", is_method)
                    per_class[item.name] = sig
                    self.methods_by_name.setdefault(item.name, []).append(sig)
                    if item.name == "__init__":
                        module_table[node.name] = FunctionSig(
                            module=ctx.module, qualname=node.name,
                            params=sig.params, keywords=sig.keywords,
                            has_vararg=sig.has_vararg, is_method=False)

    def resolve_call(self, ctx: ModuleContext,
                     call: ast.Call) -> Optional[FunctionSig]:
        """Best-effort resolution of a call site to a known signature.

        Handles: same-module functions/constructors, ``from``-imported
        ones, ``module_alias.func(...)``, ``self.method(...)`` within a
        class, and — as a last resort — ``obj.method(...)`` when the
        method name is defined exactly once across the whole project.
        Unresolvable calls return None and the call site is skipped.
        """
        func = call.func
        if isinstance(func, ast.Name):
            local = self.module_level.get(ctx.module, {}).get(func.id)
            if local is not None:
                return local
            imported = ctx.imported_names.get(func.id)
            if imported is not None:
                source_module, original = imported
                return self.module_level.get(source_module, {}).get(original)
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    enclosing = ctx.enclosing_class(call)
                    if enclosing is not None:
                        sig = self.methods.get(ctx.module, {}).get(
                            enclosing.name, {}).get(func.attr)
                        if sig is not None:
                            return sig
                module = ctx.module_aliases.get(base.id)
                if module is not None:
                    return self.module_level.get(module, {}).get(func.attr)
            candidates = self.methods_by_name.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None
