"""Rule ``nondeterminism``: all randomness seeded, no wall clock.

The reproduction's convention (set by :mod:`repro.traces.synthetic`):
every source of randomness is an explicitly seeded
``np.random.Generator`` threaded through as an ``rng`` parameter, and
simulated time comes from the event engine's virtual clock.  Wall-clock
reads (``time.time()``, ``datetime.now()``), the stdlib ``random``
module, numpy's *global* RNG (``np.random.random()`` …), and unseeded
``np.random.default_rng()`` all make runs irreproducible — which
invalidates the cache-vs-recompute equivalence tests and every
benchmark comparison.

The rule resolves names through the module's import table, so an
``engine.now`` property or a local function named ``time`` is not
confused with the stdlib modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["NondeterminismRule", "classify_nondeterminism"]

_WALL_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
})
_DATETIME_CLASSES = frozenset({"datetime", "date"})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
# np.random attributes that are fine to *call*: constructing an
# explicitly seeded generator, not drawing from global state.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


@register
class NondeterminismRule(Rule):
    rule_id = "nondeterminism"
    description = ("wall-clock or globally-seeded randomness breaks "
                   "reproducibility; thread a seeded np.random.Generator")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        scope = config.determinism_modules
        if scope is not None and not any(part in ctx.path for part in scope):
            return
        aliases = ctx.module_aliases
        imported = ctx.imported_names
        for node in ctx.nodes_of_type(ast.Call):
            assert isinstance(node, ast.Call)
            message = classify_nondeterminism(node, aliases, imported)
            if message is not None:
                yield self.diagnostic(ctx, node.lineno, node.col_offset,
                                      message)


def classify_nondeterminism(
        call: ast.Call, aliases: dict[str, str],
        imported: dict[str, tuple[str, str]]) -> Optional[str]:
    """Message describing why ``call`` is nondeterministic, or None.

    Module-level so the effect-inference layer
    (:mod:`repro.analysis.effects.summary`) can reuse the exact same
    classification when tagging ``rng`` effects.
    """
    func = call.func
    # Bare names bound by from-imports: `from time import time`, …
    if isinstance(func, ast.Name):
        origin = imported.get(func.id)
        if origin is None:
            return None
        module, original = origin
        if module == "time" and original in _WALL_CLOCK_FUNCS:
            return (f"wall-clock call time.{original}(); simulated time "
                    f"must come from the engine clock")
        if module == "random":
            return (f"stdlib random.{original}() uses hidden global "
                    f"state; use a seeded np.random.Generator")
        if module == "datetime" and original in _DATETIME_CLASSES:
            return None  # flagged at the .now() call site below
        if module in ("numpy.random", "np.random") and \
                original == "default_rng" and not call.args and \
                not call.keywords:
            return ("unseeded np.random.default_rng(); pass an explicit "
                    "seed or accept an rng parameter")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    # module_alias.func(...) forms.
    if isinstance(base, ast.Name):
        module = aliases.get(base.id)
        if module == "time" and func.attr in _WALL_CLOCK_FUNCS:
            return (f"wall-clock call time.{func.attr}(); simulated time "
                    f"must come from the engine clock")
        if module == "random":
            return (f"stdlib random.{func.attr}() uses hidden global "
                    f"state; use a seeded np.random.Generator")
        # `from datetime import datetime` → datetime.now()
        origin = imported.get(base.id)
        if origin is not None and origin[0] == "datetime" and \
                origin[1] in _DATETIME_CLASSES and \
                func.attr in _DATETIME_FUNCS:
            return (f"wall-clock call {origin[1]}.{func.attr}(); "
                    f"simulated time must come from the engine clock")
    # import datetime → datetime.datetime.now()
    if isinstance(base, ast.Attribute) and \
            isinstance(base.value, ast.Name) and \
            aliases.get(base.value.id) == "datetime" and \
            base.attr in _DATETIME_CLASSES and \
            func.attr in _DATETIME_FUNCS:
        return (f"wall-clock call datetime.{base.attr}.{func.attr}(); "
                f"simulated time must come from the engine clock")
    # np.random.<attr>(...) — numpy global RNG or default_rng().
    if isinstance(base, ast.Attribute) and \
            isinstance(base.value, ast.Name) and \
            aliases.get(base.value.id) == "numpy" and \
            base.attr == "random":
        if func.attr == "default_rng":
            if not call.args and not call.keywords:
                return ("unseeded np.random.default_rng(); pass an "
                        "explicit seed or accept an rng parameter")
            return None
        if func.attr not in _NP_RANDOM_ALLOWED:
            return (f"np.random.{func.attr}() draws from numpy's global "
                    f"RNG; use a seeded np.random.Generator")
    return None
