"""Built-in lint rules.  Importing this package registers them all."""

from __future__ import annotations

from repro.analysis.rules.determinism import NondeterminismRule
from repro.analysis.rules.durable import DurableStateWriteRule
from repro.analysis.rules.handlers import HandlerHygieneRule
from repro.analysis.rules.power import PowerCacheWriteRule
from repro.analysis.rules.purity import PurityStatelessTickRule, WarningHookInertRule
from repro.analysis.rules.spawnsafe import SpawnPurityRule
from repro.analysis.rules.tickloop import TickLoopAllocationRule
from repro.analysis.rules.units import UnitMismatchRule
from repro.analysis.rules.untyped import UntypedDefRule

__all__ = [
    "DurableStateWriteRule",
    "HandlerHygieneRule",
    "NondeterminismRule",
    "PowerCacheWriteRule",
    "PurityStatelessTickRule",
    "SpawnPurityRule",
    "TickLoopAllocationRule",
    "UnitMismatchRule",
    "UntypedDefRule",
]
