"""Rule ``handler-hygiene``: event-handler safety.

Two hazards specific to code scheduled through
:class:`repro.sim.engine.SimulationEngine`:

* **Mutable default arguments.**  A handler with ``acc=[]`` shares one
  list across every firing *and every simulation run in the process* —
  state leaks between supposedly independent experiments.  Flagged for
  every function because any function may end up as a callback.
* **Engine-internal access.**  Reaching into the engine's private event
  calendar (``engine._queue``, ``engine._now`` …) from outside the
  engine module bypasses the tombstone and tie-breaking invariants that
  make runs deterministic; handlers must use ``schedule()`` /
  ``cancel()`` / ``now``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["HandlerHygieneRule"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray",
                                   "defaultdict", "deque", "Counter"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS)


@register
class HandlerHygieneRule(Rule):
    rule_id = "handler-hygiene"
    description = ("mutable default argument, or direct access to the "
                   "simulation engine's private event calendar")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        in_engine_module = ctx.path_matches(config.engine_modules)
        for node in ctx.nodes_of_type(ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Attribute):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                defaults = list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield self.diagnostic(
                            ctx, default.lineno, default.col_offset,
                            f"mutable default argument in '{node.name}'; "
                            f"handlers fired repeatedly share it across "
                            f"runs — default to None and allocate inside")
            elif isinstance(node, ast.Attribute) and not in_engine_module:
                if node.attr not in config.engine_internals:
                    continue
                base = node.value
                if isinstance(base, ast.Name) and base.id == "self":
                    continue
                yield self.diagnostic(
                    ctx, node.lineno, node.col_offset,
                    f"direct access to engine internal '{node.attr}'; use "
                    f"the public schedule()/cancel()/now API so event "
                    f"ordering and tombstone invariants hold")
