"""Rule ``unit-mismatch``: unit-suffix consistency at call sites.

The simulator passes physical quantities as bare floats; the only thing
standing between a correct run and a 1000x power error is the naming
convention (``freq_ghz``, ``power_watts``, ``duration_s`` …).  This rule
checks the convention where it can actually break: argument binding.
When an argument expression whose terminal name carries one unit suffix
binds to a parameter whose name carries a *different* unit suffix —
positionally (via the cross-module signature index) or by keyword — the
call is almost certainly a unit bug (GHz into MHz, watts into seconds).

Scale variants are distinct units on purpose: ``_mhz`` into ``_ghz`` is
exactly the silent 1000x error the rule exists to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["UnitMismatchRule", "unit_token"]

# name-component → canonical unit.  Components are matched on the last
# underscore-separated part of a name, so `base_freq_ghz` → GHz and
# `history_times` → no unit.  Single letters are included only where the
# repo actually uses them (`duration_s`, `total_energy_j`); `_min`,
# `_max`, `_w`, `_v` are too ambiguous to claim.
_UNIT_COMPONENTS: dict[str, str] = {
    "ghz": "GHz", "mhz": "MHz", "khz": "kHz", "hz": "Hz",
    "watts": "W", "watt": "W", "kilowatts": "kW", "kw": "kW",
    "milliwatts": "mW",
    "joules": "J", "joule": "J", "j": "J", "kj": "kJ",
    "seconds": "s", "second": "s", "secs": "s", "sec": "s", "s": "s",
    "ms": "ms", "msec": "ms", "millis": "ms",
    "minutes": "min", "mins": "min",
    "hours": "h", "hrs": "h",
    "days": "days", "weeks": "weeks",
    "volts": "V", "celsius": "degC", "kelvin": "K",
}


def unit_token(name: str) -> Optional[str]:
    """Canonical unit carried by ``name``'s suffix, or None."""
    component = name.rsplit("_", 1)[-1].lower()
    return _UNIT_COMPONENTS.get(component)


def _expression_name(node: ast.expr) -> Optional[str]:
    """Terminal identifier of an argument expression, when one exists.

    ``freq_mhz`` → ``freq_mhz``; ``vm.freq_ghz`` → ``freq_ghz``;
    ``server.power_watts()`` → ``power_watts``.  Arithmetic, constants
    and subscripts return None — an expression like ``mhz / 1000.0`` is
    presumed to be a deliberate conversion.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _expression_name(node.func)
    return None


@register
class UnitMismatchRule(Rule):
    rule_id = "unit-mismatch"
    description = ("argument whose name carries one unit suffix bound to a "
                   "parameter carrying a different one")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        for node in ctx.nodes_of_type(ast.Call):
            assert isinstance(node, ast.Call)
            yield from self._check_keywords(ctx, node)
            yield from self._check_positional(ctx, index, node)

    def _check_keywords(self, ctx: ModuleContext,
                        call: ast.Call) -> Iterator[Diagnostic]:
        # Keyword binding needs no signature: the keyword *is* the
        # parameter name, so this check works across any call boundary.
        for keyword in call.keywords:
            if keyword.arg is None:  # **kwargs expansion
                continue
            param_unit = unit_token(keyword.arg)
            if param_unit is None:
                continue
            name = _expression_name(keyword.value)
            if name is None:
                continue
            arg_unit = unit_token(name)
            if arg_unit is None or arg_unit == param_unit:
                continue
            yield self.diagnostic(
                ctx, keyword.value.lineno, keyword.value.col_offset,
                f"argument '{name}' ({arg_unit}) bound to parameter "
                f"'{keyword.arg}' ({param_unit}); convert explicitly or "
                f"rename")

    def _check_positional(self, ctx: ModuleContext, index: ProjectIndex,
                          call: ast.Call) -> Iterator[Diagnostic]:
        sig = index.resolve_call(ctx, call)
        if sig is None:
            return
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if position >= len(sig.params):
                break
            param = sig.params[position]
            param_unit = unit_token(param)
            if param_unit is None:
                continue
            name = _expression_name(arg)
            if name is None:
                continue
            arg_unit = unit_token(name)
            if arg_unit is None or arg_unit == param_unit:
                continue
            yield self.diagnostic(
                ctx, arg.lineno, arg.col_offset,
                f"argument '{name}' ({arg_unit}) bound to parameter "
                f"'{param}' ({param_unit}) of {sig.qualname}(); convert "
                f"explicitly or rename")
