"""Rule ``untyped-def``: every function fully annotated.

The in-repo equivalent of mypy's ``disallow_untyped_defs`` gate (CI
runs real mypy; this rule keeps the check runnable anywhere the package
runs, with file:line diagnostics and pragma support).  A function is
flagged when any parameter other than ``self``/``cls`` lacks an
annotation or the return type is missing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["UntypedDefRule"]


@register
class UntypedDefRule(Rule):
    rule_id = "untyped-def"
    description = "function with unannotated parameters or return type"

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        for node in ctx.nodes_of_type(ast.FunctionDef, ast.AsyncFunctionDef):
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            args = node.args
            named = args.posonlyargs + args.args + args.kwonlyargs
            missing = [a.arg for a in named
                       if a.annotation is None and a.arg not in ("self", "cls")]
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append(f"*{args.vararg.arg}")
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append(f"**{args.kwarg.arg}")
            problems: list[str] = []
            if missing:
                problems.append("unannotated parameters: " + ", ".join(missing))
            if node.returns is None:
                problems.append("missing return annotation")
            if problems:
                yield self.diagnostic(
                    ctx, node.lineno, node.col_offset,
                    f"'{node.name}' — " + "; ".join(problems))
