"""Rules ``purity-stateless-tick`` and ``warning-hook-inert``.

The vectorized fast path (DESIGN.md "Performance architecture") trusts
two self-declared contract flags on ``TracePolicy`` subclasses:

* ``tick_stateless = True`` promises ``decide`` (and the ``fast_decide``
  entry the fast path actually calls) mutates nothing and draws no
  randomness — the engine may then replay decisions out of order, batch
  them across ticks, and skip the policy entirely on cached segments.
* ``warning_inert = True`` promises ``on_warning`` is a no-op, so the
  segment planner may elide warning delivery wholesale.

A policy that breaks either promise produces *silently wrong* fleet
results: nothing crashes, the numbers are just not the numbers the
sequential engine would have produced.  These rules check the promises
against the interprocedural effect analysis
(:mod:`repro.analysis.effects`): effects are propagated through helper
calls with ``self``/``super`` dispatch resolved in each concrete
class's MRO, so a mutation hidden two helpers deep in a base class
still surfaces — anchored at the raw mutating statement when it lives
in the file being linted, at the class header otherwise.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Union

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

if TYPE_CHECKING:
    from repro.analysis.effects import ClassIndex, Effect, EffectAnalysis

__all__ = ["PurityStatelessTickRule", "WarningHookInertRule", "is_noop"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Methods the fast path may call on a stateless policy each tick.
_TICK_METHODS = ("decide", "fast_decide")


def is_noop(fn: FunctionNode) -> bool:
    """True when a function body does nothing: only a docstring,
    ``pass``, ``...``, and/or a bare ``return`` / ``return None``."""
    for stmt in fn.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        if isinstance(stmt, ast.Return) and (
                stmt.value is None or (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None)):
            continue
        return False
    return True


def _describe(effect: "Effect") -> str:
    if effect.kind == "self-write":
        return f"writes self.{effect.name}"
    if effect.kind == "param-mutation":
        return f"mutates parameter {effect.name!r} in place"
    if effect.kind == "global-write":
        return f"writes module global {effect.name}"
    return effect.name  # rng: already a human-readable description


@register
class PurityStatelessTickRule(Rule):
    rule_id = "purity-stateless-tick"
    description = ("policy declares tick_stateless = True but its decide "
                   "path transitively mutates state or draws randomness")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        analysis = index.effect_analysis()
        classes = analysis.classes
        from repro.analysis.effects import IMPURE_KINDS
        for node in ctx.nodes_of_type(ast.ClassDef):
            assert isinstance(node, ast.ClassDef)
            key = (ctx.module, node.name)
            info = classes.classes.get(key)
            if info is None or info.node is not node:
                continue  # nested class, or shadowed duplicate name
            if node.name in config.policy_base_classes:
                continue
            if not (classes.ancestor_names(key) & config.policy_base_classes):
                continue
            flag = classes.class_attr(key, "tick_stateless")
            if flag is None or flag[0] is not True:
                continue
            inherited = self._inherited_sites(analysis, classes, config, key)
            seen: set[tuple[str, int]] = set()
            for method in _TICK_METHODS:
                for effect in sorted(analysis.method_effects(key, method)):
                    if effect.kind not in IMPURE_KINDS:
                        continue
                    site = (effect.path, effect.line)
                    if site in seen or site in inherited:
                        continue
                    seen.add(site)
                    where = (f" (in {effect.origin} at "
                             f"{effect.path}:{effect.line})"
                             if effect.path != ctx.path else
                             f" (in {effect.origin})"
                             if effect.origin != f"{node.name}.{method}"
                             else "")
                    line = effect.line if effect.path == ctx.path \
                        else node.lineno
                    yield self.diagnostic(
                        ctx, line, node.col_offset,
                        f"{node.name} declares tick_stateless = True but "
                        f"{method}() transitively "
                        f"{_describe(effect)}{where}; the vectorized fast "
                        f"path would silently diverge — fix the effect or "
                        f"declare tick_stateless = False")

    def _inherited_sites(self, analysis: "EffectAnalysis",
                         classes: "ClassIndex", config: LintConfig,
                         key: tuple[str, str]) -> set[tuple[str, int]]:
        """Effect sites already chargeable to a stateless ancestor —
        re-flagging them on every subclass would turn one offending
        statement into a diagnostic per descendant."""
        from repro.analysis.effects import IMPURE_KINDS
        sites: set[tuple[str, int]] = set()
        for ancestor in classes.mro(key)[1:]:
            if ancestor[1] in config.policy_base_classes:
                continue
            if ancestor not in classes.classes:
                continue
            flag = classes.class_attr(ancestor, "tick_stateless")
            if flag is None or flag[0] is not True:
                continue
            for method in _TICK_METHODS:
                for effect in analysis.method_effects(ancestor, method):
                    if effect.kind in IMPURE_KINDS:
                        sites.add((effect.path, effect.line))
        return sites


@register
class WarningHookInertRule(Rule):
    rule_id = "warning-hook-inert"
    description = ("on_warning override disagrees with the warning_inert "
                   "fast-path flag")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        analysis = index.effect_analysis()
        classes = analysis.classes
        for node in ctx.nodes_of_type(ast.ClassDef):
            assert isinstance(node, ast.ClassDef)
            key = (ctx.module, node.name)
            info = classes.classes.get(key)
            if info is None or info.node is not node:
                continue
            if node.name in config.policy_base_classes:
                continue
            if not (classes.ancestor_names(key) & config.policy_base_classes):
                continue
            flag = classes.class_attr(key, "warning_inert")
            inert = True if flag is None else flag[0]
            own_hook = info.methods.get("on_warning")
            own_fn = analysis.functions.get(own_hook) if own_hook else None
            if own_fn is not None and not is_noop(own_fn.node) and \
                    inert is True:
                yield self.diagnostic(
                    ctx, own_fn.node.lineno, own_fn.node.col_offset,
                    f"{node.name} overrides on_warning with a real body "
                    f"while warning_inert remains True; the fast path "
                    f"skips warning delivery for inert policies, so this "
                    f"hook would never run there — declare "
                    f"warning_inert = False")
                continue
            # Inverse advisory: the class itself turns the flag off, but
            # its effective on_warning does nothing — it forfeits the
            # fast path for no behavioural difference.
            if flag is not None and flag[1] == key and inert is False:
                hook_key = classes.resolve_method(key, "on_warning")
                hook_fn = analysis.functions.get(hook_key) \
                    if hook_key else None
                if hook_fn is None or is_noop(hook_fn.node):
                    line = info.const_lines.get("warning_inert", node.lineno)
                    yield self.diagnostic(
                        ctx, line, node.col_offset,
                        f"{node.name} declares warning_inert = False but "
                        f"its effective on_warning is a no-op; the flag "
                        f"only disqualifies the policy from the fast "
                        f"path — drop it or implement the hook")
