"""Rule ``tick-loop-allocation``: no per-iteration NumPy allocation in
hot-path modules.

The vectorized simulation fast path (DESIGN.md "Performance
architecture") gets its speed from touching NumPy once per *segment*,
not once per tick.  An ``np.zeros``/``np.full``/``np.stack`` call inside
a loop in one of the hot-path modules (tagged via ``hot-path-modules``
in ``[tool.oclint]``) allocates a fresh array every iteration — exactly
the churn the fast path was built to remove, and the kind of regression
a correctness test never catches.  Hoist the buffer out of the loop and
reuse it (``np.copyto``, the ``out=`` parameter) or pre-compute the
values segment-at-a-time.

Per-segment allocations that are genuinely needed (a loop over *plans*,
not ticks) can be sanctioned with a same-line
``# oclint: disable=tick-loop-allocation`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["TickLoopAllocationRule"]

#: numpy callables that always allocate a new array sized by their
#: input.  Element-wise ufuncs are excluded: with ``out=`` they are the
#: sanctioned way to reuse a hoisted buffer.
_ALLOCATORS = frozenset({
    "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "array", "asarray", "ascontiguousarray", "asfortranarray",
    "stack", "vstack", "hstack", "dstack", "column_stack",
    "concatenate", "tile", "repeat",
    "arange", "linspace", "meshgrid",
})

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


@register
class TickLoopAllocationRule(Rule):
    rule_id = "tick-loop-allocation"
    description = ("NumPy allocation inside a loop in a hot-path module; "
                   "hoist the buffer (np.copyto / out=) or pre-compute "
                   "per segment")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        if not config.hot_path_modules:
            return
        if not ctx.path_matches(config.hot_path_modules):
            return
        aliases = ctx.module_aliases
        imported = ctx.imported_names
        # Each call is visited exactly once via the node index; the loop
        # containment test climbs the parent chain instead of re-walking
        # every loop body.
        for node in ctx.nodes_of_type(ast.Call):
            assert isinstance(node, ast.Call)
            name = self._allocator_name(node, aliases, imported)
            if name is None:
                continue
            if not any(isinstance(ancestor, _LOOP_NODES)
                       for ancestor in ctx.ancestors(node)):
                continue
            yield self.diagnostic(
                ctx, node.lineno, node.col_offset,
                f"np.{name}() allocates a fresh array every loop "
                f"iteration in a hot-path module; hoist the buffer "
                f"out of the loop or compute it segment-at-a-time")

    def _allocator_name(self, call: ast.Call, aliases: dict[str, str],
                        imported: dict[str, tuple[str, str]]) -> str | None:
        func = call.func
        # np.zeros(...) through a module alias.
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                aliases.get(func.value.id) == "numpy" and \
                func.attr in _ALLOCATORS:
            return func.attr
        # from numpy import zeros → zeros(...)
        if isinstance(func, ast.Name):
            origin = imported.get(func.id)
            if origin is not None and origin[0] == "numpy" and \
                    origin[1] in _ALLOCATORS:
                return origin[1]
        return None
