"""Rule ``durable-state-write``: protect checkpointed control-plane state.

PR 4 made part of each sOA's state *durable*: wear counters, epoch
budgets, the template history, the grant ledger and the last budget
assignment are snapshotted by ``build_checkpoint`` and restored after a
crash.  A direct write such as ``counter._wear_seconds = 0.0`` from
outside the owning object mutates durable state without going through
the owner's accounting methods (``accumulate``, ``consume``,
``state_dict``/``load_state_dict``), so the next checkpoint silently
persists a history the control plane never computed — and a restored
sOA then *trusts* it.

The rule flags any assignment (plain, augmented, annotated, tuple
unpacking) or ``del`` whose target is ``<expr>._field`` for a durable
backing field, unless ``<expr>`` is ``self`` — the owning class is the
one place allowed to touch its own durable fields.  Deliberate
cross-object writes inside the checkpoint/restore protocol itself carry
an inline ``# oclint: disable=durable-state-write`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register
from repro.analysis.rules.power import _attribute_targets

__all__ = ["DurableStateWriteRule"]


@register
class DurableStateWriteRule(Rule):
    rule_id = "durable-state-write"
    description = ("write to a checkpointed (durable) backing field from "
                   "outside the owning object bypasses the accounting "
                   "methods the checkpoint/restore protocol relies on")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        for node in ctx.nodes_of_type(ast.Assign, ast.AugAssign,
                                      ast.AnnAssign, ast.Delete):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                for attribute in _attribute_targets(target):
                    if attribute.attr not in config.durable_fields:
                        continue
                    base = attribute.value
                    if isinstance(base, ast.Name) and base.id == "self":
                        continue
                    yield self.diagnostic(
                        ctx, attribute.lineno, attribute.col_offset,
                        f"direct write to durable backing field "
                        f"'{attribute.attr}' from outside its owning "
                        f"object; go through the owner's accounting API "
                        f"so checkpoints stay faithful (see "
                        f"repro.recovery.checkpoint)")
