"""Rule ``spawn-purity``: pool workers touch no mutable module globals.

The seed-sharded sweep (DESIGN.md "Layer 3") promises that rack ``i``
is a pure function of ``(fleet_seed, i)`` — that is what makes results
independent of worker count, scheduling order, and the spawn start
method's re-import of every module in the child.  A worker entrypoint
that reads a mutable module global computed in the *parent* breaks the
promise silently: under ``fork`` it sees the parent's value, under
``spawn`` it sees the re-imported default, and the sweep's output
depends on which.

Entrypoints come from ``[tool.oclint] worker-entrypoints`` (dotted
``module.qualname`` specs, or bare function names matched in any
module), seeded with the :mod:`repro.experiments.parallel` worker and
initializer.  Their *transitive* effect summaries must contain no read
or write of a mutable module global, with one sanctioned exception:
the worker-local **None-sentinel** idiom (``_CACHE = None`` at module
level, rebound only through ``global`` inside the worker functions) is
per-process state that spawn re-initializes to ``None`` in every child,
so it cannot leak parent state.

Unpicklable-closure hazards are prevented structurally rather than
flagged: an entrypoint spec can only name a module-level function
(nested functions have no importable address), and module-level
functions pickle by reference under spawn.  Diagnostics anchor at the
offending read/write statement, which may sit in a helper far from the
entrypoint — the summary's propagated source site keeps the location.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["SpawnPurityRule"]

_GLOBAL_KINDS = {"global-read": "reads", "global-write": "writes"}


@register
class SpawnPurityRule(Rule):
    rule_id = "spawn-purity"
    description = ("worker entrypoint transitively touches a mutable "
                   "module global, breaking the seed-sharded contract")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        analysis = index.effect_analysis()
        seen: set[tuple[int, str, str]] = set()
        for spec in sorted(config.worker_entrypoints):
            for key in analysis.entrypoints_matching(spec):
                entry = f"{key[0]}.{key[1]}"
                for effect in sorted(analysis.effects_of(key)):
                    verb = _GLOBAL_KINDS.get(effect.kind)
                    if verb is None:
                        continue
                    if analysis.is_none_sentinel(effect.name):
                        continue
                    # Effects only arise from linted files, so each site
                    # is reported exactly once: by its own module's ctx.
                    if effect.path != ctx.path:
                        continue
                    dedup = (effect.line, effect.kind, effect.name)
                    if dedup in seen:
                        continue
                    seen.add(dedup)
                    via = "" if effect.origin == key[1] else \
                        f" (reached via {effect.origin})"
                    yield self.diagnostic(
                        ctx, effect.line, 0,
                        f"worker entrypoint {entry} transitively {verb} "
                        f"mutable module global {effect.name}{via}; rack "
                        f"results must be a pure function of "
                        f"(fleet_seed, i) — pass the value through the "
                        f"job payload or use the worker-local "
                        f"None-sentinel idiom")