"""Rule ``power-cache-write``: protect the incremental power caches.

PR 1 made ``power_watts()`` an O(1) read of a cached total that is
delta-updated by the invalidation-aware setters in
:mod:`repro.cluster.topology`.  A direct write such as
``core._freq_ghz = 4.0`` from outside the owning object changes the
physical operating point *without* applying the watt delta, so every
cached wattage up the rack/datacenter hierarchy silently drifts — the
worst kind of modeling bug, because power numbers stay plausible.

The rule flags any assignment (plain, augmented, annotated, tuple
unpacking) or ``del`` whose target is ``<expr>._field`` for a
power-affecting backing field, unless ``<expr>`` is ``self`` — the
owning class is the one place allowed to touch its own cache fields.
Deliberate cross-object writes inside the accounting protocol itself
carry an inline ``# oclint: disable=power-cache-write`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, register

__all__ = ["PowerCacheWriteRule"]


def _attribute_targets(node: ast.AST) -> Iterator[ast.Attribute]:
    """Attribute nodes written to by an assignment/delete statement."""
    if isinstance(node, ast.Attribute):
        yield node
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _attribute_targets(element)
    elif isinstance(node, ast.Starred):
        yield from _attribute_targets(node.value)


@register
class PowerCacheWriteRule(Rule):
    rule_id = "power-cache-write"
    description = ("write to a power-affecting backing field from outside "
                   "the owning object bypasses the delta-updating setters")

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        for node in ctx.nodes_of_type(ast.Assign, ast.AugAssign,
                                      ast.AnnAssign, ast.Delete):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                for attribute in _attribute_targets(target):
                    if attribute.attr not in config.power_fields:
                        continue
                    base = attribute.value
                    if isinstance(base, ast.Name) and base.id == "self":
                        continue
                    yield self.diagnostic(
                        ctx, attribute.lineno, attribute.col_offset,
                        f"direct write to power-affecting backing field "
                        f"'{attribute.attr}' from outside its owning object; "
                        f"use the invalidation-aware setter so the cached "
                        f"wattage is delta-updated (see "
                        f"repro.cluster.topology)")
