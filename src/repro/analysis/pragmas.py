"""Inline suppression pragmas.

A diagnostic is suppressed when the physical line it points at carries
an ``oclint`` pragma covering its rule::

    vm._utilization = u  # oclint: disable=power-cache-write
    x = foo()            # oclint: disable=unit-mismatch,nondeterminism
    y = bar()            # oclint: disable

The bare form (no ``=rules``) disables every rule on that line.  Pragmas
are parsed from real COMMENT tokens, not substring matches, so pragma
text inside string literals does not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Optional

__all__ = ["ALL_RULES", "suppressed_lines"]

# Sentinel meaning "every rule is disabled on this line".
ALL_RULES = frozenset({"*"})

_PRAGMA = re.compile(
    r"#\s*oclint:\s*disable(?:\s*=\s*(?P<rules>[\w\-]+(?:\s*,\s*[\w\-]+)*))?")


def suppressed_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number → rule ids disabled there (:data:`ALL_RULES` = all).

    Unparseable sources yield no suppressions; callers lint only files
    that already parsed, so tokenization failures are not expected.
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        rules_text = match.group("rules")
        if rules_text is None:
            rules = ALL_RULES
        else:
            rules = frozenset(
                part.strip() for part in rules_text.split(",") if part.strip())
        line = token.start[0]
        previous = suppressions.get(line, frozenset())
        suppressions[line] = previous | rules
    return suppressions


def is_suppressed(rule_id: str, line: int,
                  suppressions: dict[int, frozenset[str]]) -> bool:
    """True when ``rule_id`` is pragma-disabled on ``line``."""
    rules: Optional[frozenset[str]] = suppressions.get(line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or rule_id in rules
