"""Lint engine: file discovery, rule execution, pragma filtering.

Two entry points: :func:`lint_paths` for files/directories (the CLI
path) and :func:`lint_source` for in-memory snippets (the fixture
tests).  Exit-code convention, mirrored by ``repro lint``:

* 0 — clean,
* 1 — one or more diagnostics,
* 2 — a target file failed to parse (reported as a ``syntax-error``
  diagnostic; the remaining files are still linted).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pragmas import is_suppressed, suppressed_lines
from repro.analysis.registry import all_rules

__all__ = ["LintResult", "lint_paths", "lint_source"]

_SYNTAX_ERROR_RULE = "syntax-error"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: int = 0

    @property
    def exit_code(self) -> int:
        if self.parse_errors:
            return 2
        return 1 if self.diagnostics else 0


def _discover(paths: Iterable[Path]) -> list[Path]:
    """Expand directories to their ``*.py`` files, preserving order and
    deduplicating."""
    seen: set[Path] = set()
    files: list[Path] = []
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _run_rules(contexts: list[ModuleContext], config: LintConfig,
               result: LintResult) -> None:
    index = ProjectIndex.build(contexts)
    rules = [rule for rule_id, rule in sorted(all_rules().items())
             if config.enabled(rule_id)]
    for ctx in contexts:
        suppressions = suppressed_lines(ctx.source)
        for rule in rules:
            for diagnostic in rule.check(ctx, index, config):
                if not is_suppressed(diagnostic.rule_id, diagnostic.line,
                                     suppressions):
                    result.diagnostics.append(diagnostic)
    result.diagnostics.sort()


def lint_paths(paths: Iterable[Path | str],
               config: Optional[LintConfig] = None) -> LintResult:
    """Lint every ``*.py`` under ``paths`` as one project."""
    config = config if config is not None else LintConfig()
    result = LintResult()
    contexts: list[ModuleContext] = []
    for file_path in _discover(Path(p) for p in paths):
        display = str(file_path)
        try:
            source = file_path.read_text()
        except OSError as exc:
            result.parse_errors += 1
            result.diagnostics.append(Diagnostic(
                path=display, line=1, col=0, rule_id=_SYNTAX_ERROR_RULE,
                message=f"cannot read file: {exc}"))
            continue
        result.files_checked += 1
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            result.parse_errors += 1
            result.diagnostics.append(Diagnostic(
                path=display, line=exc.lineno or 1, col=exc.offset or 0,
                rule_id=_SYNTAX_ERROR_RULE,
                message=f"cannot parse: {exc.msg}"))
            continue
        contexts.append(ModuleContext(display, source, tree))
    _run_rules(contexts, config, result)
    return result


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None) -> LintResult:
    """Lint a single in-memory module (fixture tests, tooling)."""
    config = config if config is not None else LintConfig()
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.parse_errors += 1
        result.diagnostics.append(Diagnostic(
            path=path, line=exc.lineno or 1, col=exc.offset or 0,
            rule_id=_SYNTAX_ERROR_RULE, message=f"cannot parse: {exc.msg}"))
        return result
    _run_rules([ModuleContext(path, source, tree)], config, result)
    return result
