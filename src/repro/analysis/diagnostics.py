"""Diagnostic records emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation at a file/line/column.

    Ordering is (path, line, col, rule_id) so reports are stable across
    runs regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (``repro lint --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
