"""Diagnostic records emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation at a file/line/column.

    Ordering is (path, line, col, rule_id) so reports are stable across
    runs regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (``repro lint --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    def format_github(self) -> str:
        """Render as a GitHub Actions workflow annotation.

        ``::error file=...,line=...,col=...,title=...::message`` — the
        runner attaches these to the PR diff at file:line.  Columns are
        1-based in annotations, 0-based in our diagnostics.
        """
        return (f"::error file={_escape_property(self.path)},"
                f"line={self.line},col={self.col + 1},"
                f"title={_escape_property(self.rule_id)}"
                f"::{_escape_data(self.message)}")


def _escape_data(value: str) -> str:
    """Escape a workflow-command message (order matters: % first)."""
    return (value.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A"))


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value."""
    return (_escape_data(value)
            .replace(":", "%3A")
            .replace(",", "%2C"))
