"""``repro lint`` — command-line front end for the lint engine.

Usage::

    repro lint src                      # lint a tree, exit 0/1/2
    repro lint src --select unit-mismatch
    repro lint src --ignore untyped-def --format json
    repro lint --list-rules

Configuration merges, in order: built-in defaults, ``[tool.oclint]``
from the nearest ``pyproject.toml`` above the first path, then the
``--select``/``--ignore`` flags.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

import dataclasses

from repro.analysis.config import load_config
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules

__all__ = ["configure_parser", "run"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint``'s arguments to its subparser."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULE", action="append",
                        default=None,
                        help="run only these rules (repeatable)")
    parser.add_argument("--ignore", metavar="RULE", action="append",
                        default=None,
                        help="skip these rules (repeatable)")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="diagnostic output format (github emits "
                             "workflow ::error annotations)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")


def _find_pyproject(start: Path) -> Optional[Path]:
    anchor = start if start.is_dir() else start.parent
    for directory in (anchor, *anchor.resolve().parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def run(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` and return the process exit code."""
    rules = all_rules()
    if args.list_rules:
        width = max(map(len, rules), default=0) + 2
        for rule_id in sorted(rules):
            print(f"{rule_id:<{width}}{rules[rule_id].description}")
        return 0
    for flag in ("select", "ignore"):
        for rule_id in getattr(args, flag) or ():
            if rule_id not in rules:
                known = ", ".join(sorted(rules))
                print(f"error: unknown rule {rule_id!r} (known: {known})")
                return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}")
        return 2
    config = load_config(_find_pyproject(paths[0]))
    if args.select:
        config = dataclasses.replace(config, select=frozenset(args.select))
    if args.ignore:
        config = dataclasses.replace(
            config, ignore=config.ignore | frozenset(args.ignore))
    result = lint_paths(paths, config)
    if args.format == "json":
        envelope = {
            "files_checked": result.files_checked,
            "parse_errors": result.parse_errors,
            "exit_code": result.exit_code,
            "diagnostics": [d.as_dict() for d in result.diagnostics],
        }
        print(json.dumps(envelope, indent=2))
    elif args.format == "github":
        for diagnostic in result.diagnostics:
            print(diagnostic.format_github())
        # The summary line is for the job log; annotations above are
        # what the runner surfaces on the PR diff.
        noun = "file" if result.files_checked == 1 else "files"
        print(f"{result.files_checked} {noun} checked, "
              f"{len(result.diagnostics)} diagnostic(s)")
    else:
        for diagnostic in result.diagnostics:
            print(diagnostic.format())
        noun = "file" if result.files_checked == 1 else "files"
        print(f"{result.files_checked} {noun} checked, "
              f"{len(result.diagnostics)} diagnostic(s)")
    return result.exit_code
