"""Lint configuration: rule selection plus per-rule knobs.

Defaults encode this repository's invariants; a ``[tool.oclint]`` table
in ``pyproject.toml`` can extend them (e.g. new power-affecting backing
fields as the topology grows) and the CLI ``--select``/``--ignore``
flags narrow a single run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = [
    "DEFAULT_DURABLE_FIELDS",
    "DEFAULT_ENGINE_INTERNALS",
    "DEFAULT_HOT_PATH_MODULES",
    "DEFAULT_POLICY_BASE_CLASSES",
    "DEFAULT_POWER_FIELDS",
    "DEFAULT_WORKER_ENTRYPOINTS",
    "LintConfig",
    "load_config",
]

# Backing fields of the incremental power-accounting caches
# (repro.cluster.topology).  A write to any of these from outside the
# owning object bypasses the delta-updating setters and silently
# corrupts cached wattage.
DEFAULT_POWER_FIELDS = frozenset({
    "_freq_ghz",
    "_vm_id",
    "_utilization_override",
    "_utilization",
    "_background_watts",
    "_dynamic_watts",
    "_power_watts",
    "_total_watts",
})

# Backing fields of the sOA's *durable* (checkpointed) state: wear
# counters, epoch budgets, template history, the grant ledger and the
# last budget assignment (repro.recovery.checkpoint).  A write from
# outside the owning object bypasses the accounting methods, so the
# next checkpoint persists state the control plane never computed.
DEFAULT_DURABLE_FIELDS = frozenset({
    "_grants",
    "_assignment",
    "_assignment_received_at",
    "_times",
    "_values",
    "_template",
    "_epoch_index",
    "_carryover",
    "_consumed",
    "_reserved",
    "_elapsed_seconds",
    "_busy_seconds",
    "_overclock_seconds",
    "_wear_seconds",
})

# Private state of repro.sim.engine.SimulationEngine.  Handlers must go
# through schedule()/cancel()/now — direct event-calendar access breaks
# the tombstone/ordering invariants.
DEFAULT_ENGINE_INTERNALS = frozenset({
    "_queue",
    "_sequence",
    "_events_processed",
    "_running",
    "_stopped",
    "_now",
})

# Module path suffixes where engine internals are legitimately touched
# (the engine implementation itself).
DEFAULT_ENGINE_MODULES = ("sim/engine.py",)

# Module path suffixes tagged *hot path*: per-tick inner loops whose
# throughput the vectorized fast path depends on.  The
# tick-loop-allocation rule flags per-iteration NumPy allocations there.
DEFAULT_HOT_PATH_MODULES = ("experiments/largescale.py",)

# Class names whose subclasses carry the fast-path purity contract
# (tick_stateless / warning_inert).  Matching is by name against the
# approximate MRO, so a fixture's local ``TracePolicy`` stub counts.
DEFAULT_POLICY_BASE_CLASSES = frozenset({"TracePolicy"})

# Functions executed inside pool workers under the spawn start method.
# The seed-sharded contract (rack i is a pure function of
# ``(fleet_seed, i)``) requires them to touch no mutable module globals
# beyond the sanctioned worker-local None-sentinels.  Dotted specs match
# ``module.qualname``; bare names match that qualname in any module.
DEFAULT_WORKER_ENTRYPOINTS = frozenset({
    "repro.experiments.parallel._run_job",
    "repro.experiments.parallel._init_worker",
})


@dataclass(frozen=True)
class LintConfig:
    """Engine-wide configuration passed to every rule.

    ``select`` of ``None`` means "all registered rules"; ``ignore`` is
    subtracted afterwards.  ``determinism_modules`` of ``None`` applies
    the nondeterminism rule everywhere (the repo-wide convention);
    a tuple restricts it to modules whose path contains any entry.
    """

    select: Optional[frozenset[str]] = None
    ignore: frozenset[str] = frozenset()
    power_fields: frozenset[str] = DEFAULT_POWER_FIELDS
    durable_fields: frozenset[str] = DEFAULT_DURABLE_FIELDS
    engine_internals: frozenset[str] = DEFAULT_ENGINE_INTERNALS
    engine_modules: tuple[str, ...] = DEFAULT_ENGINE_MODULES
    hot_path_modules: tuple[str, ...] = DEFAULT_HOT_PATH_MODULES
    determinism_modules: Optional[tuple[str, ...]] = None
    policy_base_classes: frozenset[str] = DEFAULT_POLICY_BASE_CLASSES
    worker_entrypoints: frozenset[str] = DEFAULT_WORKER_ENTRYPOINTS

    def enabled(self, rule_id: str) -> bool:
        """True when ``rule_id`` should run under this configuration."""
        if rule_id in self.ignore:
            return False
        return self.select is None or rule_id in self.select


def _as_str_tuple(value: object, key: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
            isinstance(item, str) for item in value):
        raise ValueError(f"[tool.oclint] {key} must be a list of strings")
    return tuple(value)


def load_config(pyproject: Optional[Path] = None,
                base: Optional[LintConfig] = None) -> LintConfig:
    """Build a :class:`LintConfig`, merging ``[tool.oclint]`` if present.

    Missing file, missing table, or an interpreter without ``tomllib``
    (Python 3.10) all fall back to ``base``/defaults — the lint gate
    must never fail because configuration is absent.
    """
    config = base if base is not None else LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib tomllib unavailable.
        return config
    try:
        table = tomllib.loads(pyproject.read_text())
    except (OSError, tomllib.TOMLDecodeError):
        return config
    section = table.get("tool", {}).get("oclint", {})
    if not isinstance(section, dict) or not section:
        return config
    updates: dict[str, object] = {}
    if "select" in section:
        updates["select"] = frozenset(_as_str_tuple(section["select"], "select"))
    if "ignore" in section:
        updates["ignore"] = frozenset(_as_str_tuple(section["ignore"], "ignore"))
    if "power-fields" in section:
        updates["power_fields"] = config.power_fields | frozenset(
            _as_str_tuple(section["power-fields"], "power-fields"))
    if "durable-fields" in section:
        updates["durable_fields"] = config.durable_fields | frozenset(
            _as_str_tuple(section["durable-fields"], "durable-fields"))
    if "engine-internals" in section:
        updates["engine_internals"] = config.engine_internals | frozenset(
            _as_str_tuple(section["engine-internals"], "engine-internals"))
    if "engine-modules" in section:
        updates["engine_modules"] = _as_str_tuple(
            section["engine-modules"], "engine-modules")
    if "hot-path-modules" in section:
        updates["hot_path_modules"] = _as_str_tuple(
            section["hot-path-modules"], "hot-path-modules")
    if "determinism-modules" in section:
        updates["determinism_modules"] = _as_str_tuple(
            section["determinism-modules"], "determinism-modules")
    if "policy-base-classes" in section:
        updates["policy_base_classes"] = config.policy_base_classes | \
            frozenset(_as_str_tuple(section["policy-base-classes"],
                                    "policy-base-classes"))
    if "worker-entrypoints" in section:
        updates["worker_entrypoints"] = config.worker_entrypoints | \
            frozenset(_as_str_tuple(section["worker-entrypoints"],
                                    "worker-entrypoints"))
    return dataclasses.replace(config, **updates)  # type: ignore[arg-type]
