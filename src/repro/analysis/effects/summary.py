"""Per-function effect summaries extracted from the AST.

One :class:`FunctionInfo` per module-level function or class method.
Nested functions (closures, ``commit`` callbacks) are folded into their
enclosing function: *defining* a closure does not run it, but almost
every closure in this codebase is invoked or handed out by its definer,
so attributing its effects to the definer is the safe over-approximation
for purity checking.

The raw effects recorded here are *direct* only; transitive effects
through calls are computed by :mod:`repro.analysis.effects.propagate`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Union

from repro.analysis.context import ModuleContext
from repro.analysis.rules.determinism import classify_nondeterminism

if TYPE_CHECKING:
    from repro.analysis.effects.callgraph import ModuleGlobals

__all__ = [
    "ArgBase",
    "CallSite",
    "Effect",
    "FunctionInfo",
    "FunctionKey",
    "MUTATING_METHODS",
    "RNG_DRAW_METHODS",
    "extract_function",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: (module, qualname) — qualname is ``func`` or ``Class.method``.
FunctionKey = tuple[str, str]

#: Container/ndarray methods that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "setdefault", "popitem", "add", "discard",
    "appendleft", "popleft", "fill", "put", "itemset", "resize",
})

#: ``np.random.Generator`` draw methods: each advances the generator's
#: state, so a draw from persistent state (self attribute, parameter,
#: module global) is both a mutation and a nondeterminism hazard.
RNG_DRAW_METHODS = frozenset({
    "normal", "standard_normal", "uniform", "random", "integers",
    "choice", "shuffle", "permutation", "permuted", "exponential",
    "poisson", "binomial", "gamma", "beta", "lognormal", "triangular",
    "laplace", "logistic", "spawn", "bytes",
})


@dataclass(frozen=True, order=True)
class Effect:
    """One atomic effect, anchored at the raw source site.

    ``kind`` is one of ``self-write`` (name = the ``self`` attribute),
    ``param-mutation`` (name = the parameter), ``global-read`` /
    ``global-write`` (name = ``module:global``), or ``rng`` (name =
    a human-readable description of the call).  Propagation preserves
    the original ``path``/``line``/``origin`` so diagnostics point at
    the offending statement, however deep in the call chain it lives.
    """

    kind: str
    name: str
    path: str
    line: int
    origin: str  # qualname of the function containing the raw site


#: Terminal base of an argument/receiver expression, for effect lifting:
#: ("self", attr_or_None), ("param", name), or ("global", "module:name").
ArgBase = tuple[str, Optional[str]]

#: Resolver mapping a direct (non-self, non-super) call expression to a
#: known project function, or None — supplied by the call-graph layer.
DirectResolver = Callable[[ModuleContext, ast.Call], Optional[FunctionKey]]


@dataclass
class CallSite:
    """One call expression and everything lifting needs to map the
    callee's effects into the caller's frame."""

    node: ast.Call
    kind: str                       # "self" | "super" | "direct"
    name: str                       # callee function/method name
    target: Optional[FunctionKey]   # resolved statically ("direct" only)
    recv: Optional[ArgBase]         # receiver base for obj.method(...)
    args: list[Optional[ArgBase]]
    kwargs: dict[str, Optional[ArgBase]]


@dataclass
class FunctionInfo:
    """One function's extraction result: direct effects + call sites."""

    key: FunctionKey
    node: FunctionNode
    path: str
    class_name: Optional[str]
    params: tuple[str, ...]         # full parameter list, self included
    is_method: bool = False
    direct: set[Effect] = field(default_factory=set)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return self.key[1]


def _walk_region(fn: FunctionNode) -> Iterator[ast.AST]:
    """Walk the function body, nested defs included (fold-in)."""
    for stmt in fn.body:
        yield from ast.walk(stmt)


def _local_names(fn: FunctionNode) -> tuple[set[str], set[str]]:
    """(locals, global_declared) over the folded function region.

    Locals over-approximate: every name stored anywhere in the region
    (own body and nested defs) counts, as do all parameter names, so a
    read of such a name is never misattributed to module scope.  Names
    declared ``global`` anywhere in the region are subtracted.
    """
    locals_: set[str] = set()
    global_declared: set[str] = set()
    nodes: list[FunctionNode] = [fn]
    while nodes:
        current = nodes.pop()
        args = current.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            locals_.add(arg.arg)
        if args.vararg is not None:
            locals_.add(args.vararg.arg)
        if args.kwarg is not None:
            locals_.add(args.kwarg.arg)
        for node in _walk_region(current):
            if isinstance(node, _FUNCTION_NODES):
                locals_.add(node.name)
                nodes.append(node)
            elif isinstance(node, ast.ClassDef):
                locals_.add(node.name)
            elif isinstance(node, ast.Global):
                global_declared.update(node.names)
            elif isinstance(node, ast.Nonlocal):
                locals_.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                locals_.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    locals_.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                locals_.add(node.name)
    return locals_ - global_declared, global_declared


def _chain_root(node: ast.expr) -> tuple[Optional[ast.Name], Optional[str]]:
    """Innermost ``Name`` of an attribute/subscript chain and the first
    attribute above it: ``self.x.y[0]`` → (Name self, "x")."""
    attrs: list[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            return current, (attrs[-1] if attrs else None)
        else:
            return None, None


class _Extractor:
    """Extracts one function's direct effects and call sites."""

    def __init__(self, ctx: ModuleContext, fn: FunctionNode,
                 key: FunctionKey, class_name: Optional[str],
                 globals_by_module: "dict[str, ModuleGlobals]",
                 resolve_direct: DirectResolver) -> None:
        self.ctx = ctx
        self.fn = fn
        self.key = key
        self.class_name = class_name
        self.globals_by_module = globals_by_module
        self.resolve_direct = resolve_direct
        self.locals, self.global_declared = _local_names(fn)
        args = fn.args
        params = [a.arg for a in args.posonlyargs + args.args
                  + args.kwonlyargs]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        self.params = tuple(params)
        self.is_method = class_name is not None and bool(params) and \
            params[0] in ("self", "cls")
        self.info = FunctionInfo(key=key, node=fn, path=ctx.path,
                                 class_name=class_name, params=self.params,
                                 is_method=self.is_method)

    # ------------------------------------------------------------------
    # name classification

    def _tracked(self, module: str, name: str) -> bool:
        table = self.globals_by_module.get(module)
        return table is not None and name in table.tracked

    def _global_ref(self, name: str) -> Optional[str]:
        """``module:name`` when ``name`` resolves to a *tracked* mutable
        module global (same module, or a from-import of one)."""
        if name in self.locals:
            return None
        table = self.globals_by_module.get(self.ctx.module)
        if table is not None and name in table.bindings:
            if name in table.tracked:
                return f"{self.ctx.module}:{name}"
            return None
        imported = self.ctx.imported_names.get(name)
        if imported is not None:
            source, original = imported
            if self._tracked(source, original):
                return f"{source}:{original}"
        return None

    def base_of(self, node: ast.expr) -> Optional[ArgBase]:
        """Terminal base of an expression, for binding/lifting."""
        root, first_attr = _chain_root(node)
        if root is None:
            return None
        if root.id == "self" and self.is_method:
            return ("self", first_attr)
        if root.id in self.params:
            # Attribute chains under a parameter still alias the
            # parameter's object graph: mutating them mutates the arg.
            return ("param", root.id)
        if root.id in self.locals:
            return None
        ref = self._global_ref(root.id)
        if ref is not None:
            return ("global", ref)
        # Module alias attribute: ``mod.NAME``.
        if first_attr is not None:
            module = self.ctx.module_aliases.get(root.id)
            if module is not None and self._tracked(module, first_attr):
                return ("global", f"{module}:{first_attr}")
        return None

    # ------------------------------------------------------------------
    # effect emission

    def _emit(self, kind: str, name: str, node: ast.AST) -> None:
        self.info.direct.add(Effect(
            kind=kind, name=name, path=self.ctx.path,
            line=getattr(node, "lineno", self.fn.lineno),
            origin=self.key[1]))

    def _emit_mutation(self, base: Optional[ArgBase], node: ast.AST) -> None:
        if base is None:
            return
        scope, detail = base
        if scope == "self":
            self._emit("self-write", detail if detail is not None else "self",
                       node)
        elif scope == "param":
            self._emit("param-mutation", detail or "?", node)
        elif scope == "global":
            self._emit("global-write", detail or "?", node)

    # ------------------------------------------------------------------
    # extraction passes

    def run(self) -> FunctionInfo:
        for node in _walk_region(self.fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._store_target(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._store_target(node.target, augmented=isinstance(
                    node, ast.AugAssign))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._store_target(target)
            elif isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                ref = self._global_ref(node.id)
                if ref is not None and not self._is_store_base(node):
                    self._emit("global-read", ref, node)
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load) and \
                    isinstance(node.value, ast.Name):
                module = self.ctx.module_aliases.get(node.value.id)
                if module is not None and self._tracked(module, node.attr) \
                        and not self._is_store_base(node):
                    self._emit("global-read", f"{module}:{node.attr}", node)
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    not node.level:
                # A function-level from-import of a mutable global binds
                # the *current* object: parent state under fork, a fresh
                # re-import under spawn — a read for purity purposes.
                for alias in node.names:
                    if self._tracked(node.module, alias.name):
                        self._emit("global-read",
                                   f"{node.module}:{alias.name}", node)
        return self.info

    def _is_store_base(self, node: ast.expr) -> bool:
        """True when ``node`` is the base of a store/delete target
        (``G[k] = v``, ``del G.attr``): the mutation pass records that
        as a write, so the syntactic Load of the base is not a read."""
        current: ast.expr = node
        parent = self.ctx.parent(current)
        while isinstance(parent, (ast.Attribute, ast.Subscript)) and \
                parent.value is current:
            current = parent
            parent = self.ctx.parent(current)
        return current is not node and \
            isinstance(current.ctx, (ast.Store, ast.Del))  # type: ignore[attr-defined]

    def _store_target(self, target: ast.expr, augmented: bool = False) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_target(element, augmented)
            return
        if isinstance(target, ast.Starred):
            self._store_target(target.value, augmented)
            return
        if isinstance(target, ast.Name):
            if target.id in self.global_declared:
                self._emit("global-write",
                           f"{self.ctx.module}:{target.id}", target)
            elif augmented and target.id in self.params:
                # ``p += v`` mutates in place when p is an ndarray; for
                # scalars it only rebinds.  Over-approximate as mutation
                # — purity contracts here are about array state.
                self._emit("param-mutation", target.id, target)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._emit_mutation(self.base_of(target), target)

    def _call(self, call: ast.Call) -> None:
        # RNG / wall-clock classification (module-based forms).
        message = classify_nondeterminism(call, self.ctx.module_aliases,
                                          self.ctx.imported_names)
        if message is not None:
            self._emit("rng", message.split(";")[0], call)
        # ``out=`` keyword: in-place NumPy result placement.
        for keyword in call.keywords:
            if keyword.arg == "out":
                self._emit_mutation(self.base_of(keyword.value), call)
        func = call.func
        # np.copyto(dst, ...) and np.<ufunc>.at(a, ...) mutate arg 0.
        if self._is_numpy_inplace(func) and call.args:
            self._emit_mutation(self.base_of(call.args[0]), call)
        if isinstance(func, ast.Attribute):
            base = func.value
            # Receiver-state effects: obj.append(...), self._rng.normal().
            recv = self.base_of(base)
            if recv is not None:
                if func.attr in MUTATING_METHODS:
                    self._emit_mutation(recv, call)
                elif func.attr in RNG_DRAW_METHODS and not (
                        isinstance(base, ast.Name)
                        and base.id in self.ctx.module_aliases):
                    self._emit("rng", f"draw {func.attr}() from persistent "
                               f"generator state", call)
                    self._emit_mutation(recv, call)
        self._call_site(call)

    def _is_numpy_inplace(self, func: ast.expr) -> bool:
        if not isinstance(func, ast.Attribute):
            return False
        value = func.value
        if func.attr == "copyto" and isinstance(value, ast.Name) and \
                self.ctx.module_aliases.get(value.id) == "numpy":
            return True
        # np.maximum.at / np.add.at / ...
        return (func.attr == "at" and isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and self.ctx.module_aliases.get(value.value.id) == "numpy")

    def _call_site(self, call: ast.Call) -> None:
        func = call.func
        args = [self.base_of(a) for a in call.args
                if not isinstance(a, ast.Starred)]
        if any(isinstance(a, ast.Starred) for a in call.args):
            args = []  # positional binding unknowable past a *splat
        kwargs = {k.arg: self.base_of(k.value) for k in call.keywords
                  if k.arg is not None}
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" and \
                    self.is_method:
                self.info.calls.append(CallSite(
                    node=call, kind="self", name=func.attr, target=None,
                    recv=("self", None), args=args, kwargs=kwargs))
                return
            if isinstance(base, ast.Call) and \
                    isinstance(base.func, ast.Name) and \
                    base.func.id == "super":
                self.info.calls.append(CallSite(
                    node=call, kind="super", name=func.attr, target=None,
                    recv=("self", None), args=args, kwargs=kwargs))
                return
            target = self.resolve_direct(self.ctx, call)
            if target is not None:
                self.info.calls.append(CallSite(
                    node=call, kind="direct", name=func.attr, target=target,
                    recv=self.base_of(base), args=args, kwargs=kwargs))
            return
        if isinstance(func, ast.Name):
            target = self.resolve_direct(self.ctx, call)
            if target is not None:
                self.info.calls.append(CallSite(
                    node=call, kind="direct", name=func.id, target=target,
                    recv=None, args=args, kwargs=kwargs))


def extract_function(ctx: ModuleContext, fn: FunctionNode, key: FunctionKey,
                     class_name: Optional[str],
                     globals_by_module: "dict[str, ModuleGlobals]",
                     resolve_direct: DirectResolver) -> FunctionInfo:
    """Extract ``fn``'s direct effect summary and call sites."""
    return _Extractor(ctx, fn, key, class_name, globals_by_module,
                      resolve_direct).run()
