"""Fixpoint propagation of effect summaries across the call graph.

The summary domain is the finite powerset of :class:`Effect` values
occurring in the project, ordered by inclusion.  The transfer function
unions a function's direct effects with its callees' summaries *lifted*
through the call-site argument binding (a callee's ``self-write``
becomes whatever the receiver base was at the call site; a callee's
``param-mutation`` follows the argument bound to that parameter; RNG
and global effects propagate unchanged).  Union is monotone and the
domain finite, so round-robin iteration terminates at the least
fixpoint.

Two resolutions of the same call graph are computed:

* The **static pass** (``summaries``) resolves ``self.m()`` in the
  *defining* class's MRO — a context-insensitive whole-project map.
* :meth:`EffectAnalysis.method_effects` re-runs a small fixpoint per
  concrete class, resolving ``self``/``super`` edges in *that* class's
  MRO — so a base-class ``fast_decide`` that calls ``self.decide()``
  picks up each subclass's actual ``decide`` when the purity rule asks
  about that subclass.

Effects keep their original ``path``/``line``/``origin`` through every
lift, so a diagnostic raised three calls up still points at the raw
mutating statement.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Union

from repro.analysis.context import ModuleContext, ProjectIndex

from repro.analysis.effects.callgraph import ClassIndex, ClassKey, ModuleGlobals
from repro.analysis.effects.summary import (
    ArgBase,
    CallSite,
    Effect,
    FunctionInfo,
    FunctionKey,
    extract_function,
)

__all__ = ["EffectAnalysis"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Effect kinds that count as "mutation or RNG" for purity contracts.
IMPURE_KINDS = frozenset({
    "self-write", "param-mutation", "global-write", "rng",
})


def _remap(base: Optional[ArgBase], effect: Effect) -> Iterator[Effect]:
    """Map a callee-frame mutation effect onto a caller-frame base."""
    if base is None:
        return
    scope, detail = base
    if scope == "self":
        if detail is not None:
            name = detail
        elif effect.kind == "self-write":
            name = effect.name
        else:
            name = "self"
        yield Effect(kind="self-write", name=name, path=effect.path,
                     line=effect.line, origin=effect.origin)
    elif scope == "param":
        yield Effect(kind="param-mutation", name=detail or "?",
                     path=effect.path, line=effect.line,
                     origin=effect.origin)
    elif scope == "global":
        yield Effect(kind="global-write", name=detail or "?",
                     path=effect.path, line=effect.line,
                     origin=effect.origin)


def _lift(effects: Iterable[Effect], site: CallSite,
          callee: FunctionInfo) -> set[Effect]:
    """Map a callee's summary into the caller's frame at one call site."""
    lifted: set[Effect] = set()
    params = callee.params
    positional = params[1:] if callee.is_method and params else params
    binding: dict[str, Optional[ArgBase]] = {}
    for position, arg in enumerate(site.args):
        if position < len(positional):
            binding[positional[position]] = arg
    binding.update(site.kwargs)
    if callee.is_method and params:
        binding[params[0]] = site.recv
    for effect in effects:
        if effect.kind in ("rng", "global-read", "global-write"):
            lifted.add(effect)
        elif effect.kind == "self-write":
            lifted.update(_remap(site.recv, effect))
        elif effect.kind == "param-mutation":
            lifted.update(_remap(binding.get(effect.name), effect))
    return lifted


class EffectAnalysis:
    """Whole-project effect summaries plus per-class refinement."""

    def __init__(self, functions: dict[FunctionKey, FunctionInfo],
                 classes: ClassIndex,
                 globals_by_module: dict[str, ModuleGlobals],
                 contexts_by_module: dict[str, ModuleContext]) -> None:
        self.functions = functions
        self.classes = classes
        self.globals_by_module = globals_by_module
        self.contexts_by_module = contexts_by_module
        self.summaries: dict[FunctionKey, frozenset[Effect]] = {}
        self._method_memo: dict[tuple[ClassKey, str], frozenset[Effect]] = {}
        self._fixpoint()

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, contexts: list[ModuleContext],
              index: ProjectIndex) -> "EffectAnalysis":
        del index  # signature parity with ProjectIndex.effect_analysis
        globals_by_module = {ctx.module: ModuleGlobals.scan(ctx)
                             for ctx in contexts}
        classes = ClassIndex.build(contexts)

        # Name tables for the direct-call resolver, built before any
        # extraction so call sites in module A can resolve into module B
        # regardless of lint order.
        module_funcs: dict[str, dict[str, FunctionKey]] = {}
        methods_by_name: dict[str, list[FunctionKey]] = {}
        targets: list[tuple[ModuleContext, FunctionNode, FunctionKey,
                            Optional[str]]] = []
        for ctx in contexts:
            table = module_funcs.setdefault(ctx.module, {})
            for node in ctx.tree.body:
                if isinstance(node, _FUNCTION_NODES):
                    key: FunctionKey = (ctx.module, node.name)
                    table[node.name] = key
                    targets.append((ctx, node, key, None))
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, _FUNCTION_NODES):
                            key = (ctx.module, f"{node.name}.{item.name}")
                            methods_by_name.setdefault(
                                item.name, []).append(key)
                            targets.append((ctx, item, key, node.name))

        def constructor(class_key: ClassKey) -> Optional[FunctionKey]:
            info = classes.classes.get(class_key)
            if info is None:
                return None
            return info.methods.get("__init__")

        def resolve_direct(ctx: ModuleContext,
                           call: ast.Call) -> Optional[FunctionKey]:
            func = call.func
            if isinstance(func, ast.Name):
                local = module_funcs.get(ctx.module, {}).get(func.id)
                if local is not None:
                    return local
                ctor = constructor((ctx.module, func.id))
                if ctor is not None:
                    return ctor
                imported = ctx.imported_names.get(func.id)
                if imported is not None:
                    source, original = imported
                    remote = module_funcs.get(source, {}).get(original)
                    if remote is not None:
                        return remote
                    return constructor((source, original))
                return None
            if isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name):
                    module = ctx.module_aliases.get(base.id)
                    if module is not None:
                        remote = module_funcs.get(module, {}).get(func.attr)
                        if remote is not None:
                            return remote
                        return constructor((module, func.attr))
                # obj.method(...): sound only when the method name is
                # defined exactly once project-wide (same fallback the
                # unit-safety rule uses); ambiguous dispatch stays
                # unresolved — the documented unsoundness.
                candidates = methods_by_name.get(func.attr, [])
                if len(candidates) == 1:
                    return candidates[0]
            return None

        functions: dict[FunctionKey, FunctionInfo] = {}
        for ctx, node, key, class_name in targets:
            functions[key] = extract_function(
                ctx, node, key, class_name, globals_by_module,
                resolve_direct)
        return cls(functions, classes, globals_by_module,
                   {ctx.module: ctx for ctx in contexts})

    # ------------------------------------------------------------------
    # static (context-insensitive) fixpoint

    def _defining_class(self, info: FunctionInfo) -> Optional[ClassKey]:
        if info.class_name is None:
            return None
        return (info.key[0], info.class_name)

    def _static_target(self, info: FunctionInfo,
                       site: CallSite) -> Optional[FunctionKey]:
        if site.kind == "direct":
            return site.target
        class_key = self._defining_class(info)
        if class_key is None:
            return None
        if site.kind == "self":
            return self.classes.resolve_method(class_key, site.name)
        # super(): next definition after the defining class itself.
        return self.classes.resolve_method(class_key, site.name,
                                           after=class_key)

    def _fixpoint(self) -> None:
        summaries: dict[FunctionKey, set[Effect]] = {
            key: set(info.direct) for key, info in self.functions.items()}
        changed = True
        while changed:
            changed = False
            for key, info in self.functions.items():
                current = summaries[key]
                for site in info.calls:
                    target = self._static_target(info, site)
                    if target is None or target not in self.functions:
                        continue
                    lifted = _lift(summaries[target], site,
                                   self.functions[target])
                    if not lifted <= current:
                        current |= lifted
                        changed = True
        self.summaries = {key: frozenset(value)
                          for key, value in summaries.items()}

    # ------------------------------------------------------------------
    # queries

    def effects_of(self, key: FunctionKey) -> frozenset[Effect]:
        """Static transitive summary (defining-class dispatch)."""
        return self.summaries.get(key, frozenset())

    def method_effects(self, class_key: ClassKey,
                       method: str) -> frozenset[Effect]:
        """Transitive effects of ``method`` dispatched on an instance of
        ``class_key``: ``self``/``super`` edges re-resolve in this
        class's MRO, direct edges reuse the static summaries."""
        memo_key = (class_key, method)
        cached = self._method_memo.get(memo_key)
        if cached is not None:
            return cached
        entry = self.classes.resolve_method(class_key, method)
        if entry is None or entry not in self.functions:
            self._method_memo[memo_key] = frozenset()
            return frozenset()
        # Reachable set over self/super edges only; direct callees fold
        # in through the already-fixpointed static summaries.
        order: list[FunctionKey] = [entry]
        edges: dict[FunctionKey, list[tuple[CallSite, FunctionKey]]] = {}
        local: dict[FunctionKey, set[Effect]] = {}
        cursor = 0
        while cursor < len(order):
            fkey = order[cursor]
            cursor += 1
            info = self.functions[fkey]
            base = set(info.direct)
            outgoing: list[tuple[CallSite, FunctionKey]] = []
            for site in info.calls:
                if site.kind == "direct":
                    if site.target is not None and \
                            site.target in self.functions:
                        base |= _lift(self.summaries[site.target], site,
                                      self.functions[site.target])
                    continue
                if site.kind == "self":
                    target = self.classes.resolve_method(class_key,
                                                         site.name)
                else:  # super()
                    defining = self._defining_class(info)
                    target = None if defining is None else \
                        self.classes.resolve_method(class_key, site.name,
                                                    after=defining)
                if target is None or target not in self.functions:
                    continue
                outgoing.append((site, target))
                if target not in edges and target not in order:
                    order.append(target)
            edges[fkey] = outgoing
            local[fkey] = base
        changed = True
        while changed:
            changed = False
            for fkey in order:
                current = local[fkey]
                for site, target in edges[fkey]:
                    lifted = _lift(local[target], site,
                                   self.functions[target])
                    if not lifted <= current:
                        current |= lifted
                        changed = True
        result = frozenset(local[entry])
        self._method_memo[memo_key] = result
        return result

    def entrypoints_matching(self, spec: str) -> list[FunctionKey]:
        """Function keys matched by a ``worker-entrypoints`` spec.

        A dotted spec matches ``module.qualname`` exactly; a bare name
        (no dots) matches that qualname in any module — so fixture
        configs can name a worker without hardcoding the fixture's
        synthesized module path.
        """
        dotted = [key for key in self.functions
                  if f"{key[0]}.{key[1]}" == spec]
        if dotted:
            return sorted(dotted)
        if "." not in spec:
            return sorted(key for key in self.functions if key[1] == spec)
        return []

    def is_none_sentinel(self, ref: str) -> bool:
        """True when a ``module:name`` global ref is the sanctioned
        worker-local None-sentinel (module-level ``NAME = None`` rebound
        only through ``global`` statements)."""
        module, _, name = ref.partition(":")
        table = self.globals_by_module.get(module)
        return table is not None and name in table.none_sentinel
