"""Interprocedural effect inference for the purity lint rules.

The fast-path and spawn-safety contracts (DESIGN.md "Performance
architecture", "Layer 3 — seed-sharded streaming sweep") are *purity*
contracts: a ``TracePolicy`` declaring ``tick_stateless = True``
promises its ``decide`` mutates nothing, and the process-pool worker
promises rack ``i`` is a pure function of ``(fleet_seed, i)``.  This
package checks those promises statically:

* :mod:`~repro.analysis.effects.summary` extracts a per-function
  **effect summary** from the AST — writes to ``self.*``, mutation of
  parameters (subscript stores, augmented assignment, in-place NumPy
  calls, mutating container methods), RNG/wall-clock use, and reads or
  writes of mutable module globals.
* :mod:`~repro.analysis.effects.callgraph` indexes classes (bases,
  linearization, class-body constants) and resolves call sites across
  modules, reusing the :class:`~repro.analysis.context.ProjectIndex`
  signature-resolution idiom.
* :mod:`~repro.analysis.effects.propagate` runs a fixpoint pass so
  effects flow through helper calls: the summary lattice is a finite
  powerset ordered by inclusion, the transfer function is a monotone
  union, so iteration terminates at the least fixpoint.

Known unsoundness (documented in DESIGN.md): dynamic dispatch through a
value whose method name is defined more than once in the project,
``getattr``/reflection, aliasing through containers, and effects of
code outside the linted tree are all invisible.  The rules built on
top are therefore *bug finders with exact positives*, not verifiers.
"""

from __future__ import annotations

from repro.analysis.effects.callgraph import ClassIndex, ClassInfo, ModuleGlobals
from repro.analysis.effects.propagate import EffectAnalysis, IMPURE_KINDS
from repro.analysis.effects.summary import Effect, FunctionInfo, FunctionKey

__all__ = [
    "ClassIndex",
    "ClassInfo",
    "Effect",
    "EffectAnalysis",
    "FunctionInfo",
    "FunctionKey",
    "IMPURE_KINDS",
    "ModuleGlobals",
]
