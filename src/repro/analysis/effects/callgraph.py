"""Module-global tables and the cross-module class index.

Two structures the effect analysis hangs off:

* :class:`ModuleGlobals` — per-module classification of module-level
  names: which are *mutable* (bound to a dict/list/set literal or a
  mutable-constructor call), which are *rebound* from function scope
  via ``global`` statements, and which follow the sanctioned
  worker-local **None-sentinel** pattern (``NAME = None`` at module
  level, assigned only through ``global`` inside worker functions — the
  idiom :mod:`repro.experiments.parallel` uses for per-process caches).
* :class:`ClassIndex` — every class in the linted tree with its base
  classes resolved across modules (same-module names, ``from``-imports,
  ``module_alias.Class``), an approximate MRO linearization, method
  lookup through that MRO (including the ``super()`` "start after this
  class" variant), and class-body constants so rules can read the
  *effective* value of contract flags like ``tick_stateless``.

The MRO here is a naive left-to-right depth-first linearization, not
C3 — indistinguishable for the single-inheritance hierarchies this
codebase uses, and close enough for a linter on anything else.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.analysis.context import ModuleContext

from repro.analysis.effects.summary import FunctionKey

__all__ = ["ClassIndex", "ClassInfo", "ClassKey", "ModuleGlobals"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: (module, class name)
ClassKey = tuple[str, str]

_MUTABLE_CONSTRUCTOR_NAMES = frozenset({
    "dict", "list", "set", "bytearray",
    "defaultdict", "deque", "OrderedDict", "Counter", "ChainMap",
})


def _is_mutable_value(node: ast.expr) -> bool:
    """True when a module-level binding's value is a mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _MUTABLE_CONSTRUCTOR_NAMES
        if isinstance(func, ast.Attribute):
            return func.attr in _MUTABLE_CONSTRUCTOR_NAMES
    return False


@dataclass
class ModuleGlobals:
    """Classification of one module's top-level names."""

    module: str
    path: str
    #: every module-level bound name (values, defs, classes)
    bindings: set[str] = field(default_factory=set)
    #: bound to a mutable container literal / constructor call
    mutable_literal: set[str] = field(default_factory=set)
    #: named in a ``global`` statement somewhere in the module
    rebound: set[str] = field(default_factory=set)
    #: every module-level binding is literally ``None`` (worker-local
    #: sentinel idiom; rebinding happens via ``global`` in the worker)
    none_sentinel: set[str] = field(default_factory=set)
    #: name → line of its first module-level binding
    lines: dict[str, int] = field(default_factory=dict)

    @property
    def tracked(self) -> set[str]:
        """Names whose reads/writes the extractor records as effects."""
        return self.mutable_literal | self.rebound

    @classmethod
    def scan(cls, ctx: ModuleContext) -> "ModuleGlobals":
        table = cls(module=ctx.module, path=ctx.path)
        non_none: set[str] = set()
        maybe_none: set[str] = set()

        def bind(name: str, value: Optional[ast.expr],
                 line: int) -> None:
            table.bindings.add(name)
            table.lines.setdefault(name, line)
            if value is None:
                return
            if _is_mutable_value(value):
                table.mutable_literal.add(name)
            if isinstance(value, ast.Constant) and value.value is None:
                maybe_none.add(name)
            else:
                non_none.add(name)

        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name_node in _target_names(target):
                        bind(name_node.id, stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                bind(stmt.target.id, stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AugAssign) and \
                    isinstance(stmt.target, ast.Name):
                bind(stmt.target.id, None, stmt.lineno)
            elif isinstance(stmt, (*_FUNCTION_NODES, ast.ClassDef)):
                table.bindings.add(stmt.name)
        for node in ctx.nodes_of_type(ast.Global):
            assert isinstance(node, ast.Global)
            table.rebound.update(node.names)
        table.none_sentinel = maybe_none - non_none
        return table


def _target_names(target: ast.expr) -> Iterator[ast.Name]:
    if isinstance(target, ast.Name):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


@dataclass
class ClassInfo:
    """One class definition with resolved bases and contract constants."""

    key: ClassKey
    node: ast.ClassDef
    path: str
    base_refs: list[ClassKey] = field(default_factory=list)
    #: base names we could not resolve inside the linted tree
    #: (``Protocol``, third-party classes, subscripted generics …)
    unresolved_base_names: list[str] = field(default_factory=list)
    #: method name → function key, own body only
    methods: dict[str, FunctionKey] = field(default_factory=dict)
    #: simple class-body constants: ``tick_stateless = True`` and kin
    class_consts: dict[str, object] = field(default_factory=dict)
    const_lines: dict[str, int] = field(default_factory=dict)

    @property
    def module(self) -> str:
        return self.key[0]

    @property
    def name(self) -> str:
        return self.key[1]


class ClassIndex:
    """Every class in the project, with MRO-aware lookups."""

    def __init__(self) -> None:
        self.classes: dict[ClassKey, ClassInfo] = {}
        self._by_name: dict[str, list[ClassKey]] = {}
        self._mro_cache: dict[ClassKey, tuple[ClassKey, ...]] = {}

    @classmethod
    def build(cls, contexts: list[ModuleContext]) -> "ClassIndex":
        index = cls()
        for ctx in contexts:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    index._add_class(ctx, node)
        for ctx in contexts:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    index._resolve_bases(ctx, node)
        return index

    def _add_class(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        key: ClassKey = (ctx.module, node.name)
        info = ClassInfo(key=key, node=node, path=ctx.path)
        for item in node.body:
            if isinstance(item, _FUNCTION_NODES):
                info.methods[item.name] = (ctx.module,
                                           f"{node.name}.{item.name}")
            elif isinstance(item, ast.Assign) and len(item.targets) == 1 \
                    and isinstance(item.targets[0], ast.Name) \
                    and isinstance(item.value, ast.Constant):
                name = item.targets[0].id
                info.class_consts[name] = item.value.value
                info.const_lines[name] = item.lineno
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name) and \
                    isinstance(item.value, ast.Constant):
                info.class_consts[item.target.id] = item.value.value
                info.const_lines[item.target.id] = item.lineno
        self.classes[key] = info
        self._by_name.setdefault(node.name, []).append(key)

    def _resolve_bases(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        info = self.classes[(ctx.module, node.name)]
        for base in node.bases:
            resolved = self._resolve_base(ctx, base)
            if resolved is not None:
                info.base_refs.append(resolved)
            else:
                name = _base_name(base)
                if name is not None:
                    info.unresolved_base_names.append(name)

    def _resolve_base(self, ctx: ModuleContext,
                      base: ast.expr) -> Optional[ClassKey]:
        if isinstance(base, ast.Subscript):  # Generic[T] and friends
            base = base.value
        if isinstance(base, ast.Name):
            key = (ctx.module, base.id)
            if key in self.classes:
                return key
            imported = ctx.imported_names.get(base.id)
            if imported is not None and imported in self.classes:
                return imported
            candidates = self._by_name.get(base.id, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        if isinstance(base, ast.Attribute) and \
                isinstance(base.value, ast.Name):
            module = ctx.module_aliases.get(base.value.id)
            if module is not None and (module, base.attr) in self.classes:
                return (module, base.attr)
        return None

    # ------------------------------------------------------------------
    # lookups

    def mro(self, key: ClassKey) -> tuple[ClassKey, ...]:
        """Approximate linearization: left-to-right DFS, first-seen wins."""
        cached = self._mro_cache.get(key)
        if cached is not None:
            return cached
        order: list[ClassKey] = []
        seen: set[ClassKey] = set()
        stack = [key]

        def visit(k: ClassKey) -> None:
            if k in seen:
                return
            seen.add(k)
            order.append(k)
            info = self.classes.get(k)
            if info is not None:
                for base in info.base_refs:
                    visit(base)

        visit(key)
        del stack
        result = tuple(order)
        self._mro_cache[key] = result
        return result

    def resolve_method(self, key: ClassKey, name: str,
                       after: Optional[ClassKey] = None,
                       ) -> Optional[FunctionKey]:
        """First class in ``key``'s MRO defining ``name``.

        With ``after`` set, skip every class up to and including it —
        the ``super().name(...)`` resolution as seen from a method
        defined on ``after``, dispatched on an instance of ``key``.
        """
        skipping = after is not None
        for ancestor in self.mro(key):
            if skipping:
                if ancestor == after:
                    skipping = False
                continue
            info = self.classes.get(ancestor)
            if info is not None and name in info.methods:
                return info.methods[name]
        return None

    def class_attr(self, key: ClassKey, name: str,
                   ) -> Optional[tuple[object, ClassKey]]:
        """Effective class-body constant ``name`` through the MRO:
        (value, defining class), or None when no ancestor sets it."""
        for ancestor in self.mro(key):
            info = self.classes.get(ancestor)
            if info is not None and name in info.class_consts:
                return info.class_consts[name], ancestor
        return None

    def ancestor_names(self, key: ClassKey) -> set[str]:
        """Names of every class in the MRO plus unresolved base names
        hanging off it — what "is a subclass of X" tests run against."""
        names: set[str] = set()
        for ancestor in self.mro(key):
            names.add(ancestor[1])
            info = self.classes.get(ancestor)
            if info is not None:
                names.update(info.unresolved_base_names)
        return names


def _base_name(base: ast.expr) -> Optional[str]:
    if isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None
