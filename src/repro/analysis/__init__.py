"""Project-specific static analysis (``repro lint``).

An AST-based lint engine enforcing the simulator's correctness
invariants — the ones the test suite cannot see because they only break
*future* code:

* ``power-cache-write`` — the incremental power-accounting caches of
  :mod:`repro.cluster.topology` stay correct only if every
  power-affecting mutation goes through the invalidation-aware
  setters.  Direct writes to the backing fields from outside the
  owning object silently corrupt cached wattage.
* ``durable-state-write`` — the sOA state snapshotted by the
  checkpoint/restore protocol (:mod:`repro.recovery.checkpoint`) is
  only faithful if every mutation goes through the owning object's
  accounting methods; cross-object writes to the durable backing
  fields persist state the control plane never computed.
* ``nondeterminism`` — all randomness must flow from an explicitly
  seeded :class:`numpy.random.Generator` and simulated time from the
  event engine, never from the wall clock or global RNG state.
* ``unit-mismatch`` — GHz/MHz/watts/seconds live in plain floats;
  the only guard against unit mixing is the ``_ghz``/``_watts``/…
  naming convention, which this rule checks at call sites.
* ``handler-hygiene`` — event handlers must not share mutable default
  arguments or reach into the engine's private event calendar.
* ``untyped-def`` — every function is fully annotated (the local
  equivalent of mypy's ``disallow_untyped_defs`` gate).

See DESIGN.md "Static analysis & enforced invariants" for the full
rationale and the pragma syntax (``# oclint: disable=<rule>``).
"""

from __future__ import annotations

from repro.analysis.config import (
    DEFAULT_DURABLE_FIELDS,
    DEFAULT_POWER_FIELDS,
    LintConfig,
    load_config,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintResult, lint_paths, lint_source
from repro.analysis.registry import Rule, all_rules, get_rule, register

__all__ = [
    "DEFAULT_DURABLE_FIELDS",
    "DEFAULT_POWER_FIELDS",
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
