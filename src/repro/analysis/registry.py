"""Rule base class and registry.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.analysis.rules` imports every rule module so importing the
package is enough to populate the registry.  Each rule is stateless:
``check`` receives the module context, the cross-module signature
index, and the engine configuration, and yields diagnostics.
"""

from __future__ import annotations

from typing import Iterator, Type

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.diagnostics import Diagnostic

__all__ = ["Rule", "all_rules", "get_rule", "register"]


class Rule:
    """One lint rule.  Subclasses set ``rule_id``/``description`` and
    implement :meth:`check`."""

    rule_id: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext, index: ProjectIndex,
              config: LintConfig) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, ctx: ModuleContext, line: int, col: int,
                   message: str) -> Diagnostic:
        return Diagnostic(path=ctx.path, line=line, col=col,
                          rule_id=self.rule_id, message=message)


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule instance to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id!r}")
    _REGISTRY[rule_class.rule_id] = rule_class()
    return rule_class


def all_rules() -> dict[str, Rule]:
    """The registered rules, keyed by rule id (import side effect:
    loading :mod:`repro.analysis.rules` registers the built-ins)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    rules = all_rules()
    if rule_id not in rules:
        known = ", ".join(sorted(rules))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
    return rules[rule_id]
