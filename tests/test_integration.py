"""Cross-module integration scenarios exercising whole control loops."""

import numpy as np
import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import (
    MetricsTriggerPolicy,
    OverclockSchedule,
)
from repro.sim.engine import SimulationEngine
from repro.sim.events import PeriodicTask

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz
MAX = DEFAULT_POWER_MODEL.plan.overclock_max_ghz


def build(n_servers=3, rack_limit=2500.0, config=None):
    rack = Rack("r0", rack_limit)
    servers = [Server(f"s{i}", DEFAULT_POWER_MODEL)
               for i in range(n_servers)]
    for s in servers:
        rack.add_server(s)
    dc = Datacenter()
    dc.add_rack(rack)
    return SmartOClockPlatform(dc, config), servers


class TestEndToEndOverclockCycle:
    """One latency spike: trigger → grant → ramp → relax → stop."""

    def test_full_cycle(self):
        platform, servers = build()
        vm = VirtualMachine(8, utilization=0.9)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(
                start_fraction=0.7, stop_fraction=0.3, consecutive=2))
        platform.attach_vm("svc", vm)

        # Two high observations start overclocking.
        service.observe(0.0, 9.0, 10.0)
        service.observe(10.0, 9.0, 10.0)
        platform.tick(10.0, dt=10.0)
        assert vm.freq_ghz == pytest.approx(MAX)

        # The load relaxes; two low observations stop it.
        service.observe(20.0, 2.0, 10.0)
        service.observe(30.0, 2.0, 10.0)
        platform.tick(30.0, dt=10.0)
        assert vm.freq_ghz == pytest.approx(TURBO)

    def test_wear_accounted_during_boost(self):
        platform, servers = build()
        vm = VirtualMachine(8, utilization=0.9)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        platform.attach_vm("svc", vm)
        service.observe(0.0, 9.0, 10.0)
        for i in range(1, 6):
            platform.tick(i * 10.0, dt=10.0)
        soa = platform.soas["s0"]
        core = servers[0].vm_cores(vm)[0]
        counter = soa.wear_counters[core.index]
        # Overclocked wear accrues faster than wall-clock time at this
        # utilization because of the voltage acceleration.
        assert counter.overclock_seconds > 0
        assert counter.wear_seconds > 0.9 * counter.busy_seconds


class TestScheduledOverclocking:
    def test_schedule_drives_reservation_and_release(self):
        platform, servers = build()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        # Window: Monday 0:00-1:00.
        service = platform.register_service(
            "svc", schedule=OverclockSchedule([((0,), 0.0, 1.0)]))
        platform.attach_vm("svc", vm)

        service.apply(60.0)  # inside the window
        assert platform.soas["s0"].is_overclocking(vm.vm_id)
        platform.tick(60.0, dt=10.0)
        assert vm.freq_ghz == pytest.approx(MAX)

        # After the window, the WI agent stops the overclock.
        service.apply(3700.0)
        assert not platform.soas["s0"].is_overclocking(vm.vm_id)


class TestPowerSafetyEndToEnd:
    def test_naive_overclocking_trips_the_rack(self):
        """Without admission control the rack caps; with it, it doesn't."""
        results = {}
        for label, config in (
                ("naive", SmartOClockConfig().as_naive()),
                ("smart", SmartOClockConfig())):
            # Rack limit sized so baseline fits but boosts do not.
            platform, servers = build(n_servers=3, rack_limit=890.0,
                                      config=config)
            vms = []
            for server in servers:
                vm = VirtualMachine(16, utilization=1.0)
                server.place_vm(vm)
                vms.append(vm)
            service = platform.register_service(
                "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
            for vm in vms:
                platform.attach_vm("svc", vm)
            service.observe(0.0, 9.0, 10.0)
            for i in range(1, 8):
                platform.tick(i * 10.0, dt=10.0)
                service.apply(i * 10.0)
            results[label] = platform.total_cap_events()
        assert results["naive"] > 0
        assert results["smart"] <= results["naive"]

    def test_rack_never_ends_above_limit_with_smart(self):
        platform, servers = build(n_servers=3, rack_limit=900.0)
        for server in servers:
            vm = VirtualMachine(16, utilization=1.0)
            server.place_vm(vm)
            service_name = f"svc-{server.server_id}"
            service = platform.register_service(
                service_name,
                metrics_policy=MetricsTriggerPolicy(consecutive=1))
            platform.attach_vm(service_name, vm)
            service.observe(0.0, 9.0, 10.0)
        for i in range(1, 30):
            platform.tick(i * 10.0, dt=10.0)
        rack = platform.datacenter.racks["r0"]
        assert rack.power_watts() <= rack.power_limit_watts + 1e-6


class TestEngineDrivenPlatform:
    def test_platform_on_simulation_engine(self):
        """The platform composes with the DES engine via PeriodicTask."""
        platform, servers = build()
        vm = VirtualMachine(8, utilization=0.9)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        platform.attach_vm("svc", vm)
        engine = SimulationEngine()
        PeriodicTask(engine, 10.0,
                     lambda: platform.tick(engine.now, 10.0))
        PeriodicTask(engine, 10.0,
                     lambda: service.observe(engine.now, 9.0, 10.0))
        engine.run(until=60.0)
        assert vm.freq_ghz == pytest.approx(MAX)


class TestTraceToPolicyPipeline:
    def test_fleet_generation_to_policy_comparison(self):
        """Synthetic traces flow through templates, budgets, and the
        policy kernels without manual glue."""
        from repro.experiments.largescale import compare_policies
        from repro.traces.synthetic import FleetConfig, generate_fleet
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=2, seed=13, servers_per_rack_min=8,
            servers_per_rack_max=8, p99_util_beta=(2.0, 2.0),
            p99_util_range=(0.85, 0.95)))
        scores = compare_policies(fleet,
                                  policy_names=("Central", "NaiveOClock",
                                                "SmartOClock"))
        assert scores["Central"].success_rate >= \
            scores["SmartOClock"].success_rate - 0.02
        assert scores["NaiveOClock"].cap_events >= \
            scores["SmartOClock"].cap_events
