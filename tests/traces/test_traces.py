"""Tests for trace schema, synthetic generation, and persistence."""

import numpy as np
import pytest

from repro.traces.io import load_rack_csv, save_rack_csv
from repro.traces.schema import RackTrace, ServerTrace
from repro.traces.synthetic import (
    FleetConfig,
    RackProfile,
    ServerProfile,
    generate_fleet,
    generate_rack,
    generate_server_trace,
    sample_server_profile,
)

WEEK = 7 * 86400.0


def tiny_config(**kwargs):
    defaults = dict(n_racks=2, servers_per_rack_min=4,
                    servers_per_rack_max=6, weeks=1, seed=3)
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def make_trace(n=10, sid="s"):
    times = np.arange(n) * 300.0
    return ServerTrace(sid, times, np.full(n, 200.0), np.full(n, 0.5),
                       np.zeros(n, dtype=int))


class TestSchema:
    def test_interval_inferred(self):
        assert make_trace().interval_s == 300.0

    def test_misaligned_arrays_rejected(self):
        times = np.arange(10) * 300.0
        with pytest.raises(ValueError):
            ServerTrace("s", times, np.zeros(9), np.zeros(10),
                        np.zeros(10, dtype=int))

    def test_utilization_bounds_validated(self):
        times = np.arange(3) * 300.0
        with pytest.raises(ValueError, match="utilization"):
            ServerTrace("s", times, np.zeros(3), np.array([0.1, 1.5, 0.2]),
                        np.zeros(3, dtype=int))

    def test_negative_power_rejected(self):
        times = np.arange(3) * 300.0
        with pytest.raises(ValueError, match="power"):
            ServerTrace("s", times, np.array([1.0, -1.0, 1.0]),
                        np.zeros(3), np.zeros(3, dtype=int))

    def test_window_selects_half_open_interval(self):
        trace = make_trace(10)
        window = trace.window(300.0, 1200.0)
        assert window.n_samples == 3
        assert window.times[0] == 300.0

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_trace(10).window(0.0, 100.0)

    def test_rack_totals(self):
        rack = RackTrace("r", 1000.0, [make_trace(5, "a"),
                                       make_trace(5, "b")])
        assert np.allclose(rack.total_power(), 400.0)
        assert np.allclose(rack.utilization_series(), 0.4)

    def test_rack_requires_aligned_servers(self):
        with pytest.raises(ValueError, match="aligned"):
            RackTrace("r", 1000.0, [make_trace(5), make_trace(6)])

    def test_rack_requires_servers(self):
        with pytest.raises(ValueError):
            RackTrace("r", 1000.0, [])


class TestSyntheticGeneration:
    def test_fleet_is_deterministic(self):
        a = generate_fleet(tiny_config())
        b = generate_fleet(tiny_config())
        assert np.array_equal(a.racks[0].servers[0].power_watts,
                              b.racks[0].servers[0].power_watts)

    def test_different_seed_differs(self):
        a = generate_fleet(tiny_config(seed=1))
        b = generate_fleet(tiny_config(seed=2))
        assert not np.array_equal(a.racks[0].servers[0].power_watts,
                                  b.racks[0].servers[0].power_watts)

    def test_rack_sizes_within_bounds(self):
        fleet = generate_fleet(tiny_config())
        for rack in fleet.racks:
            assert 4 <= len(rack.servers) <= 6

    def test_limit_set_by_target_p99(self):
        config = tiny_config()
        rng = np.random.default_rng(0)
        rack = generate_rack("r", config,
                             RackProfile(target_p99_utilization=0.8), rng)
        p99 = float(np.percentile(rack.total_power(), 99))
        assert p99 / rack.power_limit_watts == pytest.approx(0.8, rel=1e-6)

    def test_ml_servers_have_no_oc_demand(self):
        config = tiny_config(ml_fraction=1.0)
        fleet = generate_fleet(config)
        for rack in fleet.racks:
            for server in rack.servers:
                assert int(server.oc_cores.max()) == 0

    def test_lc_servers_have_oc_demand_on_weekdays(self):
        config = tiny_config(ml_fraction=0.0, weeks=1)
        fleet = generate_fleet(config)
        any_demand = any(int(s.oc_cores.max()) > 0
                         for r in fleet.racks for s in r.servers)
        assert any_demand

    def test_no_weekend_oc_demand(self):
        config = tiny_config(ml_fraction=0.0)
        fleet = generate_fleet(config)
        for rack in fleet.racks:
            weekend = (rack.times // 86400.0).astype(int) % 7 >= 5
            for server in rack.servers:
                assert int(server.oc_cores[weekend].max()) == 0

    def test_diurnal_repeatability(self):
        """Weekday power is correlated day-over-day (the predictability
        §III Q3 depends on)."""
        config = tiny_config(noise_sigma=0.01, outlier_day_prob=0.0,
                             weekly_drift_sigma=0.0, peak_hour_drift_h=0.0)
        fleet = generate_fleet(config)
        rack = fleet.racks[0]
        day = int(86400.0 / 300.0)
        power = rack.total_power()
        monday, tuesday = power[:day], power[day:2 * day]
        corr = float(np.corrcoef(monday, tuesday)[0, 1])
        assert corr > 0.95

    def test_weekly_drift_decorrelates_servers_not_rack(self):
        """§III Q3: rack power stays more predictable than server power."""
        config = tiny_config(weeks=2, n_racks=1, servers_per_rack_min=16,
                             servers_per_rack_max=16, noise_sigma=0.0,
                             outlier_day_prob=0.0, peak_hour_drift_h=0.0,
                             weekly_drift_sigma=0.15, ml_fraction=0.0)
        fleet = generate_fleet(config)
        rack = fleet.racks[0]
        half = rack.n_samples // 2

        def week_error(series):
            return float(np.mean(np.abs(series[half:] - series[:half]))
                         / np.mean(series))

        rack_err = week_error(rack.total_power())
        server_errs = [week_error(s.power_watts) for s in rack.servers]
        assert rack_err < np.mean(server_errs)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ServerProfile("bogus", 0.5, 0.1, 12.0, 0.5, 0.0, 4, 0.7)
        with pytest.raises(ValueError):
            ServerProfile("diurnal", 0.2, 0.5, 12.0, 0.5, 0.0, 4, 0.7)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_racks=0)
        with pytest.raises(ValueError):
            FleetConfig(weeks=0)
        with pytest.raises(ValueError):
            FleetConfig(ml_fraction=2.0)

    def test_sample_profile_ml_forced(self):
        rng = np.random.default_rng(0)
        profile = sample_server_profile(rng, tiny_config(), force_ml=True)
        assert profile.archetype == "ml"
        assert profile.oc_cores == 0


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        fleet = generate_fleet(tiny_config())
        rack = fleet.racks[0]
        path = tmp_path / "rack.csv"
        save_rack_csv(rack, path)
        loaded = load_rack_csv(path)
        assert loaded.rack_id == rack.rack_id
        assert loaded.power_limit_watts == pytest.approx(
            rack.power_limit_watts)
        assert len(loaded.servers) == len(rack.servers)
        assert np.allclose(loaded.servers[0].power_watts,
                           rack.servers[0].power_watts, atol=1e-3)
        assert np.array_equal(loaded.servers[0].oc_cores,
                              rack.servers[0].oc_cores)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,server_id\n")
        with pytest.raises(ValueError, match="header"):
            load_rack_csv(path)
