"""Tests for trace statistics."""

import numpy as np
import pytest

from repro.traces.schema import RackTrace, ServerTrace
from repro.traces.stats import (
    UtilizationStats,
    headroom_fraction,
    multiplexing_gain,
    overclock_demand_stats,
    utilization_stats,
    week_over_week_rmse,
)
from repro.traces.synthetic import FleetConfig, generate_fleet

WEEK = 7 * 86400.0


def two_week_trace(values_fn, sid="s"):
    times = np.arange(0.0, 2 * WEEK, 300.0)
    power = values_fn(times)
    return ServerTrace(sid, times, power,
                       np.clip(power / power.max(), 0, 1),
                       np.zeros(len(times), dtype=int))


class TestUtilizationStats:
    def test_from_series(self):
        stats = UtilizationStats.from_series(np.array([0.2, 0.5, 0.9]))
        assert stats.average == pytest.approx(np.mean([0.2, 0.5, 0.9]))
        assert stats.p50 == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UtilizationStats.from_series(np.array([]))

    def test_rack_stats_ordering(self):
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=1, seed=2, servers_per_rack_min=6,
            servers_per_rack_max=6))
        stats = utilization_stats(fleet.racks[0])
        assert stats.average <= stats.p99
        assert stats.p50 <= stats.p99


class TestWeekOverWeek:
    def test_perfect_repeat_scores_zero(self):
        trace = two_week_trace(
            lambda t: 200 + 50 * np.sin(2 * np.pi * t / 86400.0))
        assert week_over_week_rmse(trace.times, trace.power_watts) == \
            pytest.approx(0.0, abs=1e-9)

    def test_drift_scores_positive(self):
        def values(t):
            base = 200 + 50 * np.sin(2 * np.pi * t / 86400.0)
            return np.where(t < WEEK, base, base * 1.2)
        trace = two_week_trace(values)
        assert week_over_week_rmse(trace.times, trace.power_watts) > 10.0

    def test_needs_two_weeks(self):
        times = np.arange(0.0, WEEK / 2, 300.0)
        with pytest.raises(ValueError, match="two weeks"):
            week_over_week_rmse(times, np.ones(len(times)))


class TestHeadroom:
    def test_no_demand_is_baseline_fraction(self):
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=1, seed=3, servers_per_rack_min=4,
            servers_per_rack_max=4))
        rack = fleet.racks[0]
        assert headroom_fraction(rack) > 0.9

    def test_more_demand_less_headroom(self):
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=1, seed=3, servers_per_rack_min=4,
            servers_per_rack_max=4))
        rack = fleet.racks[0]
        assert headroom_fraction(rack, demand_watts=500.0) <= \
            headroom_fraction(rack, demand_watts=50.0)

    def test_negative_demand_rejected(self):
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=1, seed=3, servers_per_rack_min=4,
            servers_per_rack_max=4))
        with pytest.raises(ValueError):
            headroom_fraction(fleet.racks[0], demand_watts=-1.0)


class TestMultiplexing:
    def test_rack_more_predictable_than_servers(self):
        """§III Q3 on generated traces: independent per-server drift
        cancels at rack level."""
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=2, seed=8, servers_per_rack_min=16,
            servers_per_rack_max=16, noise_sigma=0.0,
            outlier_day_prob=0.0, peak_hour_drift_h=0.0,
            weekly_drift_sigma=0.15, ml_fraction=0.0))
        assert multiplexing_gain(fleet.racks[0]) > 1.0


class TestDemandStats:
    def test_counts_demanding_servers(self):
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=1, seed=5, servers_per_rack_min=8,
            servers_per_rack_max=8, ml_fraction=0.5))
        stats = overclock_demand_stats(fleet.racks[0])
        n = len(fleet.racks[0].servers)
        assert 0 < stats.demanding_servers < n
        assert stats.peak_cores >= 8
        assert stats.mean_daily_hours > 0
