"""MessageChannel: synchronous delivery, drops, delays, pump ordering."""

from repro.core.messaging import Envelope, MessageChannel, MessageFate


def envelope(kind="budget_push", dst="s0", sent_at=0.0):
    return Envelope(kind, "r0", dst, sent_at)


class TestHealthyChannel:
    def test_send_delivers_synchronously(self):
        channel = MessageChannel()
        got = []
        assert channel.send(envelope(sent_at=5.0), got.append)
        assert got == [5.0]
        assert channel.sent == channel.delivered == 1
        assert channel.in_flight == 0

    def test_request_fetches(self):
        channel = MessageChannel()
        assert channel.request(envelope("profile_pull"), lambda: 42) == 42

    def test_pump_noop_when_empty(self):
        assert MessageChannel().pump(100.0) == 0


class TestFaultedChannel:
    def test_drop(self):
        channel = MessageChannel(lambda e: MessageFate(dropped=True))
        got = []
        assert not channel.send(envelope(), got.append)
        assert got == []
        assert channel.dropped == 1

    def test_delay_holds_until_pump(self):
        channel = MessageChannel(lambda e: MessageFate(delay_s=30.0))
        got = []
        channel.send(envelope(sent_at=10.0), got.append)
        assert got == [] and channel.in_flight == 1
        assert channel.pump(39.0) == 0        # not due yet
        assert channel.pump(45.0) == 1
        assert got == [45.0]                  # delivered at pump time
        assert channel.in_flight == 0
        assert channel.delayed == 1 and channel.delivered == 1

    def test_pump_delivers_in_due_order(self):
        fates = {"s0": 50.0, "s1": 10.0, "s2": 30.0}
        channel = MessageChannel(
            lambda e: MessageFate(delay_s=fates[e.dst]))
        order = []
        for dst in ("s0", "s1", "s2"):
            channel.send(Envelope("budget_push", "r0", dst, 0.0),
                         lambda at, d=dst: order.append(d))
        channel.pump(100.0)
        assert order == ["s1", "s2", "s0"]

    def test_partial_pump_keeps_later_messages(self):
        channel = MessageChannel(
            lambda e: MessageFate(delay_s=100.0 if e.dst == "slow" else 5.0))
        order = []
        channel.send(Envelope("budget_push", "r0", "slow", 0.0),
                     lambda at: order.append("slow"))
        channel.send(Envelope("budget_push", "r0", "fast", 0.0),
                     lambda at: order.append("fast"))
        assert channel.pump(10.0) == 1
        assert order == ["fast"] and channel.in_flight == 1
        assert channel.pump(100.0) == 1
        assert order == ["fast", "slow"]

    def test_request_fails_on_drop_and_delay(self):
        dropped = MessageChannel(lambda e: MessageFate(dropped=True))
        assert dropped.request(envelope("profile_pull"), lambda: 1) is None
        delayed = MessageChannel(lambda e: MessageFate(delay_s=1.0))
        assert delayed.request(envelope("profile_pull"), lambda: 1) is None
        assert dropped.dropped == 1 and delayed.dropped == 1
