"""MessageChannel: synchronous delivery, drops, delays, pump ordering."""

from repro.core.messaging import Envelope, MessageChannel, MessageFate


def envelope(kind="budget_push", dst="s0", sent_at=0.0):
    return Envelope(kind, "r0", dst, sent_at)


class TestHealthyChannel:
    def test_send_delivers_synchronously(self):
        channel = MessageChannel()
        got = []
        assert channel.send(envelope(sent_at=5.0), got.append)
        assert got == [5.0]
        assert channel.sent == channel.delivered == 1
        assert channel.in_flight == 0

    def test_request_fetches(self):
        channel = MessageChannel()
        assert channel.request(envelope("profile_pull"), lambda: 42) == 42

    def test_pump_noop_when_empty(self):
        assert MessageChannel().pump(100.0) == 0


class TestFaultedChannel:
    def test_drop(self):
        channel = MessageChannel(lambda e: MessageFate(dropped=True))
        got = []
        assert not channel.send(envelope(), got.append)
        assert got == []
        assert channel.dropped == 1

    def test_delay_holds_until_pump(self):
        channel = MessageChannel(lambda e: MessageFate(delay_s=30.0))
        got = []
        channel.send(envelope(sent_at=10.0), got.append)
        assert got == [] and channel.in_flight == 1
        assert channel.pump(39.0) == 0        # not due yet
        assert channel.pump(45.0) == 1
        assert got == [45.0]                  # delivered at pump time
        assert channel.in_flight == 0
        assert channel.delayed == 1 and channel.delivered == 1

    def test_pump_delivers_in_due_order(self):
        fates = {"s0": 50.0, "s1": 10.0, "s2": 30.0}
        channel = MessageChannel(
            lambda e: MessageFate(delay_s=fates[e.dst]))
        order = []
        for dst in ("s0", "s1", "s2"):
            channel.send(Envelope("budget_push", "r0", dst, 0.0),
                         lambda at, d=dst: order.append(d))
        channel.pump(100.0)
        assert order == ["s1", "s2", "s0"]

    def test_partial_pump_keeps_later_messages(self):
        channel = MessageChannel(
            lambda e: MessageFate(delay_s=100.0 if e.dst == "slow" else 5.0))
        order = []
        channel.send(Envelope("budget_push", "r0", "slow", 0.0),
                     lambda at: order.append("slow"))
        channel.send(Envelope("budget_push", "r0", "fast", 0.0),
                     lambda at: order.append("fast"))
        assert channel.pump(10.0) == 1
        assert order == ["fast"] and channel.in_flight == 1
        assert channel.pump(100.0) == 1
        assert order == ["fast", "slow"]

    def test_equal_delay_pushes_deliver_in_send_order(self):
        # Ties on deliver_at must break by send order (stable sort), so
        # the later of two budget pushes always wins at the receiver.
        channel = MessageChannel(lambda e: MessageFate(delay_s=40.0))
        order = []
        channel.send(envelope(sent_at=0.0), lambda at: order.append("first"))
        channel.send(envelope(sent_at=0.0), lambda at: order.append("second"))
        assert channel.pump(100.0) == 2
        assert order == ["first", "second"]

    def test_equal_deliver_at_from_different_sends_keeps_send_order(self):
        # Same deliver_at reached via different (sent_at, delay) pairs:
        # the tie still breaks by send order, not by delay or sent_at.
        delays = {"a": 30.0, "b": 20.0}
        channel = MessageChannel(lambda e: MessageFate(delay_s=delays[e.dst]))
        order = []
        channel.send(Envelope("budget_push", "r0", "a", 10.0),
                     lambda at: order.append("a"))   # due at 40
        channel.send(Envelope("budget_push", "r0", "b", 20.0),
                     lambda at: order.append("b"))   # due at 40 too
        assert channel.pump(40.0) == 2
        assert order == ["a", "b"]

    def test_request_fails_on_drop_and_delay(self):
        dropped = MessageChannel(lambda e: MessageFate(dropped=True))
        assert dropped.request(envelope("profile_pull"), lambda: 1) is None
        delayed = MessageChannel(lambda e: MessageFate(delay_s=1.0))
        assert delayed.request(envelope("profile_pull"), lambda: 1) is None
        # A drop-fated pull is a lost message; a delay-fated pull is not
        # (the network would deliver it, just too late for a synchronous
        # exchange) — it counts as a failed pull so drop counts and the
        # conservation identity stay true.
        assert dropped.dropped == 1 and dropped.failed_pulls == 0
        assert delayed.dropped == 0 and delayed.failed_pulls == 1
        for channel in (dropped, delayed):
            assert channel.sent == (channel.delivered + channel.dropped
                                    + channel.failed_pulls
                                    + channel.in_flight)


class TestDelayedDeliveryAcrossRestart:
    """Delayed budget pushes vs the receiving sOA's own lifecycle: the
    channel holds messages regardless of receiver state, and a restarted
    sOA applies in-flight pushes in send order when they drain."""

    def build_soa(self):
        import numpy as np

        from repro.cluster.power import DEFAULT_POWER_MODEL
        from repro.cluster.topology import Datacenter, Rack, Server
        from repro.core.budgets import BudgetAssignment
        from repro.core.platform import SmartOClockPlatform

        rack = Rack("r0", 3000.0)
        rack.add_server(Server("s0", DEFAULT_POWER_MODEL))
        dc = Datacenter()
        dc.add_rack(rack)
        platform = SmartOClockPlatform(dc)
        soa = platform.soas["s0"]

        def assignment(watts):
            return BudgetAssignment(
                slot_s=300.0, budgets={"s0": np.array([watts])})

        return soa, assignment

    def test_pushes_survive_receiver_restart_between_sends(self):
        soa, assignment = self.build_soa()
        first, second = assignment(500.0), assignment(700.0)
        channel = MessageChannel(lambda e: MessageFate(delay_s=40.0))
        applied = []

        def push(tag, a):
            def deliver(at):
                soa.receive_budget_push(a, now=at)
                applied.append(tag)
            channel.send(envelope(sent_at=0.0), deliver)

        push("first", first)
        # The sOA process dies and restores while both pushes are still
        # in flight; the channel neither loses nor reorders them.
        soa.crash(5.0)
        soa.restart(10.0, None)
        push("second", second)
        assert channel.in_flight == 2
        assert channel.pump(50.0) == 2
        assert applied == ["first", "second"]
        # Send order decided the final state: the later push sticks.
        assert soa._assignment is second
        assert soa._assignment_received_at == 50.0

    def test_push_delivered_while_receiver_dead_is_lost(self):
        soa, assignment = self.build_soa()
        channel = MessageChannel(lambda e: MessageFate(delay_s=40.0))
        channel.send(envelope(sent_at=0.0),
                     lambda at: soa.receive_budget_push(assignment(500.0),
                                                        now=at))
        soa.crash(5.0)
        channel.pump(50.0)  # drains to a dead process: silently lost
        assert soa._assignment is None
        soa.restart(60.0, None)
        assert soa._assignment is None
