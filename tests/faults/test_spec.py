"""FaultPlan / fault-spec validation and matching semantics."""

import pytest

from repro.faults.spec import (
    CheckpointCorruptionFault,
    FaultPlan,
    FaultWindow,
    GoaOutage,
    MessageFault,
    MispredictionFault,
    TelemetryDropout,
)


class TestFaultWindow:
    def test_half_open_semantics(self):
        w = FaultWindow(10.0, 20.0)
        assert not w.active(9.999)
        assert w.active(10.0)
        assert w.active(19.999)
        assert not w.active(20.0)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="start_s < end_s"):
            FaultWindow(20.0, 10.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultWindow(-1.0, 10.0)


class TestSelectors:
    def test_goa_outage_rack_selector(self):
        outage = GoaOutage(FaultWindow(0.0, 100.0), rack_id="r1")
        assert outage.matches("r1", 50.0)
        assert not outage.matches("r2", 50.0)

    def test_goa_outage_wildcard_rack(self):
        outage = GoaOutage(FaultWindow(0.0, 100.0))
        assert outage.matches("anything", 0.0)

    def test_message_fault_kind_selector(self):
        fault = MessageFault(FaultWindow(0.0, 100.0), drop_prob=1.0,
                             kinds=("budget_push",))
        assert fault.matches("r", "budget_push", 1.0)
        assert not fault.matches("r", "profile_pull", 1.0)

    def test_telemetry_server_selector(self):
        fault = TelemetryDropout(FaultWindow(0.0, 10.0), server_id="s3")
        assert fault.matches("s3", 5.0)
        assert not fault.matches("s4", 5.0)
        assert not fault.matches("s3", 10.0)


class TestValidation:
    def test_message_fault_needs_an_effect(self):
        with pytest.raises(ValueError, match="drop probability or a delay"):
            MessageFault(FaultWindow(0.0, 1.0))

    def test_message_fault_rejects_bad_prob(self):
        with pytest.raises(ValueError, match="drop_prob"):
            MessageFault(FaultWindow(0.0, 1.0), drop_prob=1.5)

    def test_telemetry_rejects_zero_prob(self):
        with pytest.raises(ValueError, match="drop_prob"):
            TelemetryDropout(FaultWindow(0.0, 1.0), drop_prob=0.0)

    def test_misprediction_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scale"):
            MispredictionFault(FaultWindow(0.0, 1.0), scale=0.0)

    def test_checkpoint_corruption_rejects_bad_prob(self):
        with pytest.raises(ValueError, match="corrupt_prob"):
            CheckpointCorruptionFault(FaultWindow(0.0, 1.0),
                                      corrupt_prob=0.0)
        with pytest.raises(ValueError, match="corrupt_prob"):
            CheckpointCorruptionFault(FaultWindow(0.0, 1.0),
                                      corrupt_prob=1.5)

    def test_checkpoint_corruption_matches_key_and_window(self):
        fault = CheckpointCorruptionFault(FaultWindow(10.0, 20.0),
                                          server_id="s0")
        assert fault.matches("s0", 15.0)
        assert not fault.matches("s0", 20.0)      # half-open window
        assert not fault.matches("goa:r0", 15.0)  # selector is exact
        wildcard = CheckpointCorruptionFault(FaultWindow(10.0, 20.0))
        assert wildcard.matches("goa:r0", 15.0)


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().empty
        plan = FaultPlan(goa_outages=(GoaOutage(FaultWindow(0.0, 1.0)),))
        assert not plan.empty

    def test_lists_canonicalized_to_tuples(self):
        plan = FaultPlan(
            goa_outages=[GoaOutage(FaultWindow(0.0, 1.0))])  # type: ignore[arg-type]
        assert isinstance(plan.goa_outages, tuple)

    def test_goa_down_any_matching_outage(self):
        plan = FaultPlan(goa_outages=(
            GoaOutage(FaultWindow(0.0, 10.0), rack_id="r1"),
            GoaOutage(FaultWindow(20.0, 30.0), rack_id="r2"),
        ))
        assert plan.goa_down("r1", 5.0)
        assert not plan.goa_down("r1", 25.0)
        assert plan.goa_down("r2", 25.0)

    def test_prediction_scale_compounds(self):
        plan = FaultPlan(mispredictions=(
            MispredictionFault(FaultWindow(0.0, 10.0), scale=0.5),
            MispredictionFault(FaultWindow(0.0, 10.0), scale=0.8),
        ))
        assert plan.prediction_scale("s", 5.0) == pytest.approx(0.4)
        assert plan.prediction_scale("s", 15.0) == 1.0
