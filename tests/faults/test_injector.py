"""FaultInjector: determinism, counters, and hook behaviour."""

import pytest

from repro.core.messaging import Envelope
from repro.faults import FaultInjector, FaultPlan, GoaOutage, MessageFault
from repro.faults.spec import (
    CheckpointCorruptionFault,
    FaultWindow,
    MispredictionFault,
    TelemetryDropout,
)


def lossy_plan(drop=0.5, delay=0.0):
    return FaultPlan(message_faults=(
        MessageFault(FaultWindow(0.0, 1000.0), drop_prob=drop,
                     delay_s=delay),))


class TestDeterminism:
    def test_same_seed_same_fates(self):
        """The whole point: one plan + one seed = one fault schedule."""
        def fates(seed):
            injector = FaultInjector(lossy_plan(), seed=seed)
            return [injector.message_fate(
                "r0", Envelope("budget_push", "r0", f"s{i}", t)).dropped
                for i in range(8) for t in (10.0, 400.0, 999.0)]
        assert fates(7) == fates(7)
        assert fates(7) != fates(8)  # and the seed actually matters

    def test_fate_independent_of_draw_order(self):
        """Decisions key on event identity, not a shared stream: asking
        about extra events must not change other events' fates."""
        e1 = Envelope("budget_push", "r0", "s0", 10.0)
        e2 = Envelope("budget_push", "r0", "s1", 10.0)
        a = FaultInjector(lossy_plan(), seed=3)
        b = FaultInjector(lossy_plan(), seed=3)
        a.message_fate("r0", e1)
        assert (a.message_fate("r0", e2).dropped
                == b.message_fate("r0", e2).dropped)

    def test_telemetry_drop_deterministic(self):
        plan = FaultPlan(telemetry_dropouts=(
            TelemetryDropout(FaultWindow(0.0, 1000.0), drop_prob=0.5),))
        def drops(seed):
            injector = FaultInjector(plan, seed=seed)
            return [injector.telemetry_drop("s0", t * 10.0)
                    for t in range(40)]
        assert drops(1) == drops(1)
        assert any(drops(1)) and not all(drops(1))


class TestFates:
    def test_certain_drop_and_certain_delivery(self):
        injector = FaultInjector(lossy_plan(drop=1.0))
        fate = injector.message_fate(
            "r0", Envelope("budget_push", "r0", "s0", 1.0))
        assert fate.dropped
        fate = injector.message_fate(
            "r0", Envelope("budget_push", "r0", "s0", 2000.0))  # outside
        assert not fate.dropped and fate.delay_s == 0.0

    def test_delay_without_drop(self):
        injector = FaultInjector(lossy_plan(drop=0.0, delay=25.0))
        fate = injector.message_fate(
            "r0", Envelope("budget_push", "r0", "s0", 1.0))
        assert not fate.dropped
        assert fate.delay_s == 25.0
        assert injector.counters.messages_delayed == 1

    def test_goa_down_counts_missed_cycles(self):
        plan = FaultPlan(goa_outages=(
            GoaOutage(FaultWindow(100.0, 200.0), rack_id="r0"),))
        injector = FaultInjector(plan)
        assert not injector.goa_down("r0", 50.0)
        assert injector.goa_down("r0", 150.0)
        assert not injector.goa_down("r1", 150.0)
        assert injector.counters.goa_cycles_missed == 1

    def test_prediction_hook_scales_and_counts(self):
        plan = FaultPlan(mispredictions=(
            MispredictionFault(FaultWindow(0.0, 100.0), scale=0.8,
                               server_id="s0"),))
        injector = FaultInjector(plan)
        hook = injector.prediction_hook("s0")
        assert hook(50.0) == pytest.approx(0.8)
        assert hook(150.0) == 1.0
        other = injector.prediction_hook("s1")
        assert other(50.0) == 1.0
        assert injector.counters.predictions_skewed == 1

    def test_checkpoint_corruption_window_and_selector(self):
        plan = FaultPlan(checkpoint_corruptions=(
            CheckpointCorruptionFault(FaultWindow(100.0, 200.0),
                                      corrupt_prob=1.0, server_id="s0"),))
        injector = FaultInjector(plan)
        assert injector.checkpoint_corruption("s0", 150.0)
        assert not injector.checkpoint_corruption("s0", 250.0)  # outside
        assert not injector.checkpoint_corruption("s1", 150.0)  # other key
        assert injector.counters.checkpoints_corrupted == 1

    def test_checkpoint_corruption_wildcard_covers_goa_keys(self):
        plan = FaultPlan(checkpoint_corruptions=(
            CheckpointCorruptionFault(FaultWindow(0.0, 100.0)),))
        injector = FaultInjector(plan)
        assert injector.checkpoint_corruption("goa:r0", 50.0)
        assert injector.checkpoint_corruption("s3", 50.0)

    def test_checkpoint_corruption_deterministic_per_event(self):
        plan = FaultPlan(checkpoint_corruptions=(
            CheckpointCorruptionFault(FaultWindow(0.0, 1000.0),
                                      corrupt_prob=0.5),))

        def fates(seed):
            injector = FaultInjector(plan, seed=seed)
            return [injector.checkpoint_corruption(f"s{i}", t * 100.0)
                    for i in range(4) for t in range(10)]

        assert fates(5) == fates(5)
        assert fates(5) != fates(6)
        assert any(fates(5)) and not all(fates(5))

    def test_corruption_hook_counts_like_direct_calls(self):
        plan = FaultPlan(checkpoint_corruptions=(
            CheckpointCorruptionFault(FaultWindow(0.0, 100.0)),))
        injector = FaultInjector(plan)
        hook = injector.corruption_hook()
        assert hook("s0", 10.0)
        assert injector.counters.checkpoints_corrupted == 1

    def test_counters_as_dict_keys(self):
        counters = FaultInjector(FaultPlan()).counters.as_dict()
        assert set(counters) == {
            "goa_cycles_missed", "messages_dropped", "messages_delayed",
            "telemetry_dropped", "predictions_skewed",
            "checkpoints_corrupted"}
