"""Property tests: randomized chaos FaultPlans vs counter accounting.

For any plan :func:`repro.faults.chaos.generate_plan` can draw, the
channel's conservation identity must hold, the injector's counters must
equal what the endpoints actually observed, and replaying the same seed
must be bit-identical.  These are the bookkeeping contracts the chaos
sweep's reports (and CI's double-run diff) rest on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messaging import (
    BUDGET_PUSH,
    GOA_HEARTBEAT,
    PROFILE_PULL,
    Envelope,
    MessageChannel,
)
from repro.faults import FaultInjector
from repro.faults.chaos import generate_plan
from repro.recovery.checkpoint import DurableStore, SoaCheckpoint

SERVERS = ("s0", "s1", "s2")
DURATION = 1800.0
TICK = 30.0
TICKS = int(DURATION / TICK)


def drive(seed):
    """One deterministic message/checkpoint workload under the seeded
    random plan: pushes, pulls and heartbeats every tick, checkpoint
    saves on a cadence, a verified load of every key at the end."""
    plan = generate_plan(seed, duration_s=DURATION, server_ids=SERVERS,
                         tick_s=TICK)
    injector = FaultInjector(plan, seed=seed)
    channel = MessageChannel(injector.channel_hook("r0"))
    store = DurableStore(corruption_hook=injector.corruption_hook())
    log = []
    for i in range(TICKS):
        t = i * TICK
        channel.pump(t)
        for sid in SERVERS:
            channel.send(
                Envelope(BUDGET_PUSH, "r0/goa0", sid, t),
                lambda at, s=sid: log.append(("push", s, at)))
            profile = channel.request(
                Envelope(PROFILE_PULL, "r0/goa0", sid, t),
                lambda s=sid: ("profile", s))
            log.append(("pull", sid, t, profile is not None))
        channel.send(
            Envelope(GOA_HEARTBEAT, "r0/goa0", "r0/goa1", t),
            lambda at: log.append(("hb", at)))
        if i % 10 == 0:
            for sid in SERVERS:
                store.save(SoaCheckpoint(sid, t, {"t": t}))
    loads = {sid: store.load_verified(sid) for sid in SERVERS}
    return injector, channel, store, loads, log


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_counters_consistent_under_any_plan(seed):
    injector, channel, store, loads, log = drive(seed)
    counters = injector.counters

    # Conservation: every send is delivered, dropped, a failed pull, or
    # still in flight — nothing double-counted, nothing lost.
    assert channel.sent == (channel.delivered + channel.dropped
                            + channel.failed_pulls + channel.in_flight)
    assert channel.sent == TICKS * (2 * len(SERVERS) + 1)

    # Injector counters equal what the endpoints observed.
    assert counters.messages_dropped == channel.dropped
    assert counters.messages_delayed == channel.delayed \
        + channel.failed_pulls
    delivered_sends = sum(1 for e in log if e[0] in ("push", "hb"))
    successful_pulls = sum(1 for e in log if e[0] == "pull" and e[3])
    assert channel.delivered == delivered_sends + successful_pulls

    # Corruption: the store rotted exactly the saves the injector fated,
    # and detected exactly the keys whose latest save was corrupted.
    assert counters.checkpoints_corrupted == store.checkpoints_corrupted
    assert store.corruption_detected == \
        sum(1 for load in loads.values() if load.corrupted)
    for load in loads.values():
        assert load.corrupted == (load.checkpoint is None)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_same_seed_replays_bit_identical(seed):
    first = drive(seed)
    second = drive(seed)
    assert first[0].counters.as_dict() == second[0].counters.as_dict()
    for attr in ("sent", "delivered", "dropped", "delayed",
                 "failed_pulls", "in_flight"):
        assert getattr(first[1], attr) == getattr(second[1], attr)
    assert first[4] == second[4]  # the full observed event log
