"""Equivalence tests for the incremental power-accounting layer.

Every mutation path through the topology (placement, frequency steps,
utilization writes, per-core overrides, core reassignment, cap/restore
cycles) delta-updates the cached server/rack/datacenter wattage; these
tests assert the caches always agree with a from-scratch per-core
recompute, including after long randomized mutation sequences.
"""

import random

import pytest

from repro.cluster.capping import RackPowerManager
from repro.cluster.containers import Container, ContainerHost
from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine

LOW_SKU = PowerModel(plan=FrequencyPlan(base_ghz=2.0, turbo_ghz=2.8,
                                        overclock_max_ghz=3.4),
                     idle_watts=120.0, cores=32)


def assert_in_sync(dc, rel=1e-6):
    """Cached power == from-scratch recompute at every level."""
    for rack in dc.racks.values():
        for server in rack.servers:
            assert server.power_watts() == pytest.approx(
                server.recompute_power_watts(), rel=rel, abs=1e-9)
        assert rack.power_watts() == pytest.approx(
            rack.recompute_power_watts(), rel=rel, abs=1e-9)
    assert dc.total_power_watts() == pytest.approx(
        dc.recompute_total_power_watts(), rel=rel, abs=1e-9)


def build_dc(n_racks=2, servers_per_rack=3, limit=2000.0):
    dc = Datacenter("equiv")
    for r in range(n_racks):
        rack = Rack(f"r{r}", limit)
        for s in range(servers_per_rack):
            model = DEFAULT_POWER_MODEL if (r + s) % 2 == 0 else LOW_SKU
            rack.add_server(Server(f"r{r}-s{s}", model))
        dc.add_rack(rack)
    return dc


class TestDeterministicPaths:
    def test_placement_and_removal_update_caches(self):
        dc = build_dc()
        server = dc.find_server("r0-s0")
        vm = VirtualMachine(8, utilization=0.7)
        server.place_vm(vm)
        assert_in_sync(dc)
        server.remove_vm(vm)
        assert_in_sync(dc)
        assert server.power_watts() == pytest.approx(
            server.power_model.idle_watts)

    def test_frequency_and_utilization_updates(self):
        dc = build_dc()
        server = dc.find_server("r0-s0")
        vm = VirtualMachine(8, utilization=0.5)
        server.place_vm(vm)
        server.set_vm_frequency(vm, 4.0)
        assert_in_sync(dc)
        vm.utilization = 0.9
        assert_in_sync(dc)
        vm.set_utilization(0.0)
        assert_in_sync(dc)

    def test_core_override_and_reassignment(self):
        dc = build_dc()
        server = dc.find_server("r0-s0")
        vm = VirtualMachine(4, utilization=0.5)
        server.place_vm(vm)
        cores = server.vm_cores(vm)
        cores[0].utilization_override = 1.0
        assert_in_sync(dc)
        cores[1].utilization_override = 0.0
        assert_in_sync(dc)
        new_cores = [c for c in server.cores if not c.allocated][-4:]
        server.reassign_vm_cores(vm, new_cores)
        assert_in_sync(dc)

    def test_background_watts_delta(self):
        dc = build_dc()
        server = dc.find_server("r1-s1")
        server.background_watts = 25.0
        assert_in_sync(dc)
        server.background_watts = 5.0
        assert_in_sync(dc)

    def test_container_host_operations(self):
        dc = build_dc()
        server = dc.find_server("r0-s0")
        vm = VirtualMachine(8, utilization=0.6)
        server.place_vm(vm)
        host = ContainerHost(vm, server)
        host.add_container(Container("web", 4, utilization=0.8))
        assert_in_sync(dc)
        host.boost_container("web", 4.0)
        assert_in_sync(dc)
        host.set_container_utilization("web", 0.3)
        assert_in_sync(dc)
        host.unboost_container("web")
        assert_in_sync(dc)
        host.remove_container("web")
        assert_in_sync(dc)

    def test_cap_and_restore_cycle(self):
        dc = Datacenter("cap")
        rack = Rack("r0", 900.0)
        for s in range(2):
            rack.add_server(Server(f"s{s}", DEFAULT_POWER_MODEL))
        dc.add_rack(rack)
        vms = []
        for server in rack.servers:
            vm = VirtualMachine(16, utilization=1.0)
            server.place_vm(vm)
            server.set_vm_frequency(vm, 4.0)
            vms.append(vm)
        manager = RackPowerManager(rack)
        manager.sample(now=1.0)  # fires a cap event and throttles
        assert_in_sync(dc)
        for vm in vms:
            vm.utilization = 0.05
        assert_in_sync(dc)
        manager.sample(now=2.0)  # restores
        assert_in_sync(dc)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_mutation_sequence_stays_in_sync(seed):
    """Arbitrary interleavings of every mutation kind never desync the
    cached power from a from-scratch recompute."""
    rng = random.Random(seed)
    dc = build_dc(n_racks=2, servers_per_rack=3, limit=1200.0)
    servers = [s for rack in dc.racks.values() for s in rack.servers]
    managers = {rack.rack_id: RackPowerManager(rack)
                for rack in dc.racks.values()}
    placed: list[VirtualMachine] = []

    def op_place():
        server = rng.choice(servers)
        n = rng.randint(1, 8)
        if server.free_cores < n:
            return
        vm = VirtualMachine(n, utilization=rng.random(),
                            priority=rng.randint(0, 10))
        server.place_vm(vm)
        placed.append(vm)

    def op_remove():
        if not placed:
            return
        vm = placed.pop(rng.randrange(len(placed)))
        vm.server.remove_vm(vm)

    def op_set_frequency():
        if not placed:
            return
        vm = rng.choice(placed)
        plan = vm.server.plan
        freq = rng.uniform(plan.base_ghz - 0.2, plan.overclock_max_ghz + 0.2)
        vm.server.set_vm_frequency(vm, freq)

    def op_set_utilization():
        if not placed:
            return
        rng.choice(placed).utilization = rng.random()

    def op_core_override():
        if not placed:
            return
        vm = rng.choice(placed)
        core = rng.choice(vm.server.vm_cores(vm))
        core.utilization_override = (None if rng.random() < 0.3
                                     else rng.random())

    def op_reassign():
        if not placed:
            return
        vm = rng.choice(placed)
        server = vm.server
        pool = [c for c in server.cores
                if not c.allocated or c.vm_id == vm.vm_id]
        if len(pool) < vm.n_cores:
            return
        server.reassign_vm_cores(vm, rng.sample(pool, vm.n_cores))

    def op_background():
        rng.choice(servers).background_watts = rng.uniform(0.0, 40.0)

    def op_sample():
        for manager in managers.values():
            manager.sample(now=rng.random() * 1e4)

    ops = [op_place, op_place, op_remove, op_set_frequency, op_set_frequency,
           op_set_utilization, op_set_utilization, op_core_override,
           op_reassign, op_background, op_sample]
    for _ in range(400):
        rng.choice(ops)()
        assert_in_sync(dc)
