"""Tests for the rack power-capping subsystem."""

import pytest

from repro.cluster.capping import (
    FairShareThrottler,
    PrioritizedThrottler,
    RackPowerManager,
)
from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel
from repro.cluster.topology import Rack, Server, VirtualMachine

# A second SKU with lower operating points than the default
# (base 2.45 / turbo 3.3 / max 4.0) to build heterogeneous racks.
LOW_SKU = PowerModel(plan=FrequencyPlan(base_ghz=2.0, turbo_ghz=2.8,
                                        overclock_max_ghz=3.4),
                     cores=32)


def build_rack(limit, n_servers=2, cores=8, util=1.0, priorities=None):
    """Rack of busy servers, one VM each."""
    rack = Rack("r", limit)
    vms = []
    for i in range(n_servers):
        server = Server(f"s{i}", DEFAULT_POWER_MODEL)
        prio = priorities[i] if priorities else 0
        vm = VirtualMachine(cores, utilization=util, priority=prio,
                            name=f"vm{i}")
        server.place_vm(vm)
        rack.add_server(server)
        vms.append(vm)
    return rack, vms


class TestWarnings:
    def test_warning_at_threshold(self):
        rack, _ = build_rack(limit=400.0, n_servers=2, cores=8)
        # Two servers at ~182W each => ~364W >= 0.9*400.
        manager = RackPowerManager(rack, warning_fraction=0.9)
        received = []
        manager.on_warning(received.append)
        manager.sample(now=1.0)
        assert len(received) == 1
        assert received[0].rack_id == "r"
        assert received[0].power_watts >= 0.9 * 400.0

    def test_no_warning_below_threshold(self):
        rack, _ = build_rack(limit=2000.0)
        manager = RackPowerManager(rack)
        received = []
        manager.on_warning(received.append)
        manager.sample(now=1.0)
        assert received == []

    def test_invalid_warning_fraction(self):
        rack, _ = build_rack(limit=1000.0)
        with pytest.raises(ValueError):
            RackPowerManager(rack, warning_fraction=0.0)
        with pytest.raises(ValueError):
            RackPowerManager(rack, warning_fraction=1.5)

    def test_invalid_restore_fraction(self):
        rack, _ = build_rack(limit=1000.0)
        with pytest.raises(ValueError):
            RackPowerManager(rack, warning_fraction=0.9,
                             restore_fraction=0.95)


class TestCapping:
    def test_cap_event_fires_and_throttles(self):
        rack, vms = build_rack(limit=350.0, n_servers=2, cores=8)
        manager = RackPowerManager(rack)
        event = manager.sample(now=5.0)
        assert event is not None
        assert event.power_watts > 350.0
        assert rack.power_watts() <= 350.0
        assert event.throttled_vms > 0

    def test_cap_subscribers_notified(self):
        rack, _ = build_rack(limit=350.0)
        manager = RackPowerManager(rack)
        received = []
        manager.on_cap(received.append)
        manager.sample(now=1.0)
        assert len(received) == 1

    def test_no_cap_when_under_limit(self):
        rack, _ = build_rack(limit=5000.0)
        manager = RackPowerManager(rack)
        assert manager.sample(now=1.0) is None
        assert manager.cap_events == []

    def test_overclocked_vms_reverted_first(self):
        rack, vms = build_rack(limit=420.0, n_servers=2, cores=8)
        server = rack.servers[0]
        server.set_vm_frequency(vms[0], 4.0)
        assert rack.power_watts() > 420.0
        PrioritizedThrottler().throttle(rack)
        # The boost is revoked...
        assert vms[0].freq_ghz <= server.plan.turbo_ghz + 1e-9

    def test_low_priority_throttled_before_high(self):
        rack, vms = build_rack(limit=330.0, n_servers=2, cores=8,
                               priorities=[1, 10])
        PrioritizedThrottler().throttle(rack, target_watts=330.0)
        # vm0 (low priority) must be hit at least as hard as vm1.
        assert vms[0].freq_ghz <= vms[1].freq_ghz + 1e-9

    def test_throttle_on_empty_rack(self):
        rack = Rack("empty", 100.0)
        rack.add_server(Server("s", DEFAULT_POWER_MODEL))
        count, penalty = PrioritizedThrottler().throttle(rack)
        assert count == 0 and penalty == 0.0

    def test_throttle_reaches_target_or_floor(self):
        rack, _ = build_rack(limit=310.0, n_servers=2, cores=8)
        PrioritizedThrottler().throttle(rack, target_watts=310.0)
        plan = rack.servers[0].plan
        at_floor = all(vm.freq_ghz <= plan.base_ghz + 1e-9
                       for s in rack.servers for vm in s.vms.values())
        assert rack.power_watts() <= 310.0 or at_floor


class TestFairShareThrottler:
    def test_clamps_to_even_share(self):
        # Server 0 hosts a big busy VM, server 1 a small one.
        rack = Rack("r", 400.0)
        s0, s1 = (Server(f"s{i}", DEFAULT_POWER_MODEL) for i in range(2))
        hungry = VirtualMachine(24, utilization=1.0, name="hungry")
        modest = VirtualMachine(2, utilization=0.2, name="modest")
        s0.place_vm(hungry)
        s1.place_vm(modest)
        rack.add_server(s0)
        rack.add_server(s1)
        before_modest = modest.freq_ghz
        FairShareThrottler().throttle(rack, target_watts=360.0)
        # The power-hungry server is throttled...
        assert hungry.freq_ghz < s0.plan.turbo_ghz
        # ...while the modest one (under its share) is untouched.
        assert modest.freq_ghz == before_modest

    def test_fair_share_penalizes_more_than_prioritized(self):
        """§III Q4: even splits disproportionately hurt hungry servers."""

        def setup():
            rack = Rack("r", 500.0)
            s0, s1 = (Server(f"s{i}", DEFAULT_POWER_MODEL)
                      for i in range(2))
            # The hungry VM is high-priority but non-overclocked.
            hungry = VirtualMachine(24, utilization=1.0, priority=10)
            boosted = VirtualMachine(8, utilization=1.0, priority=0)
            s0.place_vm(hungry)
            s1.place_vm(boosted)
            s1.set_vm_frequency(boosted, 4.0)
            rack.add_server(s0)
            rack.add_server(s1)
            return rack, hungry

        rack, hungry = setup()
        PrioritizedThrottler().throttle(rack, target_watts=470.0)
        prioritized_freq = hungry.freq_ghz

        rack, hungry = setup()
        FairShareThrottler().throttle(rack, target_watts=470.0)
        fair_freq = hungry.freq_ghz

        assert fair_freq < prioritized_freq


class TestHeterogeneousRack:
    """Regression tests: throttlers must use each VM's own server plan,
    not ``rack.servers[0].plan`` (the §IV-B heterogeneous budgeting case)."""

    def build_two_sku_rack(self, limit, hi_util=1.0, lo_util=1.0):
        rack = Rack("het", limit)
        s_hi = Server("hi", DEFAULT_POWER_MODEL)
        s_lo = Server("lo", LOW_SKU)
        vm_hi = VirtualMachine(8, utilization=hi_util, name="vm-hi")
        vm_lo = VirtualMachine(8, utilization=lo_util, name="vm-lo")
        s_hi.place_vm(vm_hi)
        s_lo.place_vm(vm_lo)
        rack.add_server(s_hi)
        rack.add_server(s_lo)
        return rack, s_hi, s_lo, vm_hi, vm_lo

    def test_boost_revoked_to_each_servers_own_turbo(self):
        rack, s_hi, s_lo, vm_hi, vm_lo = self.build_two_sku_rack(limit=1e6)
        s_hi.set_vm_frequency(vm_hi, 4.0)
        s_lo.set_vm_frequency(vm_lo, 3.4)
        # Generous target: only phase 0 (boost revocation) runs.
        PrioritizedThrottler().throttle(rack, target_watts=1e6)
        assert vm_hi.freq_ghz == pytest.approx(s_hi.plan.turbo_ghz)
        # With servers[0]'s plan the low SKU's VM was "reverted" to
        # 3.3 GHz — still overclocked for its own 2.8 GHz turbo.
        assert vm_lo.freq_ghz == pytest.approx(s_lo.plan.turbo_ghz)

    def test_throttle_floor_is_each_servers_own_base(self):
        rack, s_hi, s_lo, vm_hi, vm_lo = self.build_two_sku_rack(limit=100.0)
        # Unreachable target: every VM is driven all the way to its floor.
        PrioritizedThrottler().throttle(rack, target_watts=1.0)
        assert vm_hi.freq_ghz == pytest.approx(s_hi.plan.base_ghz)
        # The low SKU's base is 2.0 GHz, below servers[0]'s 2.45 GHz.
        assert vm_lo.freq_ghz == pytest.approx(s_lo.plan.base_ghz)

    def test_fair_share_steps_to_each_servers_own_base(self):
        rack = Rack("het", 500.0)
        s_hi = Server("hi", DEFAULT_POWER_MODEL)
        s_lo = Server("lo", LOW_SKU)
        vm_hi = VirtualMachine(8, utilization=0.05, name="vm-hi")
        vm_lo = VirtualMachine(32, utilization=1.0, name="vm-lo")
        s_hi.place_vm(vm_hi)
        s_lo.place_vm(vm_lo)
        rack.add_server(s_hi)
        rack.add_server(s_lo)
        # A 200 W share sits below the low server's power at 2.45 GHz
        # (servers[0]'s base) but above its power at its own 2.0 GHz
        # base, so the throttler must step past 2.45 GHz to satisfy it.
        FairShareThrottler().throttle(rack, target_watts=400.0)
        assert vm_lo.freq_ghz == pytest.approx(s_lo.plan.base_ghz)
        # The near-idle high-SKU server is under its share: untouched.
        assert vm_hi.freq_ghz == pytest.approx(s_hi.plan.turbo_ghz)


class TestRestore:
    def test_graceful_restore_steps_back_up(self):
        rack, vms = build_rack(limit=350.0, n_servers=2, cores=8)
        manager = RackPowerManager(rack, restore_fraction=0.9)
        manager.sample(now=1.0)  # caps + throttles
        throttled = vms[0].freq_ghz
        assert throttled < rack.servers[0].plan.turbo_ghz
        # Load drops: utilization collapses, power recedes, restore kicks in.
        for vm in vms:
            vm.set_utilization(0.05)
        manager.sample(now=2.0)
        assert vms[0].freq_ghz > throttled

    def test_non_graceful_restore_snaps_to_turbo(self):
        rack, vms = build_rack(limit=350.0, n_servers=2, cores=8)
        manager = RackPowerManager(rack, graceful_restore=False)
        manager.sample(now=1.0)
        for vm in vms:
            vm.set_utilization(0.05)
        manager.sample(now=2.0)
        plan = rack.servers[0].plan
        assert all(vm.freq_ghz == pytest.approx(plan.turbo_ghz)
                   for vm in vms)

    def test_restore_respects_threshold(self):
        rack, vms = build_rack(limit=350.0, n_servers=2, cores=8)
        manager = RackPowerManager(rack, restore_fraction=0.9)
        manager.sample(now=1.0)
        # Power still high: no restore happens.
        frozen = [vm.freq_ghz for vm in vms]
        manager.sample(now=2.0)
        assert rack.power_watts() <= 350.0
        assert [vm.freq_ghz for vm in vms] <= frozen
