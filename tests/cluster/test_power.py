"""Tests for the server power model, including the paper's anchors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import DEFAULT_POWER_MODEL, PowerModel


class TestCalibrationAnchors:
    """The §V-B 'we validate the model' step, as unit tests."""

    def test_idle_power(self):
        model = DEFAULT_POWER_MODEL
        assert model.server_watts([]) == pytest.approx(model.idle_watts)
        assert 100 <= model.idle_watts <= 200

    def test_full_turbo_power_in_server_range(self):
        """A 64-core cloud server under full load draws ~350-450 W."""
        watts = DEFAULT_POWER_MODEL.turbo_server_watts()
        assert 350 <= watts <= 450

    def test_overclock_delta_near_ten_watts_per_core(self):
        """§IV-C worked example: 5 cores → extra 50 W (≈10 W/core)."""
        delta = DEFAULT_POWER_MODEL.overclock_core_delta(1.0)
        assert 8.0 <= delta <= 12.0


class TestPowerModel:
    def test_power_monotone_in_utilization(self):
        model = DEFAULT_POWER_MODEL
        lo = model.uniform_server_watts(0.2, 3.3)
        hi = model.uniform_server_watts(0.8, 3.3)
        assert hi > lo

    def test_power_monotone_in_frequency(self):
        model = DEFAULT_POWER_MODEL
        assert model.uniform_server_watts(0.5, 4.0) > \
            model.uniform_server_watts(0.5, 3.3)

    def test_idle_cores_add_nothing(self):
        model = DEFAULT_POWER_MODEL
        assert model.core_dynamic_watts(0.0, 3.3) == 0.0

    def test_server_watts_counts_each_core(self):
        model = DEFAULT_POWER_MODEL
        one = model.server_watts([(0.5, 3.3)])
        two = model.server_watts([(0.5, 3.3), (0.5, 3.3)])
        assert two - one == pytest.approx(one - model.idle_watts)

    def test_too_many_cores_rejected(self):
        model = PowerModel(cores=2)
        with pytest.raises(ValueError, match="core loads"):
            model.server_watts([(0.5, 3.3)] * 3)

    def test_utilization_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_POWER_MODEL.core_dynamic_watts(1.5, 3.3)
        with pytest.raises(ValueError):
            DEFAULT_POWER_MODEL.core_dynamic_watts(-0.1, 3.3)

    def test_active_cores_bounds(self):
        model = DEFAULT_POWER_MODEL
        with pytest.raises(ValueError):
            model.uniform_server_watts(0.5, 3.3, active_cores=65)
        with pytest.raises(ValueError):
            model.uniform_server_watts(0.5, 3.3, active_cores=-1)

    def test_overclock_delta_below_turbo_rejected(self):
        with pytest.raises(ValueError, match="below turbo"):
            DEFAULT_POWER_MODEL.overclock_core_delta(1.0, 3.0)

    def test_overclock_delta_scales_with_utilization(self):
        model = DEFAULT_POWER_MODEL
        assert model.overclock_core_delta(0.5) == pytest.approx(
            0.5 * model.overclock_core_delta(1.0))

    def test_max_server_watts_is_upper_bound(self):
        model = DEFAULT_POWER_MODEL
        assert model.max_server_watts() >= model.turbo_server_watts()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=-1.0)
        with pytest.raises(ValueError):
            PowerModel(dynamic_coefficient=0.0)
        with pytest.raises(ValueError):
            PowerModel(cores=0)

    def test_invert_utilization_roundtrip(self):
        model = DEFAULT_POWER_MODEL
        for util in (0.0, 0.3, 0.75, 1.0):
            watts = model.uniform_server_watts(util, 3.3)
            assert model.invert_utilization(watts, 3.3) == pytest.approx(
                util, abs=1e-9)

    def test_invert_utilization_clamps(self):
        model = DEFAULT_POWER_MODEL
        assert model.invert_utilization(0.0, 3.3) == 0.0
        assert model.invert_utilization(1e6, 3.3) == 1.0

    @given(st.floats(0.0, 1.0), st.floats(2.45, 4.0))
    def test_power_bounded(self, util, freq):
        model = DEFAULT_POWER_MODEL
        watts = model.uniform_server_watts(util, freq)
        assert model.idle_watts <= watts <= model.max_server_watts() + 1e-9

    @given(st.lists(st.tuples(st.floats(0.0, 1.0), st.floats(2.45, 4.0)),
                    max_size=64))
    def test_superposition(self, loads):
        """Total dynamic power is the sum of per-core dynamic power."""
        model = DEFAULT_POWER_MODEL
        total = model.server_watts(loads)
        expected = model.idle_watts + sum(
            model.core_dynamic_watts(u, f) for u, f in loads)
        assert total == pytest.approx(expected)
