"""Tests for the DVFS / voltage model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN, FrequencyPlan


class TestFrequencyPlan:
    def test_default_matches_paper_platform(self):
        """Paper §V-A: max turbo 3.3 GHz, overclock 4.0 GHz, 100 MHz steps."""
        plan = DEFAULT_FREQUENCY_PLAN
        assert plan.turbo_ghz == 3.3
        assert plan.overclock_max_ghz == 4.0
        assert plan.step_ghz == pytest.approx(0.1)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            FrequencyPlan(base_ghz=3.0, turbo_ghz=2.0)
        with pytest.raises(ValueError):
            FrequencyPlan(turbo_ghz=3.3, overclock_max_ghz=3.0)

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            FrequencyPlan(step_ghz=0.0)

    def test_voltage_at_turbo(self):
        plan = FrequencyPlan()
        assert plan.voltage(plan.turbo_ghz) == pytest.approx(
            plan.turbo_volts)

    def test_voltage_rises_steeply_above_turbo(self):
        plan = FrequencyPlan()
        v_turbo = plan.voltage(plan.turbo_ghz)
        v_oc = plan.voltage(plan.overclock_max_ghz)
        # Overclocking 0.7 GHz past turbo costs far more voltage than the
        # same step below turbo saves.
        below = v_turbo - plan.voltage(plan.turbo_ghz - 0.7)
        assert v_oc - v_turbo > 2 * below

    def test_voltage_floor(self):
        plan = FrequencyPlan()
        assert plan.voltage(0.1) == plan.min_volts

    def test_voltage_invalid_frequency(self):
        with pytest.raises(ValueError):
            FrequencyPlan().voltage(0.0)
        with pytest.raises(ValueError):
            FrequencyPlan().voltage(-1.0)

    def test_is_overclocked(self):
        plan = FrequencyPlan()
        assert not plan.is_overclocked(plan.turbo_ghz)
        assert not plan.is_overclocked(plan.base_ghz)
        assert plan.is_overclocked(plan.turbo_ghz + plan.step_ghz)

    def test_clamp(self):
        plan = FrequencyPlan()
        assert plan.clamp(10.0) == plan.overclock_max_ghz
        assert plan.clamp(0.5) == plan.base_ghz
        assert plan.clamp(3.5) == 3.5

    def test_step_up_down_inverse_within_range(self):
        plan = FrequencyPlan()
        f = 3.5
        assert plan.step_down(plan.step_up(f)) == pytest.approx(f)

    def test_step_up_saturates_at_ceiling(self):
        plan = FrequencyPlan()
        assert plan.step_up(plan.overclock_max_ghz) == \
            plan.overclock_max_ghz

    def test_step_down_saturates_at_base(self):
        plan = FrequencyPlan()
        assert plan.step_down(plan.base_ghz) == plan.base_ghz

    def test_overclock_steps_cover_range(self):
        plan = FrequencyPlan()
        steps = plan.overclock_steps()
        assert steps[0] == pytest.approx(plan.turbo_ghz + plan.step_ghz)
        assert steps[-1] == pytest.approx(plan.overclock_max_ghz)
        assert len(steps) == 7  # 3.4 .. 4.0

    @given(st.floats(0.5, 5.0))
    def test_voltage_monotone_in_frequency(self, freq):
        plan = FrequencyPlan()
        assert plan.voltage(freq + 0.1) >= plan.voltage(freq) - 1e-12

    @given(st.floats(0.1, 6.0))
    def test_clamp_idempotent(self, freq):
        plan = FrequencyPlan()
        assert plan.clamp(plan.clamp(freq)) == plan.clamp(freq)
