"""Tests for the GPU component profile (§VI generality claim)."""

import pytest

from repro.cluster.gpu import GPU_FREQUENCY_PLAN, GPU_POWER_MODEL
from repro.cluster.topology import Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.soa import ServerOverclockingAgent
from repro.core.types import OverclockRequest, RequestKind


class TestGpuProfile:
    def test_operating_points(self):
        plan = GPU_FREQUENCY_PLAN
        assert plan.base_ghz < plan.turbo_ghz < plan.overclock_max_ghz
        assert plan.is_overclocked(1.5)
        assert not plan.is_overclocked(1.41)

    def test_power_calibration(self):
        model = GPU_POWER_MODEL
        full_boost = model.turbo_server_watts()
        assert 300.0 <= full_boost <= 450.0
        assert model.idle_watts == pytest.approx(80.0)

    def test_overclocking_costs_superlinear_power(self):
        model = GPU_POWER_MODEL
        boost = model.turbo_server_watts()
        overclocked = model.uniform_server_watts(
            1.0, GPU_FREQUENCY_PLAN.overclock_max_ghz)
        # +13 % clock costs far more than +13 % power.
        assert (overclocked - model.idle_watts) > \
            1.3 * (boost - model.idle_watts)


class TestSoaOnGpus:
    def test_identical_machinery_manages_gpu_boost(self):
        """The sOA needs no changes to manage a 'server' of GPUs: a
        device enclosure with per-SM accounting."""
        rack = Rack("gpu-rack", 3000.0)
        device = Server("gpu-0", GPU_POWER_MODEL)
        rack.add_server(device)
        job = VirtualMachine(54, utilization=0.9, name="training-job")
        device.place_vm(job)
        soa = ServerOverclockingAgent(device, SmartOClockConfig())
        request = OverclockRequest(
            vm_id=job.vm_id, kind=RequestKind.METRICS,
            target_freq_ghz=GPU_FREQUENCY_PLAN.overclock_max_ghz,
            n_cores=job.n_cores, time=0.0)
        decision = soa.handle_request(request, now=0.0)
        assert decision.granted
        soa.control_tick(10.0, dt=10.0)
        assert job.freq_ghz == pytest.approx(
            GPU_FREQUENCY_PLAN.overclock_max_ghz)
        # Lifetime accounting ticks on SMs exactly like CPU cores.
        soa.control_tick(20.0, dt=10.0)
        device.advance(10.0)
        sm = device.vm_cores(job)[0]
        assert sm.overclock_seconds > 0
        assert soa.wear_counters[sm.index].wear_seconds > 0
