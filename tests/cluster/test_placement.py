"""Tests for VM placement policies."""

import numpy as np
import pytest

from repro.cluster.placement import (
    PlacementError,
    PowerAwarePlacer,
    ResourceCentricPlacer,
)
from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Server, VirtualMachine


def servers(n=4):
    return [Server(f"s{i}", DEFAULT_POWER_MODEL) for i in range(n)]


class TestResourceCentric:
    def test_first_fit(self):
        pool = servers(3)
        placer = ResourceCentricPlacer()
        target = placer.place(VirtualMachine(8), pool)
        assert target is pool[0]

    def test_skips_full_servers(self):
        pool = servers(2)
        pool[0].place_vm(VirtualMachine(60))
        placer = ResourceCentricPlacer()
        target = placer.place(VirtualMachine(8), pool)
        assert target is pool[1]

    def test_no_capacity_raises(self):
        pool = servers(1)
        pool[0].place_vm(VirtualMachine(60))
        with pytest.raises(PlacementError):
            ResourceCentricPlacer().place(VirtualMachine(8), pool)


class TestPowerAware:
    def test_prefers_coolest_server(self):
        pool = servers(3)
        pool[0].place_vm(VirtualMachine(32, utilization=1.0))
        pool[1].place_vm(VirtualMachine(16, utilization=1.0))
        target = PowerAwarePlacer().place(VirtualMachine(8), pool)
        assert target is pool[2]

    def test_balances_sequence_of_placements(self):
        """Placing many identical VMs spreads them evenly."""
        pool = servers(4)
        placer = PowerAwarePlacer()
        for _ in range(8):
            vm = VirtualMachine(8, utilization=0.8)
            placer.place(vm, pool)
        counts = [len(s.vms) for s in pool]
        assert counts == [2, 2, 2, 2]

    def test_reduces_imbalance_vs_first_fit(self):
        """The future-work claim: power-aware placement flattens the
        per-server power distribution (more uniform overclock headroom)."""
        rng = np.random.default_rng(5)
        sizes = rng.integers(4, 17, size=12)
        utils = rng.uniform(0.3, 1.0, size=12)

        def run(placer):
            pool = servers(4)
            for cores, util in zip(sizes, utils):
                placer.place(VirtualMachine(int(cores),
                                            utilization=float(util)), pool)
            return PowerAwarePlacer().imbalance(pool)

        first_fit = run(ResourceCentricPlacer())
        power_aware = run(PowerAwarePlacer())
        assert power_aware < first_fit

    def test_custom_predictor(self):
        pool = servers(2)
        # A predictor that claims s0 is already at its peak.
        placer = PowerAwarePlacer(
            predictor=lambda s: 400.0 if s.server_id == "s0" else 150.0)
        target = placer.place(VirtualMachine(4), pool)
        assert target is pool[1]

    def test_no_capacity_raises(self):
        pool = servers(1)
        pool[0].place_vm(VirtualMachine(60))
        with pytest.raises(PlacementError):
            PowerAwarePlacer().place(VirtualMachine(8), pool)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerAwarePlacer(peak_utilization=0.0)
        with pytest.raises(ValueError):
            PowerAwarePlacer().imbalance([])
