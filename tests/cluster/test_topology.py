"""Tests for the datacenter topology (servers, VMs, racks)."""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import (
    Datacenter,
    Rack,
    Server,
    VirtualMachine,
)


def make_server(sid="s0"):
    return Server(sid, DEFAULT_POWER_MODEL)


class TestVirtualMachine:
    def test_requires_at_least_one_core(self):
        with pytest.raises(ValueError):
            VirtualMachine(0)

    def test_utilization_validated(self):
        with pytest.raises(ValueError):
            VirtualMachine(2, utilization=1.5)
        vm = VirtualMachine(2)
        with pytest.raises(ValueError):
            vm.set_utilization(-0.1)

    def test_default_name_unique(self):
        a, b = VirtualMachine(1), VirtualMachine(1)
        assert a.name != b.name

    def test_unplaced_initially(self):
        vm = VirtualMachine(2)
        assert not vm.placed
        assert vm.freq_ghz is None


class TestPlacement:
    def test_place_assigns_cores_at_turbo(self):
        server = make_server()
        vm = VirtualMachine(8, utilization=0.5)
        server.place_vm(vm)
        assert vm.placed
        assert vm.freq_ghz == server.plan.turbo_ghz
        assert len(server.vm_cores(vm)) == 8
        assert server.free_cores == 64 - 8

    def test_double_placement_rejected(self):
        server = make_server()
        vm = VirtualMachine(4)
        server.place_vm(vm)
        with pytest.raises(ValueError, match="already placed"):
            make_server("other").place_vm(vm)

    def test_insufficient_cores_rejected(self):
        server = make_server()
        server.place_vm(VirtualMachine(60))
        with pytest.raises(ValueError, match="free"):
            server.place_vm(VirtualMachine(8))

    def test_remove_frees_cores(self):
        server = make_server()
        vm = VirtualMachine(16)
        server.place_vm(vm)
        server.remove_vm(vm)
        assert server.free_cores == 64
        assert not vm.placed

    def test_remove_unknown_vm_rejected(self):
        server = make_server()
        with pytest.raises(KeyError):
            server.remove_vm(VirtualMachine(2))

    def test_cores_are_exclusive(self):
        server = make_server()
        a, b = VirtualMachine(10), VirtualMachine(10)
        server.place_vm(a)
        server.place_vm(b)
        cores_a = {c.index for c in server.vm_cores(a)}
        cores_b = {c.index for c in server.vm_cores(b)}
        assert not cores_a & cores_b


class TestFrequencyControl:
    def test_set_vm_frequency_applies_to_cores(self):
        server = make_server()
        vm = VirtualMachine(4)
        server.place_vm(vm)
        applied = server.set_vm_frequency(vm, 3.8)
        assert applied == pytest.approx(3.8)
        assert all(c.freq_ghz == pytest.approx(3.8)
                   for c in server.vm_cores(vm))

    def test_frequency_clamped_to_plan(self):
        server = make_server()
        vm = VirtualMachine(4)
        server.place_vm(vm)
        assert server.set_vm_frequency(vm, 10.0) == \
            server.plan.overclock_max_ghz

    def test_set_frequency_unknown_vm(self):
        server = make_server()
        with pytest.raises(KeyError):
            server.set_vm_frequency(VirtualMachine(2), 3.5)

    def test_overclocked_vms_listing(self):
        server = make_server()
        a, b = VirtualMachine(4), VirtualMachine(4)
        server.place_vm(a)
        server.place_vm(b)
        server.set_vm_frequency(a, 4.0)
        assert server.overclocked_vms() == [a]
        assert server.overclocked_core_count() == 4


class TestCoreReassignment:
    def test_reassign_moves_vm(self):
        server = make_server()
        vm = VirtualMachine(4)
        server.place_vm(vm)
        server.set_vm_frequency(vm, 3.9)
        new_cores = [c for c in server.cores if not c.allocated][:4]
        server.reassign_vm_cores(vm, new_cores)
        assert server.vm_cores(vm) == new_cores
        # Frequency preserved on the new cores.
        assert all(c.freq_ghz == pytest.approx(3.9) for c in new_cores)

    def test_reassign_wrong_count_rejected(self):
        server = make_server()
        vm = VirtualMachine(4)
        server.place_vm(vm)
        with pytest.raises(ValueError, match="exactly"):
            server.reassign_vm_cores(vm, server.cores[:3])

    def test_reassign_onto_taken_cores_rejected(self):
        server = make_server()
        a, b = VirtualMachine(4), VirtualMachine(4)
        server.place_vm(a)
        server.place_vm(b)
        with pytest.raises(ValueError, match="allocated"):
            server.reassign_vm_cores(a, server.vm_cores(b))


class TestAccounting:
    def test_power_reflects_vm_state(self):
        server = make_server()
        vm = VirtualMachine(8, utilization=1.0)
        server.place_vm(vm)
        turbo_power = server.power_watts()
        server.set_vm_frequency(vm, 4.0)
        assert server.power_watts() > turbo_power

    def test_advance_accrues_busy_and_overclock_time(self):
        server = make_server()
        vm = VirtualMachine(2, utilization=0.5)
        server.place_vm(vm)
        server.set_vm_frequency(vm, 4.0)
        server.advance(10.0)
        core = server.vm_cores(vm)[0]
        assert core.busy_seconds == pytest.approx(5.0)
        assert core.overclock_seconds == pytest.approx(10.0)

    def test_advance_no_overclock_time_at_turbo(self):
        server = make_server()
        vm = VirtualMachine(2, utilization=0.5)
        server.place_vm(vm)
        server.advance(10.0)
        assert server.vm_cores(vm)[0].overclock_seconds == 0.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            make_server().advance(-1.0)


class TestRackAndDatacenter:
    def test_rack_power_sums_servers(self):
        rack = Rack("r", 5000.0)
        s1, s2 = make_server("a"), make_server("b")
        rack.add_server(s1)
        rack.add_server(s2)
        assert rack.power_watts() == pytest.approx(
            s1.power_watts() + s2.power_watts())

    def test_server_belongs_to_one_rack(self):
        rack1, rack2 = Rack("r1", 1000.0), Rack("r2", 1000.0)
        server = make_server()
        rack1.add_server(server)
        with pytest.raises(ValueError, match="already belongs"):
            rack2.add_server(server)

    def test_fair_share(self):
        rack = Rack("r", 1000.0)
        for i in range(4):
            rack.add_server(make_server(f"s{i}"))
        assert rack.fair_share_watts() == 250.0

    def test_fair_share_empty_rack_rejected(self):
        with pytest.raises(ValueError):
            Rack("r", 1000.0).fair_share_watts()

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            Rack("r", 0.0)

    def test_datacenter_lookup(self):
        dc = Datacenter()
        rack = Rack("r", 1000.0)
        server = make_server("findme")
        rack.add_server(server)
        dc.add_rack(rack)
        assert dc.find_server("findme") is server
        with pytest.raises(KeyError):
            dc.find_server("nope")

    def test_duplicate_rack_rejected(self):
        dc = Datacenter()
        dc.add_rack(Rack("r", 1.0))
        with pytest.raises(ValueError, match="duplicate"):
            dc.add_rack(Rack("r", 1.0))

    def test_total_power(self):
        dc = Datacenter()
        rack = Rack("r", 1000.0)
        rack.add_server(make_server())
        dc.add_rack(rack)
        assert dc.total_power_watts() == pytest.approx(rack.power_watts())


class TestOfflineServer:
    def build_loaded_rack(self):
        rack = Rack("r", 5000.0)
        servers = [make_server(f"s{i}") for i in range(3)]
        for i, server in enumerate(servers):
            rack.add_server(server)
            vm = VirtualMachine(4, utilization=0.5 + 0.1 * i)
            server.place_vm(vm)
            server.set_vm_frequency(vm, 4.0)
        return rack, servers

    def test_offline_server_draws_no_power(self):
        rack, servers = self.build_loaded_rack()
        servers[0].offline = True
        assert servers[0].power_watts() == 0.0
        assert servers[0].recompute_power_watts() == 0.0

    def test_rack_aggregate_tracks_offline_exactly(self):
        rack, servers = self.build_loaded_rack()
        before = rack.power_watts()
        contribution = servers[0].power_watts()
        servers[0].offline = True
        assert rack.power_watts() == pytest.approx(before - contribution)
        # Incremental cache and full recompute agree in both states.
        assert rack.power_watts() == pytest.approx(
            rack.recompute_power_watts())
        servers[0].offline = False
        assert rack.power_watts() == pytest.approx(before)
        assert rack.power_watts() == pytest.approx(
            rack.recompute_power_watts())

    def test_offline_is_idempotent(self):
        rack, servers = self.build_loaded_rack()
        before = rack.power_watts()
        servers[0].offline = True
        servers[0].offline = True  # no double-subtraction
        servers[0].offline = False
        assert rack.power_watts() == pytest.approx(before)

    def test_advance_is_noop_while_offline(self):
        rack, servers = self.build_loaded_rack()
        server = servers[0]
        core = server.vm_cores(next(iter(server.vms.values())))[0]
        server.offline = True
        server.advance(100.0)
        assert core.busy_seconds == 0.0
        assert core.overclock_seconds == 0.0
        server.offline = False
        server.advance(10.0)
        assert core.busy_seconds == pytest.approx(5.0)
