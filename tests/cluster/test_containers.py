"""Tests for container-granularity overclocking (§VI extension)."""

import pytest

from repro.cluster.containers import Container, ContainerHost
from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Server, VirtualMachine

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz
MAX = DEFAULT_POWER_MODEL.plan.overclock_max_ghz


def deploy(vm_cores=16):
    server = Server("s", DEFAULT_POWER_MODEL)
    vm = VirtualMachine(vm_cores, utilization=0.0, name="guest")
    server.place_vm(vm)
    return server, vm, ContainerHost(vm, server)


class TestDeployment:
    def test_containers_pin_to_disjoint_cores(self):
        _, _, host = deploy()
        host.add_container(Container("a", 4, utilization=0.5))
        host.add_container(Container("b", 4, utilization=0.9))
        cores_a = {c.index for c in host.container_cores("a")}
        cores_b = {c.index for c in host.container_cores("b")}
        assert not cores_a & cores_b

    def test_over_capacity_rejected(self):
        _, _, host = deploy(vm_cores=4)
        host.add_container(Container("a", 3))
        with pytest.raises(ValueError, match="unpinned"):
            host.add_container(Container("b", 2))

    def test_duplicate_name_rejected(self):
        _, _, host = deploy()
        host.add_container(Container("a", 2))
        with pytest.raises(ValueError, match="already"):
            host.add_container(Container("a", 2))

    def test_unplaced_vm_rejected(self):
        server = Server("s", DEFAULT_POWER_MODEL)
        vm = VirtualMachine(4)
        with pytest.raises(ValueError, match="not placed"):
            ContainerHost(vm, server)

    def test_vm_utilization_is_core_average(self):
        _, vm, host = deploy(vm_cores=8)
        host.add_container(Container("hot", 4, utilization=1.0))
        # 4 busy cores of 8 -> 0.5 average.
        assert vm.utilization == pytest.approx(0.5)

    def test_remove_container_resets_cores(self):
        server, _, host = deploy()
        host.add_container(Container("a", 4, utilization=0.8))
        host.boost_container("a", MAX)
        host.remove_container("a")
        with pytest.raises(KeyError):
            host.container_cores("a")
        assert server.overclocked_core_count() == 0


class TestBoosting:
    def test_boost_touches_only_container_cores(self):
        server, _, host = deploy()
        host.add_container(Container("hot", 4, utilization=1.0))
        host.add_container(Container("cold", 4, utilization=0.2))
        host.boost_container("hot", MAX)
        assert all(c.freq_ghz == pytest.approx(MAX)
                   for c in host.container_cores("hot"))
        assert all(c.freq_ghz == pytest.approx(TURBO)
                   for c in host.container_cores("cold"))
        assert host.overclocked_containers() == ["hot"]

    def test_unboost(self):
        _, _, host = deploy()
        host.add_container(Container("hot", 4, utilization=1.0))
        host.boost_container("hot", MAX)
        host.unboost_container("hot")
        assert host.overclocked_containers() == []

    def test_unknown_container(self):
        _, _, host = deploy()
        with pytest.raises(KeyError):
            host.boost_container("nope", MAX)


class TestEfficiencyClaim:
    """§VI: VM-granular overclocking 'is inefficient because of the
    higher power and reliability impact' — quantify it."""

    def test_container_boost_costs_less_power(self):
        # Whole 16-core VM boosted:
        server_vm, vm, host_vm = deploy(16)
        host_vm.add_container(Container("hot", 4, utilization=1.0))
        host_vm.add_container(Container("rest", 12, utilization=0.5))
        baseline = server_vm.power_watts()
        server_vm.set_vm_frequency(vm, MAX)
        vm_granular_delta = server_vm.power_watts() - baseline

        # Only the hot container boosted:
        server_ct, _, host_ct = deploy(16)
        host_ct.add_container(Container("hot", 4, utilization=1.0))
        host_ct.add_container(Container("rest", 12, utilization=0.5))
        baseline_ct = server_ct.power_watts()
        host_ct.boost_container("hot", MAX)
        container_delta = server_ct.power_watts() - baseline_ct

        assert baseline == pytest.approx(baseline_ct)
        assert container_delta < 0.5 * vm_granular_delta

    def test_container_boost_burns_less_wear_budget(self):
        server, vm, host = deploy(16)
        host.add_container(Container("hot", 4, utilization=1.0))
        host.add_container(Container("rest", 12, utilization=0.5))
        host.boost_container("hot", MAX)
        server.advance(100.0)
        oc_seconds = sum(c.overclock_seconds for c in server.cores)
        # Only the 4 container cores accumulate overclocked time, not 16.
        assert oc_seconds == pytest.approx(4 * 100.0)
