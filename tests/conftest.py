"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import PowerModel
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig


@pytest.fixture
def plan() -> FrequencyPlan:
    return FrequencyPlan()


@pytest.fixture
def power_model(plan: FrequencyPlan) -> PowerModel:
    return PowerModel(plan=plan)


@pytest.fixture
def server(power_model: PowerModel) -> Server:
    return Server("test-server", power_model)


@pytest.fixture
def rack(power_model: PowerModel) -> Rack:
    """A 4-server rack with a limit that allows moderate overclocking."""
    rack = Rack("test-rack", power_limit_watts=1400.0)
    for i in range(4):
        rack.add_server(Server(f"srv-{i}", power_model))
    return rack


@pytest.fixture
def datacenter(rack: Rack) -> Datacenter:
    dc = Datacenter("test-dc")
    dc.add_rack(rack)
    return dc


@pytest.fixture
def config() -> SmartOClockConfig:
    return SmartOClockConfig()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_vm(n_cores: int = 4, utilization: float = 0.5,
            priority: int = 0, name: str = "") -> VirtualMachine:
    return VirtualMachine(n_cores, utilization=utilization,
                          priority=priority, name=name)


@pytest.fixture
def vm() -> VirtualMachine:
    return make_vm()
