"""Property-based invariants on the safety-critical control paths.

These are the properties that must hold for *any* workload the system
encounters, not just the scenarios the experiments exercise.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.capping import (
    FairShareThrottler,
    PrioritizedThrottler,
    RackPowerManager,
)
from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Rack, Server, VirtualMachine
from repro.core.enforcement import FeedbackLoop
from repro.reliability.wearout import EpochBudget

PLAN = DEFAULT_POWER_MODEL.plan

vm_strategy = st.tuples(
    st.integers(1, 16),                 # cores
    st.floats(0.0, 1.0),                # utilization
    st.integers(0, 10),                 # priority
    st.sampled_from([PLAN.turbo_ghz, 3.6, 4.0]),  # initial frequency
)


def build_rack(vm_specs, limit):
    rack = Rack("r", limit)
    server = Server("s", DEFAULT_POWER_MODEL)
    rack.add_server(server)
    for cores, util, prio, freq in vm_specs:
        vm = VirtualMachine(cores, utilization=util, priority=prio)
        server.place_vm(vm)
        server.set_vm_frequency(vm, freq)
    return rack, server


class TestThrottlerInvariants:
    @given(st.lists(vm_strategy, min_size=1, max_size=4),
           st.floats(200.0, 600.0))
    @settings(max_examples=60, deadline=None)
    def test_prioritized_throttle_reaches_target_or_floor(self, specs,
                                                          limit):
        rack, server = build_rack(specs, limit)
        PrioritizedThrottler().throttle(rack, target_watts=limit)
        at_floor = all(vm.freq_ghz <= PLAN.base_ghz + 1e-9
                       for vm in server.vms.values())
        assert rack.power_watts() <= limit + 1e-6 or at_floor

    @given(st.lists(vm_strategy, min_size=1, max_size=4),
           st.floats(200.0, 600.0))
    @settings(max_examples=60, deadline=None)
    def test_throttle_never_raises_frequencies(self, specs, limit):
        rack, server = build_rack(specs, limit)
        before = {vm.vm_id: vm.freq_ghz for vm in server.vms.values()}
        PrioritizedThrottler().throttle(rack, target_watts=limit)
        for vm in server.vms.values():
            assert vm.freq_ghz <= before[vm.vm_id] + 1e-9

    @given(st.lists(vm_strategy, min_size=1, max_size=4),
           st.floats(200.0, 600.0))
    @settings(max_examples=40, deadline=None)
    def test_fair_share_same_safety_guarantee(self, specs, limit):
        rack, server = build_rack(specs, limit)
        FairShareThrottler().throttle(rack, target_watts=limit)
        at_floor = all(vm.freq_ghz <= PLAN.base_ghz + 1e-9
                       for vm in server.vms.values())
        assert rack.power_watts() <= limit + 1e-6 or at_floor

    @given(st.lists(vm_strategy, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_manager_sample_enforces_limit(self, specs):
        rack, server = build_rack(specs, limit=300.0)
        manager = RackPowerManager(rack)
        manager.sample(0.0)
        at_floor = all(vm.freq_ghz <= PLAN.base_ghz + 1e-9
                       for vm in server.vms.values())
        assert rack.power_watts() <= 300.0 + 1e-6 or at_floor


class TestFeedbackLoopInvariants:
    @given(st.lists(vm_strategy, min_size=1, max_size=4),
           st.floats(250.0, 800.0))
    @settings(max_examples=60, deadline=None)
    def test_converged_loop_respects_limit(self, specs, limit):
        """After enough ticks the loop never leaves the server above the
        limit unless even all-turbo exceeds it (the loop floor)."""
        rack, server = build_rack(specs, 10 * limit)
        loop = FeedbackLoop(server, buffer_watts=10.0)
        for vm in list(server.vms.values()):
            loop.engage(vm, PLAN.overclock_max_ghz)
        for _ in range(5):
            loop.tick(limit)
        all_turbo_power = None
        if server.power_watts() > limit + 1e-6:
            # Only legal when the turbo floor itself exceeds the limit.
            for vm in server.vms.values():
                assert vm.freq_ghz <= PLAN.turbo_ghz + 1e-9

    @given(st.lists(vm_strategy, min_size=1, max_size=4),
           st.floats(250.0, 800.0))
    @settings(max_examples=40, deadline=None)
    def test_frequencies_stay_in_plan_range(self, specs, limit):
        rack, server = build_rack(specs, 10 * limit)
        loop = FeedbackLoop(server)
        for vm in list(server.vms.values()):
            loop.engage(vm, PLAN.overclock_max_ghz)
        for _ in range(3):
            loop.tick(limit)
        for vm in server.vms.values():
            assert PLAN.base_ghz - 1e-9 <= vm.freq_ghz \
                <= PLAN.overclock_max_ghz + 1e-9


class TestEpochBudgetInvariants:
    @given(st.lists(
        st.tuples(st.sampled_from(["consume", "reserve", "release",
                                   "consume_reserved"]),
                  st.floats(0.0, 30000.0),
                  st.floats(0.0, 6.0)),   # time offset in days
        min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_accounting_never_goes_negative(self, operations):
        budget = EpochBudget(budget_fraction=0.05)
        operations = sorted(operations, key=lambda op: op[2])
        for op, amount, day in operations:
            now = day * 86400.0
            if op == "consume":
                budget.consume(now, amount)
            elif op == "reserve":
                budget.reserve(now, amount)
            elif op == "release":
                budget.release_reservation(now, amount)
            else:
                budget.consume(now, amount, from_reservation=True)
            assert budget.available_seconds(now) >= 0.0
            assert budget.reserved_seconds >= 0.0
            assert budget.consumed_seconds >= 0.0


class TestPowerMonotonicity:
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0),
           st.floats(2.45, 4.0), st.floats(2.45, 4.0))
    @settings(max_examples=80)
    def test_power_monotone_in_both_axes(self, u1, u2, f1, f2):
        model = DEFAULT_POWER_MODEL
        lo_u, hi_u = sorted((u1, u2))
        lo_f, hi_f = sorted((f1, f2))
        assert model.core_dynamic_watts(lo_u, lo_f) <= \
            model.core_dynamic_watts(hi_u, hi_f) + 1e-12
