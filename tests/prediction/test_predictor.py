"""Tests for TemplateStore edge paths: non-finite predictions, history."""

import math

import numpy as np
import pytest

from repro.prediction.predictor import TemplateStore

DAY = 86400.0
WEEK = 7 * DAY
STEP = 300.0


class TestPredictOrNonFinite:
    def test_default_before_recompute(self):
        store = TemplateStore()
        assert store.predict_or(0.0, 42.0) == 42.0

    def test_finite_prediction_passes_through(self):
        store = TemplateStore("FlatMed")
        times = np.arange(0.0, DAY, STEP)
        store.record_series(times, np.full(times.shape, 250.0))
        store.recompute()
        assert store.predict_or(WEEK, 42.0) == 250.0

    def test_nan_template_slot_returns_default(self):
        # A gapped history whose retained samples include NaN telemetry
        # (pre-prefill sentinel) poisons the template slot; predict()
        # faithfully returns NaN, but predict_or must treat a non-finite
        # prediction as absent and hand back the fallback.
        store = TemplateStore("FlatMed")
        times = np.arange(0.0, DAY, STEP)
        values = np.full(times.shape, 250.0)
        values[10] = np.nan
        store.record_series(times, values)
        store.recompute()
        assert math.isnan(store.predict(WEEK))
        assert store.predict_or(WEEK, 42.0) == 42.0

    def test_gapped_daily_history_with_nan_slot(self):
        # Only the poisoned slot falls back; healthy slots still predict.
        store = TemplateStore("DailyMed")
        times = np.arange(0.0, WEEK, STEP)
        values = np.full(times.shape, 200.0)
        slots_per_day = int(round(DAY / STEP))
        # Poison slot 7 on every weekday so its per-slot median is NaN.
        for d in range(5):
            values[d * slots_per_day + 7] = np.nan
        store.record_series(times, values)
        store.recompute()
        poisoned_t = WEEK + 7 * STEP
        healthy_t = WEEK + 8 * STEP
        assert store.predict_or(poisoned_t, 42.0) == 42.0
        assert store.predict_or(healthy_t, 42.0) == 200.0


class TestHistoryAccessor:
    def test_returns_retained_samples(self):
        store = TemplateStore(history_weeks=1)
        times = np.arange(0.0, 3 * WEEK, 3600.0)
        values = np.linspace(0.0, 1.0, len(times))
        store.record_series(times, values)
        h_times, h_values = store.history()
        assert len(h_times) == store.samples
        assert h_times[0] >= times[-1] - WEEK

    def test_returns_copies(self):
        store = TemplateStore()
        store.record(0.0, 1.0)
        store.record(300.0, 2.0)
        h_times, _ = store.history()
        h_times[0] = -999.0
        assert store.history()[0][0] == 0.0

    def test_empty_store(self):
        h_times, h_values = TemplateStore().history()
        assert len(h_times) == 0 and len(h_values) == 0
