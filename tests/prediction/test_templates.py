"""Tests for power-template strategies (§IV-B, Fig. 15)."""

import numpy as np
import pytest

from repro.prediction.predictor import (
    TemplateStore,
    evaluate_template,
)
from repro.prediction.templates import (
    DailyMaxTemplate,
    DailyMedTemplate,
    FlatMaxTemplate,
    FlatMedTemplate,
    TemplateKind,
    WeeklyTemplate,
    build_template,
)

DAY = 86400.0
WEEK = 7 * DAY
STEP = 300.0


def weekday_series(weeks=1, base=200.0, amplitude=100.0, noise=0.0,
                   seed=0):
    """Sinusoidal daily pattern over full weeks."""
    times = np.arange(0.0, weeks * WEEK, STEP)
    hours = (times % DAY) / 3600.0
    values = base + amplitude * 0.5 * (1 + np.cos(
        2 * np.pi * (hours - 13.0) / 24.0))
    if noise:
        values = values + np.random.default_rng(seed).normal(
            0, noise, size=values.shape)
    return times, values


class TestFlatTemplates:
    def test_flat_med_is_median(self):
        times = np.arange(5) * STEP
        values = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        template = FlatMedTemplate(times, values)
        assert template.predict(999.0) == 3.0

    def test_flat_max_is_max(self):
        times = np.arange(5) * STEP
        values = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        assert FlatMaxTemplate(times, values).predict(0.0) == 100.0

    def test_flat_max_never_underpredicts_history(self):
        times, values = weekday_series()
        template = FlatMaxTemplate(times, values)
        assert all(template.predict(float(t)) >= v
                   for t, v in zip(times, values))


class TestWeeklyTemplate:
    def test_replays_last_week(self):
        times, values = weekday_series(weeks=2)
        template = WeeklyTemplate(times, values)
        # Predicting week 3 returns week 2's value at the same offset.
        t = 2 * WEEK + 10 * 3600.0
        expected = values[int((WEEK + 10 * 3600.0) / STEP)]
        assert template.predict(t) == pytest.approx(expected)

    def test_needs_full_week(self):
        times = np.arange(10) * STEP
        with pytest.raises(ValueError, match="full week"):
            WeeklyTemplate(times, np.ones(10))

    def test_outlier_day_pollutes_weekly(self):
        """An anomalous Tuesday last week replays into next Tuesday —
        the robustness failure DailyMed avoids (§IV-B)."""
        times, values = weekday_series(weeks=1)
        day_slice = slice(int(DAY / STEP), int(2 * DAY / STEP))
        polluted = values.copy()
        polluted[day_slice] *= 3.0
        weekly = WeeklyTemplate(times, polluted)
        daily = DailyMedTemplate(times, polluted)
        t = WEEK + 1.5 * DAY  # next week's Tuesday
        clean_value = values[int(1.5 * DAY / STEP)]
        assert abs(weekly.predict(t) - clean_value) > \
            abs(daily.predict(t) - clean_value)


class TestDailyTemplates:
    def test_daily_med_is_per_slot_median(self):
        times, values = weekday_series(weeks=1)
        template = DailyMedTemplate(times, values)
        # 9 AM next Monday should equal the 9 AM median of weekdays.
        t = WEEK + 9 * 3600.0
        slot_values = [values[int((d * DAY + 9 * 3600.0) / STEP)]
                       for d in range(5)]
        assert template.predict(t) == pytest.approx(
            float(np.median(slot_values)))

    def test_daily_max_at_least_daily_med(self):
        times, values = weekday_series(weeks=1, noise=5.0)
        med = DailyMedTemplate(times, values)
        mx = DailyMaxTemplate(times, values)
        probes = WEEK + np.arange(0, DAY, 3600.0)
        assert all(mx.predict(float(t)) >= med.predict(float(t)) - 1e-9
                   for t in probes)

    def test_weekend_template_separate(self):
        times = np.arange(0.0, WEEK, STEP)
        weekday = ((times // DAY).astype(int) % 7) < 5
        values = np.where(weekday, 300.0, 100.0)
        template = DailyMedTemplate(times, values)
        assert template.predict(WEEK + 3600.0) == pytest.approx(300.0)
        saturday = WEEK + 5 * DAY + 3600.0
        assert template.predict(saturday) == pytest.approx(100.0)

    def test_weekday_only_history_falls_back(self):
        times = np.arange(0.0, 2 * DAY, STEP)  # Mon-Tue only
        values = np.full(times.shape, 250.0)
        template = DailyMedTemplate(times, values)
        assert template.predict(5 * DAY + 3600.0) == pytest.approx(250.0)


class TestBuildTemplate:
    def test_builds_each_kind(self):
        times, values = weekday_series(weeks=1)
        for kind in TemplateKind:
            template = build_template(kind, times, values)
            assert template.kind is kind

    def test_accepts_string_kind(self):
        times, values = weekday_series(weeks=1)
        assert build_template("DailyMed", times, values).kind is \
            TemplateKind.DAILY_MED

    def test_unknown_kind_rejected(self):
        times, values = weekday_series(weeks=1)
        with pytest.raises(ValueError):
            build_template("Bogus", times, values)

    def test_irregular_sampling_rejected(self):
        # 300 s and 433 s gaps share no credible grid: genuinely
        # irregular (not just a gapped history).
        times = np.array([0.0, 300.0, 733.0])
        with pytest.raises(ValueError, match="regular"):
            build_template("FlatMed", times, np.ones(3))

    def test_gapped_history_on_grid_accepted(self):
        """Gaps (dropped telemetry, server downtime) are fine as long
        as every sample sits on the base sampling grid."""
        times = np.array([0.0, 300.0, 900.0, 1200.0])
        template = build_template("DailyMed", times, np.ones(4))
        assert template.predict(600.0) == 1.0

    def test_gaps_hiding_the_base_cadence_accepted(self):
        """Drops can eat every adjacent pair at the base cadence (here
        60 s, observed gaps 180 s and 120 s); the base is the GCD of the
        gaps, not the smallest one.  Found by the chaos harness."""
        times = np.array([0.0, 180.0, 300.0])
        template = build_template("DailyMed", times, np.ones(3))
        assert template.interval == 60.0
        assert template.predict(600.0) == 1.0


class TestAccuracyOrdering:
    def test_daily_med_wins_on_realistic_traces(self):
        """Fig. 15's headline: DailyMed has the best accuracy."""
        from repro.traces.synthetic import FleetConfig, generate_fleet
        fleet = generate_fleet(FleetConfig(
            n_racks=4, weeks=2, seed=5, servers_per_rack_min=8,
            servers_per_rack_max=8))
        rmses = {kind: [] for kind in TemplateKind}
        for rack in fleet.racks:
            power = rack.total_power()
            t = rack.times
            hist = t < WEEK
            for kind in TemplateKind:
                ev = evaluate_template(kind, t[hist], power[hist],
                                       t[~hist], power[~hist])
                rmses[kind].append(ev.rmse)
        mean_rmse = {k: float(np.mean(v)) for k, v in rmses.items()}
        assert mean_rmse[TemplateKind.DAILY_MED] == min(mean_rmse.values())
        # Flat templates are far worse than time-aware ones.
        assert mean_rmse[TemplateKind.FLAT_MED] > \
            2 * mean_rmse[TemplateKind.DAILY_MED]

    def test_flat_max_overpredicts_flat_med_underpredicts(self):
        times, values = weekday_series(weeks=2, noise=2.0)
        hist = times < WEEK
        ev_max = evaluate_template("FlatMax", times[hist], values[hist],
                                   times[~hist], values[~hist])
        ev_med = evaluate_template("FlatMed", times[hist], values[hist],
                                   times[~hist], values[~hist])
        assert ev_max.mean_error > 0          # conservative
        assert ev_med.max_underprediction > 0  # opportunistic


class TestTemplateStore:
    def test_record_and_predict(self):
        store = TemplateStore("DailyMed")
        times, values = weekday_series(weeks=1)
        store.record_series(times, values)
        store.recompute()
        t = WEEK + 13 * 3600.0  # next Monday 13:00 (the daily peak)
        assert store.predict(t) == pytest.approx(300.0, rel=0.05)

    def test_predict_before_recompute_raises(self):
        store = TemplateStore()
        store.record(0.0, 1.0)
        with pytest.raises(RuntimeError, match="recompute"):
            store.predict(10.0)

    def test_predict_or_default(self):
        store = TemplateStore()
        assert store.predict_or(0.0, 42.0) == 42.0

    def test_backwards_time_rejected(self):
        store = TemplateStore()
        store.record(100.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            store.record(50.0, 1.0)

    def test_history_trimmed(self):
        store = TemplateStore(history_weeks=1)
        times = np.arange(0.0, 3 * WEEK, 3600.0)
        store.record_series(times, np.ones(times.shape))
        assert store.samples <= int(WEEK / 3600.0) + 1

    def test_recompute_without_history_raises(self):
        with pytest.raises(ValueError):
            TemplateStore().recompute()

    def test_evaluation_summary_format(self):
        times, values = weekday_series(weeks=2)
        hist = times < WEEK
        ev = evaluate_template("DailyMed", times[hist], values[hist],
                               times[~hist], values[~hist])
        assert "DailyMed" in ev.summary()
        assert "RMSE" in ev.summary()


class TestRecordSeriesBulk:
    """record_series must match a record() loop and scale linearly."""

    def test_equivalent_to_record_loop(self):
        times, values = weekday_series(weeks=2, noise=1.0)
        bulk = TemplateStore("DailyMed", history_weeks=1)
        loop = TemplateStore("DailyMed", history_weeks=1)
        bulk.record_series(times, values)
        for t, v in zip(times, values):
            loop.record(t, v)
        assert bulk.samples == loop.samples
        assert bulk._times == loop._times
        assert bulk._values == loop._values
        bulk.recompute()
        loop.recompute()
        probe = times[-1] + 3600.0
        assert bulk.predict(probe) == loop.predict(probe)

    def test_chunked_series_equivalent_to_single(self):
        times, values = weekday_series(weeks=2)
        whole = TemplateStore(history_weeks=1)
        parts = TemplateStore(history_weeks=1)
        whole.record_series(times, values)
        mid = len(times) // 3
        parts.record_series(times[:mid], values[:mid])
        parts.record_series(times[mid:], values[mid:])
        assert whole._times == parts._times
        assert whole._values == parts._values

    def test_empty_series_is_noop(self):
        store = TemplateStore()
        store.record_series(np.array([]), np.array([]))
        assert store.samples == 0

    def test_shape_mismatch_rejected(self):
        store = TemplateStore()
        with pytest.raises(ValueError, match="shape mismatch"):
            store.record_series(np.arange(3.0), np.arange(4.0))

    def test_non_1d_rejected(self):
        store = TemplateStore()
        grid = np.ones((2, 2))
        with pytest.raises(ValueError, match="1-D"):
            store.record_series(grid, grid)

    def test_internally_decreasing_series_rejected(self):
        store = TemplateStore()
        with pytest.raises(ValueError, match="non-decreasing"):
            store.record_series(np.array([0.0, 10.0, 5.0]),
                                np.zeros(3))

    def test_series_before_existing_history_rejected(self):
        store = TemplateStore()
        store.record(100.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            store.record_series(np.array([50.0, 60.0]), np.zeros(2))

    def test_bulk_append_scales_linearly(self):
        """Quadratic trim behaviour made multi-week appends explode;
        4x the samples must cost far less than 16x the time."""
        import time

        def cost(n):
            times = np.arange(n, dtype=float) * 60.0
            values = np.ones(n)
            store = TemplateStore(history_weeks=1)
            start = time.perf_counter()
            # Many small appends — the regime the old implementation
            # handled quadratically via per-sample list-slicing trims.
            for i in range(0, n, 256):
                store.record_series(times[i:i + 256], values[i:i + 256])
            return time.perf_counter() - start

        cost(4096)  # warm-up
        small, big = cost(8192), cost(4 * 8192)
        assert big < 10.0 * small + 0.05  # quadratic would be ~16x


class TestPredictSeriesBatch:
    """Batched prediction must be bitwise equal to per-template calls."""

    def make_templates(self, n=4, kind=TemplateKind.DAILY_MED):
        templates = []
        for i in range(n):
            times, values = weekday_series(weeks=1, base=150.0 + 40.0 * i,
                                           amplitude=60.0 + 10.0 * i,
                                           noise=5.0, seed=i)
            templates.append(build_template(kind, times, values))
        return templates

    def test_homogeneous_daily_fast_path_bitwise(self):
        from repro.prediction.templates import predict_series_batch

        templates = self.make_templates()
        query = np.arange(0.0, 2 * WEEK, STEP) + WEEK  # spans weekends
        batch = predict_series_batch(templates, query)
        assert batch.shape == (len(query), len(templates))
        for i, tpl in enumerate(templates):
            assert np.array_equal(batch[:, i], tpl.predict_series(query))

    def test_mixed_kinds_generic_path_bitwise(self):
        from repro.prediction.templates import predict_series_batch

        templates = (self.make_templates(2, TemplateKind.DAILY_MED)
                     + self.make_templates(2, TemplateKind.WEEKLY))
        query = np.arange(0.0, WEEK, STEP)
        batch = predict_series_batch(templates, query)
        for i, tpl in enumerate(templates):
            assert np.array_equal(batch[:, i], tpl.predict_series(query))


class TestGappedHistoryAggregation:
    """Slot aggregation with unequal per-slot sample counts (gapped or
    partial histories) must match the per-slot masked form exactly."""

    def test_uneven_counts_match_masked_form(self):
        # 1.5 weekdays of history: morning slots have 2 samples,
        # afternoon slots only 1 — exercises the non-uniform branch.
        times = np.arange(0.0, 1.5 * DAY, STEP)
        rng = np.random.default_rng(7)
        values = 200.0 + rng.normal(0.0, 20.0, size=times.shape)
        template = build_template(TemplateKind.DAILY_MED, times, values)
        slots_per_day = int(round(DAY / STEP))
        slots = (np.round((times % DAY) / STEP).astype(int)) % slots_per_day
        for s in (0, 1, slots_per_day // 2, slots_per_day - 1):
            group = values[slots == s]
            expected = float(np.median(group))
            assert template.predict(s * STEP) == expected

    def test_unseen_slots_fall_back_to_overall_median(self):
        # History covers only the first half of the day; afternoon slots
        # are unseen and must predict the overall median.
        times = np.arange(0.0, 0.5 * DAY, STEP)
        values = np.linspace(100.0, 300.0, len(times))
        template = build_template(TemplateKind.DAILY_MAX, times, values)
        overall = float(np.median(values))
        assert template.predict(0.75 * DAY) == overall

    def test_gapped_grid_accepted_and_aggregated(self):
        # Drop a contiguous chunk of telemetry (whole multiples of the
        # interval): still a valid history, aggregated per seen slot.
        times, values = weekday_series(weeks=1)
        keep = np.ones(len(times), dtype=bool)
        keep[100:200] = False
        template = build_template(TemplateKind.DAILY_MED, times[keep],
                                  values[keep])
        slots_per_day = int(round(DAY / STEP))
        slots = (np.round((times[keep] % DAY)
                          / STEP).astype(int)) % slots_per_day
        kept_values = values[keep]
        s = int(slots[0])
        expected = float(np.median(kept_values[slots == s]))
        assert template.predict(times[keep][0]) == expected
