"""Tests for quantile templates and prediction intervals."""

import numpy as np
import pytest

from repro.prediction.predictor import TemplateStore
from repro.prediction.quantiles import (
    DailyQuantileTemplate,
    IntervalPredictor,
    PredictionInterval,
)
from repro.prediction.templates import (
    DailyMaxTemplate,
    DailyMedTemplate,
)

DAY = 86400.0
WEEK = 7 * DAY
STEP = 300.0


def noisy_week(seed=0, base=200.0, amplitude=100.0, noise=10.0, weeks=1):
    times = np.arange(0.0, weeks * WEEK, STEP)
    hours = (times % DAY) / 3600.0
    values = base + amplitude * 0.5 * (1 + np.cos(
        2 * np.pi * (hours - 13.0) / 24.0))
    values = values + np.random.default_rng(seed).normal(
        0, noise, size=values.shape)
    return times, values


class TestDailyQuantileTemplate:
    def test_median_quantile_matches_daily_med_on_weekdays(self):
        # A full week gives every weekday slot exactly 5 samples (odd),
        # where np.median and np.quantile(0.5) both select the middle
        # sample — the equivalence is exact, not approximate.
        times, values = noisy_week(seed=1)
        med = DailyMedTemplate(times, values)
        q50 = DailyQuantileTemplate(times, values, q=0.5)
        weekday_probes = WEEK + np.arange(0.0, 5 * DAY, STEP)
        assert np.array_equal(q50.predict_series(weekday_probes),
                              med.predict_series(weekday_probes))

    def test_max_quantile_matches_daily_max(self):
        # q=1.0 selects the largest sample exactly, like max.
        times, values = noisy_week(seed=2)
        mx = DailyMaxTemplate(times, values)
        q100 = DailyQuantileTemplate(times, values, q=1.0)
        probes = WEEK + np.arange(0.0, 7 * DAY, STEP)
        assert np.array_equal(q100.predict_series(probes),
                              mx.predict_series(probes))

    def test_monotone_in_q(self):
        times, values = noisy_week(seed=3, noise=25.0)
        templates = [DailyQuantileTemplate(times, values, q=q)
                     for q in (0.1, 0.5, 0.9, 0.99)]
        probes = WEEK + np.arange(0.0, 7 * DAY, 1800.0)
        series = [tpl.predict_series(probes) for tpl in templates]
        for lo, hi in zip(series, series[1:]):
            assert np.all(lo <= hi)

    def test_predict_series_matches_predict_loop(self):
        times, values = noisy_week(seed=4)
        tpl = DailyQuantileTemplate(times, values, q=0.9)
        probes = WEEK + np.arange(0.0, 7 * DAY, 1234 * STEP)
        looped = np.array([tpl.predict(float(t)) for t in probes])
        assert np.array_equal(tpl.predict_series(probes), looped)

    def test_gapped_history_uneven_counts(self):
        # Drop a chunk of telemetry: per-slot sample counts become
        # uneven and the grouped aggregation must match the masked form.
        times, values = noisy_week(seed=5)
        keep = np.ones(len(times), dtype=bool)
        keep[150:450] = False
        tpl = DailyQuantileTemplate(times[keep], values[keep], q=0.75)
        slots_per_day = int(round(DAY / STEP))
        weekday = ((times[keep] // DAY).astype(int) % 7) < 5
        slots = (np.round((times[keep] % DAY)
                          / STEP).astype(int)) % slots_per_day
        s = int(slots[weekday][0])
        group = values[keep][weekday][slots[weekday] == s]
        assert tpl.predict(s * STEP) == float(np.quantile(group, 0.75))

    def test_unseen_slots_fall_back_to_overall_quantile(self):
        # Morning-only history: afternoon slots predict the overall
        # quantile at the template's own q, not the overall median.
        times = np.arange(0.0, 0.5 * DAY, STEP)
        values = np.linspace(100.0, 300.0, len(times))
        tpl = DailyQuantileTemplate(times, values, q=0.9)
        assert tpl.predict(0.75 * DAY) == float(np.quantile(values, 0.9))

    def test_invalid_q_rejected(self):
        times, values = noisy_week()
        for q in (-0.1, 1.5):
            with pytest.raises(ValueError, match="quantile"):
                DailyQuantileTemplate(times, values, q=q)


class TestPredictionInterval:
    def test_spread(self):
        iv = PredictionInterval(lo=1.0, mid=2.0, hi=5.0)
        assert iv.spread == 3.0

    def test_unordered_rejected(self):
        with pytest.raises(ValueError, match="ordered"):
            PredictionInterval(lo=2.0, mid=1.0, hi=5.0)
        with pytest.raises(ValueError, match="ordered"):
            PredictionInterval(lo=1.0, mid=6.0, hi=5.0)


class TestIntervalPredictor:
    def make_predictor(self, seed=0, **kwargs):
        times, values = noisy_week(seed=seed, noise=20.0)
        store = TemplateStore("DailyMed")
        store.record_series(times, values)
        predictor = IntervalPredictor(store, **kwargs)
        predictor.recompute()
        return predictor

    def test_interval_ordered_everywhere(self):
        predictor = self.make_predictor()
        for t in WEEK + np.arange(0.0, 7 * DAY, 3600.0):
            iv = predictor.interval(float(t))
            assert iv.lo <= iv.mid <= iv.hi

    def test_interval_series_matches_scalar(self):
        predictor = self.make_predictor(seed=6)
        probes = WEEK + np.arange(0.0, 2 * DAY, 1800.0)
        lo, mid, hi = predictor.interval_series(probes)
        for i, t in enumerate(probes):
            iv = predictor.interval(float(t))
            assert (lo[i], mid[i], hi[i]) == (iv.lo, iv.mid, iv.hi)

    def test_requires_recompute(self):
        store = TemplateStore()
        times, values = noisy_week()
        store.record_series(times, values)
        predictor = IntervalPredictor(store)
        with pytest.raises(RuntimeError, match="recompute"):
            predictor.interval(0.0)

    def test_insufficient_history_rejected(self):
        store = TemplateStore()
        store.record(0.0, 1.0)
        with pytest.raises(ValueError, match="history"):
            IntervalPredictor(store).recompute()

    def test_unordered_quantiles_rejected(self):
        store = TemplateStore()
        with pytest.raises(ValueError, match="ordered"):
            IntervalPredictor(store, q_lo=0.9, q_mid=0.5, q_hi=0.95)

    def test_follows_store_trim_window(self):
        # The interval templates are built from the store's *retained*
        # history: old weeks trimmed from the store don't leak in.
        long_times, long_values = noisy_week(seed=7, weeks=3)
        store = TemplateStore("DailyMed", history_weeks=1)
        store.record_series(long_times, long_values)
        predictor = IntervalPredictor(store)
        predictor.recompute()
        times, values = store.history()
        direct = DailyQuantileTemplate(times, values, q=0.95)
        probe = float(long_times[-1] + 3600.0)
        assert predictor.interval(probe).hi == direct.predict(probe)
