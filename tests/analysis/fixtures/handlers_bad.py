"""Known-bad fixture: mutable defaults and engine-internal access."""


def accumulate(value: float, acc: list = []) -> list:   # line 4: handler-hygiene
    acc.append(value)
    return acc


def sneaky_handler(engine: object) -> None:
    engine._queue.append(None)                 # line 10: handler-hygiene
    engine._now = 0.0                          # line 11: handler-hygiene
