"""Known-bad fixture: worker entrypoint touching mutable module globals.

Linted with ``worker_entrypoints={"worker_main"}`` (bare-name spec).
"""

_SHARED_CACHE: dict = {}
_LIMITS = [4, 8, 16]


def _lookup(row: int) -> int:
    return _LIMITS[row % 3]            # line 11: spawn-purity (via helper)


def worker_main(job: int) -> int:
    _SHARED_CACHE[job] = job           # line 15: spawn-purity
    return _lookup(job)


def untargeted(job: int) -> int:
    """Not an entrypoint: the same reads stay unflagged here."""
    return _LIMITS[job % 3] + len(_SHARED_CACHE)
