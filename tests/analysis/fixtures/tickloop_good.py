"""Known-good fixture: buffers hoisted, loops reuse them in place."""

import numpy as np


def hoisted_buffers(power: np.ndarray, ticks: int) -> float:
    buf = np.ones(power.shape[0])
    ratio = np.asarray(power, dtype=float)
    total = 0.0
    for _ in range(ticks):
        np.copyto(buf, 1.0)
        np.divide(ratio, buf, out=buf, where=buf > 0)
        total += float(np.sum(buf))
    return total


def sanctioned_per_plan(power: np.ndarray, plans: int) -> float:
    total = 0.0
    for _ in range(plans):
        block = np.zeros(power.shape[0])  # oclint: disable=tick-loop-allocation
        total += float(block.sum())
    return total
