"""Known-bad fixture: functions with missing annotations."""


def no_return_annotation(x: int):           # line 4: untyped-def
    return x


def untyped_params(a, b: float, *args, **kwargs) -> float:  # line 8: untyped-def
    return b


class Holder:
    def method(self, value):                # line 13: untyped-def
        return value
