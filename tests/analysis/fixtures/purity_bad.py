"""Known-bad fixture: tick_stateless = True policies with effects."""
from typing import ClassVar

import numpy as np


class TracePolicy:
    tick_stateless: ClassVar[bool] = False
    warning_inert: ClassVar[bool] = True

    def decide(self, ctx: object) -> object:
        return ctx

    def fast_decide(self, ctx: object) -> object:
        return self.decide(ctx)

    def on_warning(self, ctx: object) -> None:
        return None


class CountingPolicy(TracePolicy):
    tick_stateless = True

    def decide(self, ctx: object) -> object:
        self._calls = 1                    # line 25: purity-stateless-tick
        return ctx


class HelperMutator(TracePolicy):
    tick_stateless = True

    def decide(self, ctx: object) -> object:
        return self._scale(ctx)

    def _scale(self, demand: object) -> object:
        demand[0] = demand[0] * 2          # line 36: purity-stateless-tick
        return demand


class DrawingPolicy(TracePolicy):
    tick_stateless = True

    def decide(self, ctx: object) -> object:
        noise = np.random.random()         # line 44: purity-stateless-tick
        return noise
