"""Known-good fixture: durable fields touched only through the owner."""


class Owner:
    def __init__(self) -> None:
        self._wear_seconds = 0.0           # self-write: owner's business
        self._consumed = 0.0

    def accumulate(self, dt: float) -> None:
        self._wear_seconds += dt

    def state_dict(self) -> dict[str, float]:
        return {"wear_seconds": self._wear_seconds}

    def load_state_dict(self, state: dict[str, float]) -> None:
        self._wear_seconds = float(state["wear_seconds"])


def well_behaved(counter: Owner) -> None:
    counter.accumulate(10.0)               # accounting API: fine
    counter.load_state_dict(counter.state_dict())
