"""Known-bad fixture: on_warning overrides vs. the warning_inert flag."""
from typing import ClassVar


class TracePolicy:
    tick_stateless: ClassVar[bool] = False
    warning_inert: ClassVar[bool] = True

    def decide(self, ctx: object) -> object:
        return ctx

    def on_warning(self, ctx: object) -> None:
        return None


class EagerHook(TracePolicy):
    """Real on_warning body while warning_inert stays True."""

    def on_warning(self, ctx: object) -> None:  # line 19: warning-hook-inert
        self._warned = True


class FalseFlag(TracePolicy):
    """Declares the flag off but never implements the hook."""

    warning_inert = False                       # line 26: warning-hook-inert
