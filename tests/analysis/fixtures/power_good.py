"""Known-good fixture: cache fields touched only through the owner."""


class Owner:
    def __init__(self, freq_ghz: float) -> None:
        self._freq_ghz = freq_ghz          # self-write: owner's business
        self._dynamic_watts = 0.0

    @property
    def freq_ghz(self) -> float:
        return self._freq_ghz

    @freq_ghz.setter
    def freq_ghz(self, value: float) -> None:
        self._freq_ghz = value


def well_behaved(core: Owner) -> None:
    core.freq_ghz = 4.0                    # public setter: fine
    _ = core.freq_ghz
