"""Known-bad fixture: direct writes to durable (checkpointed) fields."""


class NotTheOwner:
    def corrupt(self, counter: object, budget: object) -> None:
        counter._wear_seconds = 0.0        # line 6: durable-state-write
        budget._consumed -= 3600.0         # line 7: durable-state-write


def module_level(soa: object, store: object) -> None:
    soa._assignment = None                 # line 11: durable-state-write
    store._times = []                      # line 12: durable-state-write
    del soa._grants                        # line 13: durable-state-write
