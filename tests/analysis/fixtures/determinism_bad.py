"""Known-bad fixture: wall-clock reads and unseeded/global randomness."""

import random
import time
from datetime import datetime

import numpy as np


def all_the_sins() -> float:
    started = time.time()                       # line 11: nondeterminism
    jitter = random.random()                    # line 12: nondeterminism
    rng = np.random.default_rng()               # line 13: nondeterminism
    draw = float(np.random.normal())            # line 14: nondeterminism
    stamp = datetime.now()                      # line 15: nondeterminism
    return started + jitter + float(rng.random()) + draw + stamp.hour
