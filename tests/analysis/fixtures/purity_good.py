"""Known-good fixture: purity contracts honestly declared."""
from typing import ClassVar


class TracePolicy:
    tick_stateless: ClassVar[bool] = False
    warning_inert: ClassVar[bool] = True

    def decide(self, ctx: object) -> object:
        return ctx

    def fast_decide(self, ctx: object) -> object:
        return self.decide(ctx)

    def on_warning(self, ctx: object) -> None:
        return None


class StatefulPolicy(TracePolicy):
    """Legitimately stateful: mutates, and says so."""

    tick_stateless = False

    def decide(self, ctx: object) -> object:
        self._last = ctx
        return ctx


class PureHelperPolicy(TracePolicy):
    """Stateless with helper calls: no effect anywhere on the path."""

    tick_stateless = True

    def decide(self, ctx: object) -> object:
        return self._scale(ctx, 2.0)

    def _scale(self, demand: object, factor: float) -> list:
        return [entry * factor for entry in demand]


class LocalMutationPolicy(TracePolicy):
    """Mutating a locally-allocated list is not an effect."""

    tick_stateless = True

    def decide(self, ctx: object) -> object:
        granted = []
        granted.append(ctx)
        return granted
