"""Known-good fixture: fully annotated functions."""

from typing import Any


def annotated(a: int, b: float, *args: float, **kwargs: Any) -> float:
    return b


class Holder:
    def method(self, value: float) -> float:
        return value

    @staticmethod
    def helper(value: int) -> int:
        return value
