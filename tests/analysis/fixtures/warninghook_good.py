"""Known-good fixture: hook overrides agree with warning_inert."""
from typing import ClassVar


class TracePolicy:
    tick_stateless: ClassVar[bool] = False
    warning_inert: ClassVar[bool] = True

    def decide(self, ctx: object) -> object:
        return ctx

    def on_warning(self, ctx: object) -> None:
        return None


class RealHook(TracePolicy):
    """Implements the hook and declares the flag off: consistent."""

    warning_inert = False

    def on_warning(self, ctx: object) -> None:
        self._warned = True


class Untouched(TracePolicy):
    """Inherits both the no-op hook and the True flag: consistent."""

    def decide(self, ctx: object) -> object:
        return ctx


class NoopOverride(TracePolicy):
    """A docstring-only override is still a no-op."""

    def on_warning(self, ctx: object) -> None:
        """Nothing to do for this policy."""


class InheritedRealHook(RealHook):
    """warning_inert = False resolved from the parent, hook inherited."""

    def decide(self, ctx: object) -> object:
        return ctx
