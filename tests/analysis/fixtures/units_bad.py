"""Known-bad fixture: unit-suffixed names bound to other-unit params."""


def set_operating_point(freq_ghz: float, duration_s: float) -> float:
    return freq_ghz * duration_s


def caller(freq_mhz: float, power_watts: float, wait_ms: float) -> float:
    a = set_operating_point(freq_mhz, power_watts)   # line 9: two mismatches
    b = set_operating_point(freq_ghz=power_watts,    # line 10: unit-mismatch
                            duration_s=wait_ms)      # line 11: unit-mismatch
    return a + b
