"""Known-bad fixture: per-iteration NumPy allocations in tick loops."""

import numpy as np
from numpy import zeros


def per_tick_churn(power: np.ndarray, ticks: int) -> float:
    total = 0.0
    for _ in range(ticks):
        buf = np.ones(power.shape[0])           # line 10: tick-loop-allocation
        ratio = np.asarray(power, dtype=float)  # line 11: tick-loop-allocation
        scratch = zeros(power.shape[0])         # line 12: tick-loop-allocation
        total += float(np.sum(buf * ratio) + scratch[0])
    tick = 0
    while tick < ticks:
        parts = np.stack([power, power])        # line 16: tick-loop-allocation
        total += float(parts.sum())
        tick += 1
    return total
