"""Known-good fixture: units line up, conversions are explicit."""


def set_operating_point(freq_ghz: float, duration_s: float) -> float:
    return freq_ghz * duration_s


def caller(freq_ghz: float, freq_mhz: float, wait_ms: float) -> float:
    matched = set_operating_point(freq_ghz, wait_ms / 1000.0)
    converted = set_operating_point(freq_mhz / 1000.0, 5.0)
    keyword = set_operating_point(freq_ghz=freq_ghz, duration_s=3.0)
    return matched + converted + keyword
