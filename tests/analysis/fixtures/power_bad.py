"""Known-bad fixture: direct writes to power-affecting backing fields."""


class NotTheOwner:
    def corrupt(self, core: object, server: object) -> None:
        core._freq_ghz = 4.0               # line 6: power-cache-write
        server._dynamic_watts += 12.5      # line 7: power-cache-write


def module_level(vm: object) -> None:
    vm._utilization = 0.9                  # line 11: power-cache-write
    del vm._background_watts               # line 12: power-cache-write
