"""Known-good fixture: worker-local None-sentinel idiom.

Linted with ``worker_entrypoints={"worker_main", "_init_worker"}``:
module-level ``NAME = None`` rebound only via ``global`` inside the
worker functions is per-process state that spawn re-initializes in
every child, so it cannot leak parent state.
"""

_WORKER_MODEL = None
_WORKER_CACHE = None


def _init_worker(model: object) -> None:
    global _WORKER_MODEL
    _WORKER_MODEL = model


def worker_main(job: int) -> int:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = _WORKER_MODEL
    payload = [job, job + 1]
    payload.append(job + 2)            # mutating a local: not an effect
    return len(payload)
