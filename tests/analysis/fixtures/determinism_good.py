"""Known-good fixture: the seeded-rng-parameter convention."""

from typing import Optional

import numpy as np


def seeded_draw(rng: np.random.Generator) -> float:
    return float(rng.normal())


def seeded_factory(seed: int, rng: Optional[np.random.Generator] = None
                   ) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)
