"""Known-good fixture: None-default allocation, public engine API only."""

from typing import Optional


def accumulate(value: float, acc: Optional[list] = None) -> list:
    if acc is None:
        acc = []
    acc.append(value)
    return acc


class WellBehavedProcess:
    def __init__(self) -> None:
        self._queue: list = []     # its own _queue attribute: fine

    def tick(self, engine: "WellBehavedProcess") -> None:
        self._queue.append(engine)
