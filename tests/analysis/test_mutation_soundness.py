"""Mutation-tested soundness of the effect-inference rules.

Each test applies one textual mutation to a *real* source file — the
exact silent-corruption bugs the purity contracts exist to stop — and
asserts the lint produces exactly one diagnostic, from the right rule,
at the right file:line.  The unmutated files lint clean (asserted here
per-file; ``test_repo_clean.py`` covers the whole tree), so every
diagnostic below is caused by its mutation alone.
"""

from pathlib import Path

from repro.analysis import lint_source, load_config

REPO = Path(__file__).parents[2]
POLICIES = REPO / "src" / "repro" / "core" / "policies.py"
PARALLEL = REPO / "src" / "repro" / "experiments" / "parallel.py"
CONFIG = load_config(REPO / "pyproject.toml")


def lint_text(text: str, path: Path) -> list:
    result = lint_source(text, path=str(path), config=CONFIG)
    assert result.parse_errors == 0
    return result.diagnostics


def line_number(lines: list[str], needle: str, start: int = 0) -> int:
    """1-based line number of the first line containing ``needle``."""
    for offset, line in enumerate(lines[start:], start=start):
        if needle in line:
            return offset + 1
    raise AssertionError(f"{needle!r} not found")


class TestUnmutatedFilesAreClean:
    def test_policies_clean(self):
        assert lint_text(POLICIES.read_text(), POLICIES) == []

    def test_parallel_clean(self):
        assert lint_text(PARALLEL.read_text(), PARALLEL) == []


class TestDroppedWarningInertFlag:
    def test_one_diagnostic_at_the_hook_def(self):
        lines = POLICIES.read_text().splitlines()
        flag_index = line_number(lines, "warning_inert = False") - 1
        mutated_lines = lines[:flag_index] + lines[flag_index + 1:]
        diags = lint_text("\n".join(mutated_lines) + "\n", POLICIES)
        assert len(diags) == 1
        diagnostic = diags[0]
        assert diagnostic.rule_id == "warning-hook-inert"
        assert diagnostic.path == str(POLICIES)
        # SmartOClockPolicy's on_warning is the last override in the file.
        class_line = line_number(mutated_lines, "class SmartOClockPolicy")
        hook_line = line_number(mutated_lines, "def on_warning",
                                start=class_line)
        assert diagnostic.line == hook_line
        assert "SmartOClockPolicy" in diagnostic.message


class TestStatefulStatelessDecide:
    def test_direct_mutation_in_decide(self):
        lines = POLICIES.read_text().splitlines()
        class_line = line_number(lines, "class CentralOracle")
        decide_line = line_number(lines, "def decide", start=class_line)
        mutated_lines = (lines[:decide_line]
                         + ["        self._n += 1"]
                         + lines[decide_line:])
        diags = lint_text("\n".join(mutated_lines) + "\n", POLICIES)
        assert len(diags) == 1
        diagnostic = diags[0]
        assert diagnostic.rule_id == "purity-stateless-tick"
        assert diagnostic.line == decide_line + 1
        assert "CentralOracle" in diagnostic.message
        assert "self._n" in diagnostic.message

    def test_mutation_in_a_helper_decide_calls(self):
        # NoFeedback (tick_stateless = True) routes decide through
        # _decide_with; NoWarning/SmartOClockPolicy share the helper but
        # declare tick_stateless = False, so exactly one class flags.
        lines = POLICIES.read_text().splitlines()
        helper_line = line_number(lines, "def _decide_with")
        # The signature spans several lines; insert after it closes.
        body_start = helper_line
        while not lines[body_start - 1].rstrip().endswith(":"):
            body_start += 1
        mutated_lines = (lines[:body_start]
                         + ["        self._calls = 1"]
                         + lines[body_start:])
        diags = lint_text("\n".join(mutated_lines) + "\n", POLICIES)
        assert len(diags) == 1
        diagnostic = diags[0]
        assert diagnostic.rule_id == "purity-stateless-tick"
        assert diagnostic.line == body_start + 1
        assert "NoFeedback" in diagnostic.message
        assert "_decide_with" in diagnostic.message  # origin named


class TestWorkerGlobalRead:
    def test_one_diagnostic_at_the_read(self):
        lines = PARALLEL.read_text().splitlines()
        sentinel_line = line_number(lines, "_WORKER_RACK_CACHE:")
        worker_line = line_number(lines, "def _run_job")
        assert sentinel_line < worker_line
        mutated_lines = list(lines)
        mutated_lines.insert(sentinel_line, "_RACK_LIMITS: dict = {}")
        mutated_lines.insert(worker_line + 1, "    limits = _RACK_LIMITS")
        diags = lint_text("\n".join(mutated_lines) + "\n", PARALLEL)
        assert len(diags) == 1
        diagnostic = diags[0]
        assert diagnostic.rule_id == "spawn-purity"
        assert diagnostic.line == worker_line + 2
        assert "_RACK_LIMITS" in diagnostic.message
        assert "_run_job" in diagnostic.message

    def test_sentinel_reads_stay_sanctioned(self):
        # The worker-local None-sentinel reads the mutation sits next to
        # are untouched: removing the mutation removes the diagnostic.
        assert lint_text(PARALLEL.read_text(), PARALLEL) == []
