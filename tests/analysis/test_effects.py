"""Unit tests for the interprocedural effect-inference layer."""

import ast

from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.effects import EffectAnalysis, ModuleGlobals


def build(sources: dict[str, str]) -> EffectAnalysis:
    """Build an analysis over in-memory modules keyed by dotted name."""
    contexts = [
        ModuleContext(name.replace(".", "/") + ".py", source,
                      ast.parse(source))
        for name, source in sources.items()]
    return EffectAnalysis.build(contexts, ProjectIndex.build(contexts))


def kinds(analysis: EffectAnalysis, module: str,
          qualname: str) -> set[tuple[str, str]]:
    return {(e.kind, e.name)
            for e in analysis.effects_of((module, qualname))}


class TestDirectExtraction:
    def test_self_write(self):
        analysis = build({"m": (
            "class C:\n"
            "    def f(self) -> None:\n"
            "        self.total = 1\n")})
        assert kinds(analysis, "m", "C.f") == {("self-write", "total")}

    def test_param_subscript_and_augmented(self):
        analysis = build({"m": (
            "def f(buf: list, arr: object) -> None:\n"
            "    buf[0] = 1\n"
            "    arr += 2\n")})
        assert kinds(analysis, "m", "f") == {("param-mutation", "buf"),
                                             ("param-mutation", "arr")}

    def test_mutating_method_on_param(self):
        analysis = build({"m": (
            "def f(acc: list) -> None:\n"
            "    acc.append(3)\n")})
        assert kinds(analysis, "m", "f") == {("param-mutation", "acc")}

    def test_numpy_out_and_copyto(self):
        analysis = build({"m": (
            "import numpy as np\n"
            "def f(dst: object, src: object) -> None:\n"
            "    np.add(src, 1, out=dst)\n"
            "    np.copyto(dst, src)\n")})
        assert kinds(analysis, "m", "f") == {("param-mutation", "dst")}

    def test_local_mutation_is_not_an_effect(self):
        analysis = build({"m": (
            "def f(n: int) -> list:\n"
            "    out = []\n"
            "    out.append(n)\n"
            "    out[0] = n\n"
            "    return out\n")})
        assert kinds(analysis, "m", "f") == set()

    def test_rng_draw_on_self_generator(self):
        analysis = build({"m": (
            "class C:\n"
            "    def f(self) -> float:\n"
            "        return self._rng.normal()\n")})
        assert ("self-write", "_rng") in kinds(analysis, "m", "C.f")
        assert any(k == "rng" for k, _ in kinds(analysis, "m", "C.f"))

    def test_wall_clock_is_rng_effect(self):
        analysis = build({"m": (
            "import time\n"
            "def f() -> float:\n"
            "    return time.time()\n")})
        assert any(k == "rng" for k, _ in kinds(analysis, "m", "f"))


class TestModuleGlobals:
    def test_classification(self):
        source = (
            "CACHE = {}\n"
            "LIMIT = 7\n"
            "_HANDLE = None\n"
            "NAMES = ['a']\n"
            "def f() -> None:\n"
            "    global _HANDLE\n"
            "    _HANDLE = object()\n")
        ctx = ModuleContext("m.py", source, ast.parse(source))
        table = ModuleGlobals.scan(ctx)
        assert table.mutable_literal == {"CACHE", "NAMES"}
        assert table.rebound == {"_HANDLE"}
        assert table.none_sentinel == {"_HANDLE"}
        assert table.tracked == {"CACHE", "NAMES", "_HANDLE"}
        assert "LIMIT" in table.bindings and "LIMIT" not in table.tracked

    def test_rebound_non_none_is_not_a_sentinel(self):
        source = (
            "_STATE = {'a': 1}\n"
            "def f() -> None:\n"
            "    global _STATE\n"
            "    _STATE = {}\n")
        ctx = ModuleContext("m.py", source, ast.parse(source))
        table = ModuleGlobals.scan(ctx)
        assert table.none_sentinel == set()
        assert "_STATE" in table.tracked


class TestPropagation:
    def test_effects_flow_through_same_module_helper(self):
        analysis = build({"m": (
            "class C:\n"
            "    def top(self) -> None:\n"
            "        self.helper()\n"
            "    def helper(self) -> None:\n"
            "        self.count = 1\n")})
        assert ("self-write", "count") in kinds(analysis, "m", "C.top")

    def test_effect_keeps_raw_site_through_two_hops(self):
        analysis = build({"m": (
            "def a(x: list) -> None:\n"
            "    b(x)\n"
            "def b(x: list) -> None:\n"
            "    c(x)\n"
            "def c(x: list) -> None:\n"
            "    x[0] = 1\n")})
        effects = analysis.effects_of(("m", "a"))
        assert len(effects) == 1
        effect = next(iter(effects))
        assert effect.line == 6 and effect.origin == "c"

    def test_cross_module_from_import(self):
        analysis = build({
            "pkg.helper": ("def bump(acc: list) -> None:\n"
                           "    acc.append(1)\n"),
            "pkg.main": ("from pkg.helper import bump\n"
                         "def run(items: list) -> None:\n"
                         "    bump(items)\n"),
        })
        assert kinds(analysis, "pkg.main", "run") == \
            {("param-mutation", "items")}

    def test_param_mutation_lifts_to_self_attribute(self):
        analysis = build({"m": (
            "def bump(acc: list) -> None:\n"
            "    acc.append(1)\n"
            "class C:\n"
            "    def f(self) -> None:\n"
            "        bump(self.history)\n")})
        assert kinds(analysis, "m", "C.f") == {("self-write", "history")}

    def test_keyword_binding_lifts(self):
        analysis = build({"m": (
            "def bump(n: int, acc: list) -> None:\n"
            "    acc.append(n)\n"
            "def f(items: list) -> None:\n"
            "    bump(acc=items, n=1)\n")})
        assert kinds(analysis, "m", "f") == {("param-mutation", "items")}

    def test_recursive_helpers_terminate(self):
        analysis = build({"m": (
            "def a(x: list) -> None:\n"
            "    x.append(1)\n"
            "    b(x)\n"
            "def b(x: list) -> None:\n"
            "    a(x)\n")})
        assert kinds(analysis, "m", "a") == {("param-mutation", "x")}
        assert kinds(analysis, "m", "b") == {("param-mutation", "x")}

    def test_constructor_self_writes_stay_local(self):
        analysis = build({"m": (
            "class C:\n"
            "    def __init__(self) -> None:\n"
            "        self.x = 1\n"
            "def f() -> object:\n"
            "    return C()\n")})
        assert kinds(analysis, "m", "f") == set()

    def test_ambiguous_method_name_is_unresolved(self):
        analysis = build({"m": (
            "class A:\n"
            "    def poke(self) -> None:\n"
            "        self.x = 1\n"
            "class B:\n"
            "    def poke(self) -> None:\n"
            "        self.y = 1\n"
            "def f(obj: object) -> None:\n"
            "    obj.poke()\n")})
        # Two candidates for poke(): dynamic dispatch stays invisible —
        # the documented unsoundness.
        assert kinds(analysis, "m", "f") == set()


class TestClassDispatch:
    SOURCE = (
        "class Base:\n"
        "    def fast(self) -> object:\n"
        "        return self.decide()\n"
        "    def decide(self) -> object:\n"
        "        return None\n"
        "class Sub(Base):\n"
        "    def decide(self) -> object:\n"
        "        self.n = 1\n"
        "        return None\n")

    def test_method_effects_use_concrete_mro(self):
        analysis = build({"m": self.SOURCE})
        sub = analysis.method_effects(("m", "Sub"), "fast")
        assert {(e.kind, e.name) for e in sub} == {("self-write", "n")}
        base = analysis.method_effects(("m", "Base"), "fast")
        assert base == frozenset()

    def test_super_call_resolves_past_the_defining_class(self):
        analysis = build({"m": (
            "class Base:\n"
            "    def f(self) -> None:\n"
            "        self.base_touched = 1\n"
            "class Sub(Base):\n"
            "    def f(self) -> None:\n"
            "        super().f()\n")})
        effects = analysis.method_effects(("m", "Sub"), "f")
        assert {(e.kind, e.name) for e in effects} == \
            {("self-write", "base_touched")}

    def test_class_attr_resolves_through_mro(self):
        analysis = build({"m": (
            "class Base:\n"
            "    flag = True\n"
            "class Mid(Base):\n"
            "    pass\n"
            "class Leaf(Mid):\n"
            "    flag = False\n")})
        classes = analysis.classes
        assert classes.class_attr(("m", "Mid"), "flag") == \
            (True, ("m", "Base"))
        assert classes.class_attr(("m", "Leaf"), "flag") == \
            (False, ("m", "Leaf"))
        assert classes.ancestor_names(("m", "Leaf")) == \
            {"Leaf", "Mid", "Base"}


class TestEntrypoints:
    def test_dotted_and_bare_specs(self):
        analysis = build({"pkg.worker": (
            "def run_job(job: int) -> int:\n"
            "    return job\n")})
        assert analysis.entrypoints_matching("pkg.worker.run_job") == \
            [("pkg.worker", "run_job")]
        assert analysis.entrypoints_matching("run_job") == \
            [("pkg.worker", "run_job")]
        assert analysis.entrypoints_matching("pkg.other.run_job") == []

    def test_none_sentinel_lookup(self):
        analysis = build({"m": (
            "_MODEL = None\n"
            "_TABLE = {}\n"
            "def init(model: object) -> None:\n"
            "    global _MODEL\n"
            "    _MODEL = model\n")})
        assert analysis.is_none_sentinel("m:_MODEL")
        assert not analysis.is_none_sentinel("m:_TABLE")
        assert not analysis.is_none_sentinel("missing:_MODEL")
