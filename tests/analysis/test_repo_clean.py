"""The acceptance gate: the repository's own sources lint clean.

Any PR that introduces a direct backing-field write, unseeded
randomness, a unit-suffix mismatch, a mutable-default handler, or an
unannotated function fails here before CI even reaches mypy.
"""

from pathlib import Path

from repro.analysis import lint_paths, load_config
from repro.analysis.registry import all_rules
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
REPO_SRC = REPO / "src"


def test_src_tree_lints_clean():
    result = lint_paths([REPO_SRC])
    formatted = "\n".join(d.format() for d in result.diagnostics)
    assert result.exit_code == 0, f"repo must lint clean:\n{formatted}"
    # Sanity: the run actually covered the tree.
    assert result.files_checked > 50


def test_src_tree_clean_under_repo_config():
    # The pyproject config names the real worker entrypoints, so this
    # exercises the effect rules against the actual policy and worker
    # code rather than the built-in defaults.
    config = load_config(REPO / "pyproject.toml")
    assert "repro.experiments.parallel._run_job" in config.worker_entrypoints
    result = lint_paths([REPO_SRC], config)
    formatted = "\n".join(d.format() for d in result.diagnostics)
    assert result.exit_code == 0, f"repo must lint clean:\n{formatted}"


def test_effect_rules_are_registered_and_enabled():
    assert {"purity-stateless-tick", "warning-hook-inert",
            "spawn-purity"} <= set(all_rules())


def test_cli_entry_point_on_src(capsys):
    assert main(["lint", str(REPO_SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 diagnostic(s)" in out
