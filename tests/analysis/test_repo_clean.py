"""The acceptance gate: the repository's own sources lint clean.

Any PR that introduces a direct backing-field write, unseeded
randomness, a unit-suffix mismatch, a mutable-default handler, or an
unannotated function fails here before CI even reaches mypy.
"""

from pathlib import Path

from repro.analysis import lint_paths
from repro.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_lints_clean():
    result = lint_paths([REPO_SRC])
    formatted = "\n".join(d.format() for d in result.diagnostics)
    assert result.exit_code == 0, f"repo must lint clean:\n{formatted}"
    # Sanity: the run actually covered the tree.
    assert result.files_checked > 50


def test_cli_entry_point_on_src(capsys):
    assert main(["lint", str(REPO_SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 diagnostic(s)" in out
