"""Fixture-based tests: every rule fires on its known-bad fixture at the
expected file:line and stays silent on the known-good one."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, **config_kwargs: object) -> list:
    result = lint_paths([FIXTURES / name], LintConfig(**config_kwargs))
    assert result.parse_errors == 0
    return result.diagnostics


def rule_lines(diagnostics: list, rule_id: str) -> list[int]:
    return [d.line for d in diagnostics if d.rule_id == rule_id]


class TestPowerCacheWrite:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("power_bad.py")
        assert rule_lines(diags, "power-cache-write") == [6, 7, 11, 12]
        fields = [d.message.split("'")[1] for d in diags
                  if d.rule_id == "power-cache-write"]
        assert fields == ["_freq_ghz", "_dynamic_watts", "_utilization",
                          "_background_watts"]

    def test_good_fixture_clean(self):
        assert rule_lines(lint_fixture("power_good.py"),
                          "power-cache-write") == []

    def test_extra_fields_via_config(self):
        source = "obj._my_cache_watts = 3.0\n"
        config = LintConfig(
            power_fields=frozenset({"_my_cache_watts"}),
            select=frozenset({"power-cache-write"}))
        result = lint_source(source, config=config)
        assert [d.rule_id for d in result.diagnostics] == ["power-cache-write"]


class TestDurableStateWrite:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("durable_bad.py")
        assert rule_lines(diags, "durable-state-write") == [6, 7, 11, 12, 13]
        fields = [d.message.split("'")[1] for d in diags
                  if d.rule_id == "durable-state-write"]
        assert fields == ["_wear_seconds", "_consumed", "_assignment",
                          "_times", "_grants"]

    def test_good_fixture_clean(self):
        assert rule_lines(lint_fixture("durable_good.py"),
                          "durable-state-write") == []

    def test_extra_fields_via_config(self):
        source = "obj._my_ledger = {}\n"
        config = LintConfig(
            durable_fields=frozenset({"_my_ledger"}),
            select=frozenset({"durable-state-write"}))
        result = lint_source(source, config=config)
        assert [d.rule_id for d in result.diagnostics] == \
            ["durable-state-write"]

    def test_pragma_silences(self):
        source = ("obj._grants = {}  "
                  "# oclint: disable=durable-state-write\n")
        config = LintConfig(select=frozenset({"durable-state-write"}))
        assert lint_source(source, config=config).diagnostics == []


class TestNondeterminism:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("determinism_bad.py")
        assert rule_lines(diags, "nondeterminism") == [11, 12, 13, 14, 15]

    def test_good_fixture_clean(self):
        assert rule_lines(lint_fixture("determinism_good.py"),
                          "nondeterminism") == []

    def test_module_scoping(self):
        diags = lint_fixture("determinism_bad.py",
                             determinism_modules=("src/repro/sim",))
        assert rule_lines(diags, "nondeterminism") == []

    def test_local_time_function_not_confused(self):
        source = ("def time() -> float:\n"
                  "    return 0.0\n"
                  "def use() -> float:\n"
                  "    return time()\n")
        result = lint_source(
            source, config=LintConfig(select=frozenset({"nondeterminism"})))
        assert result.diagnostics == []


class TestUnitMismatch:
    def test_bad_fixture_lines_and_units(self):
        diags = [d for d in lint_fixture("units_bad.py")
                 if d.rule_id == "unit-mismatch"]
        assert [d.line for d in diags] == [9, 9, 10, 11]
        assert "(MHz)" in diags[0].message and "(GHz)" in diags[0].message
        assert "(W)" in diags[1].message and "(s)" in diags[1].message
        assert "(ms)" in diags[3].message

    def test_good_fixture_clean(self):
        assert rule_lines(lint_fixture("units_good.py"), "unit-mismatch") == []

    def test_keyword_check_needs_no_signature(self):
        # The callee is unknown; keyword names still carry the units.
        source = "external_call(freq_ghz=speed_mhz)\n"
        result = lint_source(
            source, config=LintConfig(select=frozenset({"unit-mismatch"})))
        assert [d.rule_id for d in result.diagnostics] == ["unit-mismatch"]


class TestHandlerHygiene:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("handlers_bad.py")
        assert rule_lines(diags, "handler-hygiene") == [4, 10, 11]

    def test_good_fixture_clean(self):
        assert rule_lines(lint_fixture("handlers_good.py"),
                          "handler-hygiene") == []

    def test_engine_module_itself_exempt(self):
        source = "def peek(engine) -> int:\n    return len(engine._queue)\n"
        config = LintConfig(select=frozenset({"handler-hygiene"}))
        inside = lint_source(source, path="src/repro/sim/engine.py",
                             config=config)
        outside = lint_source(source, path="src/repro/core/soa.py",
                              config=config)
        assert inside.diagnostics == []
        assert [d.rule_id for d in outside.diagnostics] == ["handler-hygiene"]


class TestUntypedDef:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("untyped_bad.py")
        assert rule_lines(diags, "untyped-def") == [4, 8, 13]

    def test_good_fixture_clean(self):
        assert lint_fixture("untyped_good.py") == []

    def test_self_and_cls_exempt(self):
        source = ("class C:\n"
                  "    def m(self) -> None: ...\n"
                  "    @classmethod\n"
                  "    def f(cls) -> None: ...\n")
        result = lint_source(
            source, config=LintConfig(select=frozenset({"untyped-def"})))
        assert result.diagnostics == []


class TestTickLoopAllocation:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("tickloop_bad.py",
                             hot_path_modules=("tickloop_bad.py",))
        assert rule_lines(diags, "tick-loop-allocation") == [10, 11, 12, 16]
        names = [d.message.split("(")[0].split("np.")[1]
                 for d in diags if d.rule_id == "tick-loop-allocation"]
        assert names == ["ones", "asarray", "zeros", "stack"]

    def test_good_fixture_clean(self):
        diags = lint_fixture("tickloop_good.py",
                             hot_path_modules=("tickloop_good.py",))
        assert rule_lines(diags, "tick-loop-allocation") == []

    def test_untagged_module_exempt(self):
        # Same bad code outside a hot-path module: no diagnostics.
        diags = lint_fixture("tickloop_bad.py",
                             hot_path_modules=("experiments/largescale.py",))
        assert rule_lines(diags, "tick-loop-allocation") == []

    def test_allocation_outside_loop_clean(self):
        source = ("import numpy as np\n"
                  "buf = np.zeros(4)\n"
                  "for i in range(3):\n"
                  "    np.copyto(buf, float(i))\n")
        config = LintConfig(select=frozenset({"tick-loop-allocation"}),
                            hot_path_modules=("hot.py",))
        result = lint_source(source, path="src/repro/hot.py", config=config)
        assert result.diagnostics == []


class TestBadFixturesExitNonzero:
    """Acceptance: ``repro lint`` exits non-zero on every bad fixture and
    0 on every good one."""

    @pytest.mark.parametrize("rule", ["power", "determinism", "units",
                                      "handlers", "untyped"])
    def test_bad_vs_good(self, rule):
        from repro.cli import main
        assert main(["lint", str(FIXTURES / f"{rule}_bad.py")]) == 1
        assert main(["lint", str(FIXTURES / f"{rule}_good.py")]) == 0
