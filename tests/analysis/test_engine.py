"""Engine-level tests: pragmas, rule selection, exit codes, CLI, config."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    all_rules,
    lint_paths,
    lint_source,
    load_config,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

BAD_WRITE = "core._freq_ghz = 4.0\n"


class TestRegistry:
    def test_all_four_issue_rules_plus_typing_gate(self):
        assert set(all_rules()) >= {"power-cache-write", "nondeterminism",
                                    "unit-mismatch", "handler-hygiene",
                                    "untyped-def"}

    def test_rules_have_descriptions(self):
        for rule in all_rules().values():
            assert rule.rule_id and rule.description


class TestPragmas:
    def test_inline_disable_specific_rule(self):
        source = "core._freq_ghz = 4.0  # oclint: disable=power-cache-write\n"
        assert lint_source(source).diagnostics == []

    def test_inline_disable_all(self):
        source = "core._freq_ghz = 4.0  # oclint: disable\n"
        assert lint_source(source).diagnostics == []

    def test_disable_other_rule_does_not_suppress(self):
        source = "core._freq_ghz = 4.0  # oclint: disable=unit-mismatch\n"
        assert [d.rule_id for d in lint_source(source).diagnostics] == \
            ["power-cache-write"]

    def test_multiple_rules_in_one_pragma(self):
        source = ("import time\n"
                  "def f() -> float:\n"
                  "    t = time.time()  # oclint: disable=nondeterminism,unit-mismatch\n"
                  "    return t\n")
        assert lint_source(source).diagnostics == []

    def test_pragma_in_string_literal_is_inert(self):
        source = ('MESSAGE = "# oclint: disable=power-cache-write"\n'
                  "core._freq_ghz = 4.0\n")
        assert [d.rule_id for d in lint_source(source).diagnostics] == \
            ["power-cache-write"]


class TestSelection:
    def test_select_restricts(self):
        config = LintConfig(select=frozenset({"nondeterminism"}))
        assert lint_source(BAD_WRITE, config=config).diagnostics == []

    def test_ignore_excludes(self):
        config = LintConfig(ignore=frozenset({"power-cache-write"}))
        assert lint_source(BAD_WRITE, config=config).diagnostics == []


class TestExitCodes:
    def test_clean_is_zero(self):
        assert lint_source("X = 1\n").exit_code == 0

    def test_diagnostics_are_one(self):
        assert lint_source(BAD_WRITE).exit_code == 1

    def test_syntax_error_is_two(self):
        result = lint_source("def broken(:\n")
        assert result.exit_code == 2
        assert result.parse_errors == 1
        assert [d.rule_id for d in result.diagnostics] == ["syntax-error"]

    def test_directory_lint_counts_files(self):
        result = lint_paths([FIXTURES])
        assert result.files_checked == len(list(FIXTURES.glob("*.py")))
        assert result.exit_code == 1


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "power-cache-write" in out and "untyped-def" in out

    def test_unknown_rule_rejected(self, capsys):
        assert main(["lint", str(FIXTURES), "--select", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_missing_path_rejected(self, capsys):
        assert main(["lint", "definitely/not/here.py"]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_json_format(self, capsys):
        code = main(["lint", str(FIXTURES / "power_bad.py"),
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["parse_errors"] == 0
        assert payload["exit_code"] == 1
        diagnostics = payload["diagnostics"]
        assert all(d["rule"] == "power-cache-write" for d in diagnostics)
        assert [d["line"] for d in diagnostics] == [6, 7, 11, 12]

    def test_json_envelope_clean_run(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main(["lint", str(clean), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"files_checked": 1, "parse_errors": 0,
                           "exit_code": 0, "diagnostics": []}

    def test_github_format(self, capsys):
        code = main(["lint", str(FIXTURES / "power_bad.py"),
                     "--format", "github"])
        assert code == 1
        lines = capsys.readouterr().out.splitlines()
        annotations = [l for l in lines if l.startswith("::error ")]
        assert len(annotations) == 4
        first = annotations[0]
        assert first.startswith("::error file=")
        assert "line=6," in first
        assert "title=power-cache-write" in first
        assert "::" in first[len("::error "):]  # property/message separator
        # Workflow-command payloads are single-line by construction.
        assert all("\n" not in a for a in annotations)

    def test_github_format_escapes_newlines_and_percent(self):
        from repro.analysis.diagnostics import Diagnostic
        diagnostic = Diagnostic(path="a,b.py", line=3, col=0,
                                rule_id="x", message="50% bad\nnext")
        rendered = diagnostic.format_github()
        assert "%25" in rendered and "%0A" in rendered
        assert "a%2Cb.py" in rendered
        assert "\n" not in rendered

    def test_list_rules_columns_aligned(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        lines = capsys.readouterr().out.splitlines()
        starts = {line.index(all_rules()[line.split()[0]].description[:20])
                  for line in lines}
        assert len(starts) == 1  # every description starts in the same column
        width = starts.pop()
        assert width > max(len(rule_id) for rule_id in all_rules())

    def test_select_flag(self, capsys):
        code = main(["lint", str(FIXTURES / "power_bad.py"),
                     "--select", "nondeterminism"])
        assert code == 0
        capsys.readouterr()

    def test_ignore_flag(self, capsys):
        code = main(["lint", str(FIXTURES / "power_bad.py"),
                     "--ignore", "power-cache-write"])
        assert code == 0
        capsys.readouterr()

    def test_lint_in_command_listing(self, capsys):
        assert main(["list"]) == 0
        assert "lint" in capsys.readouterr().out


class TestConfigLoading:
    def test_missing_pyproject_gives_defaults(self, tmp_path):
        config = load_config(tmp_path / "pyproject.toml")
        assert config == LintConfig()

    def test_oclint_table_merges(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.oclint]\n"
            'ignore = ["untyped-def"]\n'
            'power-fields = ["_my_extra_watts"]\n')
        config = load_config(pyproject)
        assert "untyped-def" in config.ignore
        assert "_my_extra_watts" in config.power_fields
        assert "_freq_ghz" in config.power_fields  # defaults kept

    def test_malformed_table_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.oclint]\nignore = 3\n")
        with pytest.raises(ValueError):
            load_config(pyproject)

    def test_purity_keys_merge_as_unions(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.oclint]\n"
            'policy-base-classes = ["MyPolicyBase"]\n'
            'worker-entrypoints = ["my.module.worker"]\n')
        config = load_config(pyproject)
        assert "MyPolicyBase" in config.policy_base_classes
        assert "TracePolicy" in config.policy_base_classes  # default kept
        assert "my.module.worker" in config.worker_entrypoints
        assert "repro.experiments.parallel._run_job" in \
            config.worker_entrypoints  # default kept

    def test_repo_pyproject_names_parallel_entrypoints(self):
        repo_pyproject = Path(__file__).parents[2] / "pyproject.toml"
        config = load_config(repo_pyproject)
        assert "repro.experiments.parallel._run_job" in \
            config.worker_entrypoints
        assert "repro.experiments.parallel._init_worker" in \
            config.worker_entrypoints
